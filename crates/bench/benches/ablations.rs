//! Ablations of the LCU's design choices (DESIGN.md §ablations).
//!
//! `iter_custom` reports *simulated* cycles as nanoseconds, so criterion's
//! comparisons measure the architecture, not the host machine:
//!
//! * `direct_transfer`  — direct LCU→LCU grants vs routing every transfer
//!   through the home LRT (the paper's headline mechanism).
//! * `fast_reacquire`   — RD_REL local re-acquisition on vs off.
//! * `grant_timeout`    — sensitivity to the §III-C timeout threshold under
//!   oversubscription.
//! * `lcu_entries`      — table size 2 vs 8 vs 16 under multi-lock load.
//! * `reservation`      — LRT anti-starvation reservation on vs off under
//!   entry-exhaustion pressure.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use locksim_bench::lcu_microbench_cycles;
use locksim_core::LcuBackend;
use locksim_machine::testing::ScriptProgram;
use locksim_machine::{Action, MachineConfig, Mode, World};

const ITERS: u64 = 2_000;

fn sim_duration(cycles: u64) -> Duration {
    Duration::from_nanos(cycles)
}

fn bench_direct_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_direct_transfer");
    g.sample_size(10);
    for (name, direct) in [("direct", true), ("via_lrt", false)] {
        g.bench_function(name, |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    let mut cfg = MachineConfig::model_a(32);
                    cfg.lcu_direct_transfer = direct;
                    total += lcu_microbench_cycles(cfg, 16, 100, ITERS);
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

fn bench_fast_reacquire(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fast_reacquire");
    g.sample_size(10);
    for (name, on) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    let mut cfg = MachineConfig::model_a(32);
                    cfg.lcu_fast_reacquire = on;
                    // Read-dominated: re-acquisition of read locks matters.
                    total += lcu_microbench_cycles(cfg, 16, 10, ITERS);
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

fn bench_grant_timeout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_grant_timeout");
    g.sample_size(10);
    for timeout in [200u64, 1_000, 5_000] {
        g.bench_function(format!("timeout_{timeout}"), |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    // 8 cores, 16 threads: grants regularly land on
                    // preempted threads and the timeout forwards them.
                    let mut cfg = MachineConfig::model_a(8);
                    cfg.grant_timeout = timeout;
                    cfg.quantum = 20_000;
                    total += lcu_microbench_cycles(cfg, 16, 100, ITERS);
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

fn bench_lcu_entries(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lcu_entries");
    g.sample_size(10);
    for entries in [2usize, 8, 16] {
        g.bench_function(format!("entries_{entries}"), |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    let mut cfg = MachineConfig::model_a(8);
                    cfg.lcu_entries = entries;
                    // Each thread holds several read locks at once, so small
                    // tables overflow into nonblocking mode.
                    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 42);
                    let locks: Vec<_> = (0..12).map(|_| w.mach().alloc().alloc_line()).collect();
                    for _ in 0..8 {
                        let mut script = Vec::new();
                        for _ in 0..20 {
                            for &l in &locks {
                                script.push(Action::Acquire {
                                    lock: l,
                                    mode: Mode::Read,
                                    try_for: None,
                                });
                            }
                            script.push(Action::Compute(500));
                            for &l in &locks {
                                script.push(Action::Release {
                                    lock: l,
                                    mode: Mode::Read,
                                });
                            }
                        }
                        w.spawn(Box::new(ScriptProgram::new(script)));
                    }
                    w.run_to_completion();
                    total += w.mach().now().cycles();
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

fn bench_reservation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reservation");
    g.sample_size(10);
    for (name, on) in [("on", true), ("off", false)] {
        g.bench_function(name, |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    // Tiny LCUs force nonblocking requests; the reservation
                    // keeps them from starving behind queue traffic.
                    let mut cfg = MachineConfig::model_a(8);
                    cfg.lcu_entries = 2;
                    cfg.lcu_reservation = on;
                    total += lcu_microbench_cycles(cfg, 8, 100, ITERS);
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

fn bench_flt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_flt");
    g.sample_size(10);
    for (name, entries) in [("off", 0usize), ("entries_4", 4)] {
        g.bench_function(name, |b| {
            b.iter_custom(|n| {
                let mut total = 0;
                for _ in 0..n {
                    // Private-lock pattern: each thread hammers its own lock
                    // (the paper's Radiosity observation, §IV-C).
                    let mut cfg = MachineConfig::model_a(8);
                    cfg.flt_entries = entries;
                    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 42);
                    let locks: Vec<_> = (0..8).map(|_| w.mach().alloc().alloc_line()).collect();
                    for &lock in locks.iter().take(8) {
                        let mut script = Vec::new();
                        for _ in 0..100 {
                            script.push(Action::Acquire {
                                lock,
                                mode: Mode::Write,
                                try_for: None,
                            });
                            script.push(Action::Compute(40));
                            script.push(Action::Release {
                                lock,
                                mode: Mode::Write,
                            });
                        }
                        w.spawn(Box::new(ScriptProgram::new(script)));
                    }
                    w.run_to_completion();
                    total += w.mach().now().cycles();
                }
                sim_duration(total)
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic simulated-cycle samples have zero variance, which
    // criterion's plotters backend cannot density-plot; plots off.
    config = Criterion::default().without_plots();
    targets =
    bench_direct_transfer,
    bench_fast_reacquire,
    bench_grant_timeout,
    bench_lcu_entries,
    bench_reservation,
    bench_flt
);
criterion_main!(benches);
