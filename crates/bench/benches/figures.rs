//! One criterion benchmark per paper figure, each timing a representative
//! cell of that figure's run matrix (whole-figure regeneration lives in the
//! harness binaries; these benches track the simulator's performance on
//! each workload class). Run with `cargo bench -p locksim-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use locksim_harness::{
    figs, run_app, run_microbench, run_stm, AppSel, BackendKind, ModelSel, StmVariant, StructSel,
};
use locksim_swlocks::SwAlg;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // Static tables: full generation (cheap).
    g.bench_function("fig1_comparison_table", |b| b.iter(figs::fig1));
    g.bench_function("fig8_model_parameters", |b| b.iter(figs::fig8));
    // One representative cell per measured figure.
    g.bench_function("fig9_cell_lcu_vs_ssb", |b| {
        b.iter(|| {
            run_microbench(ModelSel::A, BackendKind::Lcu, 16, 100, 1_000, 42);
            run_microbench(ModelSel::A, BackendKind::Ssb, 16, 100, 1_000, 42);
        })
    });
    g.bench_function("fig10_cell_mcs_oversubscribed", |b| {
        b.iter(|| run_microbench(ModelSel::A, BackendKind::Sw(SwAlg::Mcs), 40, 100, 500, 42))
    });
    g.bench_function("fig11_cell_stm_rb", |b| {
        b.iter(|| {
            run_stm(
                ModelSel::A,
                StmVariant::Lcu,
                StructSel::Rb,
                256,
                16,
                10,
                75,
                42,
            )
        })
    });
    g.bench_function("fig12_cell_stm_hash", |b| {
        b.iter(|| {
            run_stm(
                ModelSel::A,
                StmVariant::SwOnly,
                StructSel::Hash,
                1 << 12,
                16,
                10,
                75,
                42,
            )
        })
    });
    g.bench_function("fig13_cell_radiosity", |b| {
        b.iter(|| run_app(AppSel::Radiosity, BackendKind::Lcu, 42))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic simulated-cycle samples have zero variance, which
    // criterion's plotters backend cannot density-plot; plots off.
    config = Criterion::default().without_plots();
    targets = bench_figures);
criterion_main!(benches);
