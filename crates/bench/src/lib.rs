//! Shared helpers for the criterion benchmark targets.
//!
//! Two bench binaries exist:
//!
//! * `figures` — one benchmark per paper figure, running the harness's
//!   quick-scale generators; criterion's wall-clock numbers track the
//!   simulator's own performance per figure.
//! * `ablations` — design-choice ablations from DESIGN.md. These use
//!   `iter_custom` to report **simulated cycles as nanoseconds**, so the
//!   criterion comparison reflects the architecture, not host speed.
//!
//! Both respect `LOCKSIM_QUICK` sizing through the harness.

use locksim_core::LcuBackend;
use locksim_machine::{MachineConfig, World};
use locksim_workloads::{CsThread, IterPool};

/// Runs the single-lock microbenchmark on a custom LCU configuration and
/// returns total simulated cycles.
pub fn lcu_microbench_cycles(
    cfg: MachineConfig,
    threads: usize,
    write_pct: u32,
    iters: u64,
) -> u64 {
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 42);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(iters);
    for _ in 0..threads {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), write_pct)));
    }
    w.run_to_completion();
    w.mach().now().cycles()
}
