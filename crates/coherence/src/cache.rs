//! L1 cache controller.

use std::collections::HashMap;

use crate::types::{CacheId, CacheState, CacheToDir, CpuOp, DirToCache, LineAddr, ReqKind};

/// Result of presenting a CPU operation to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOpResult {
    /// The operation completes locally (L1 hit latency).
    Hit,
    /// The operation misses; send this request to the line's home directory
    /// and wait for [`CacheAction::CpuDone`].
    Miss(ReqKind),
}

/// Output of the cache controller when handling a directory message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Send a message to the line's home directory.
    Send(CacheToDir),
    /// The blocked CPU operation for this line is now complete.
    CpuDone,
    /// The line was just invalidated by a remote writer. The machine uses
    /// this to wake threads spinning locally on the line.
    Invalidated,
    /// The line was downgraded (a remote reader appeared). Used to wake
    /// local-spin watchers that wait for *any* coherence activity.
    Downgraded,
}

#[derive(Debug, Default, Clone, Copy)]
struct Line {
    state: CacheState,
    /// CPU operation waiting for a directory response, if any.
    pending: Option<CpuOp>,
    /// An invalidation overtook the in-flight shared-data response (the
    /// directory's DataS pays DRAM latency while a later writer's Inv does
    /// not). The read still completes — it was serialized before the write
    /// — but the arriving data must not be cached.
    poisoned: bool,
    /// An Inv/Downgrade overtook our in-flight DataM. The directory
    /// serializes per line, so such a message can only belong to the
    /// transaction *after* our grant: it is applied (and acked) right after
    /// the data arrives.
    deferred: Option<DirToCache>,
}

/// One core's L1 cache controller: per-line MESI state plus at most one
/// outstanding miss per line.
///
/// See the crate docs for the protocol overview and an example.
#[derive(Debug)]
pub struct CacheCtrl {
    id: CacheId,
    lines: HashMap<LineAddr, Line>,
    hits: u64,
    misses: u64,
}

impl CacheCtrl {
    /// Creates an empty (all-Invalid) cache.
    pub fn new(id: CacheId) -> Self {
        CacheCtrl {
            id,
            lines: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// This cache's identifier.
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// Current MESI state of `line` (I if never touched).
    pub fn state(&self, line: LineAddr) -> CacheState {
        self.lines.get(&line).map_or(CacheState::I, |l| l.state)
    }

    /// Hit / miss counters (for reports).
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Presents a CPU operation. On [`CacheOpResult::Miss`] the caller must
    /// forward the request to the home directory; the operation completes
    /// when a later [`CacheCtrl::handle`] returns [`CacheAction::CpuDone`].
    ///
    /// # Panics
    ///
    /// Panics if an operation is already pending on this line — the machine
    /// issues at most one memory operation per line per thread, and the
    /// blocking directory guarantees one transaction in flight.
    pub fn cpu_op(&mut self, line: LineAddr, op: CpuOp) -> CacheOpResult {
        let entry = self.lines.entry(line).or_default();
        assert!(
            entry.pending.is_none(),
            "cache {:?}: line {line} already has a pending op",
            self.id
        );
        let hit = if op.needs_ownership() {
            if entry.state == CacheState::E {
                // Silent E -> M upgrade.
                entry.state = CacheState::M;
            }
            entry.state.writable()
        } else {
            entry.state.readable()
        };
        if hit {
            self.hits += 1;
            CacheOpResult::Hit
        } else {
            self.misses += 1;
            entry.pending = Some(op);
            CacheOpResult::Miss(if op.needs_ownership() {
                ReqKind::GetM
            } else {
                ReqKind::GetS
            })
        }
    }

    /// Handles a message from the directory, pushing follow-up actions
    /// into `out` (a caller-owned scratch vector, so the per-message hot
    /// path allocates nothing).
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (e.g. data arriving with no pending
    /// request), which indicate a simulator bug.
    pub fn handle(&mut self, line: LineAddr, msg: DirToCache, out: &mut Vec<CacheAction>) {
        let _prof = locksim_trace::prof::span("coherence/cache_handle");
        let entry = self.lines.entry(line).or_default();
        match msg {
            DirToCache::DataS { exclusive } => {
                let op = entry
                    .pending
                    .take()
                    .expect("DataS with no pending operation");
                assert!(
                    !op.needs_ownership(),
                    "DataS cannot satisfy {op:?} (needs ownership)"
                );
                if entry.poisoned {
                    // The line was invalidated while this data was in
                    // flight: complete the load (it serialized before the
                    // writer) but do not cache the stale data.
                    entry.poisoned = false;
                    entry.state = CacheState::I;
                } else {
                    entry.state = if exclusive {
                        CacheState::E
                    } else {
                        CacheState::S
                    };
                }
                out.push(CacheAction::CpuDone);
            }
            DirToCache::DataM => {
                let op = entry
                    .pending
                    .take()
                    .expect("DataM with no pending operation");
                debug_assert!(op.needs_ownership());
                entry.state = CacheState::M;
                out.push(CacheAction::CpuDone);
                match entry.deferred.take() {
                    Some(DirToCache::Inv) => {
                        entry.state = CacheState::I;
                        out.push(CacheAction::Send(CacheToDir::InvAck { dirty: true }));
                        out.push(CacheAction::Invalidated);
                    }
                    Some(DirToCache::Downgrade) => {
                        entry.state = CacheState::S;
                        out.push(CacheAction::Send(CacheToDir::DowngradeAck { dirty: true }));
                        out.push(CacheAction::Downgraded);
                    }
                    Some(other) => unreachable!("deferred {other:?}"),
                    None => {}
                }
            }
            DirToCache::Inv => {
                if entry.state == CacheState::I
                    && entry.pending.is_some_and(|op| op.needs_ownership())
                {
                    // Overtook our DataM: apply after the data arrives.
                    debug_assert!(entry.deferred.is_none());
                    entry.deferred = Some(DirToCache::Inv);
                    return;
                }
                let dirty = entry.state == CacheState::M;
                if entry.state == CacheState::I && entry.pending == Some(CpuOp::Load) {
                    entry.poisoned = true;
                }
                entry.state = CacheState::I;
                // A pending request (e.g. an S->M upgrade queued at the
                // directory) stays pending: the directory will serve it
                // after the current transaction, and the eventual DataM
                // completes it.
                out.push(CacheAction::Send(CacheToDir::InvAck { dirty }));
                out.push(CacheAction::Invalidated);
            }
            DirToCache::Downgrade => {
                if entry.state == CacheState::I
                    && entry.pending.is_some_and(|op| op.needs_ownership())
                {
                    debug_assert!(entry.deferred.is_none());
                    entry.deferred = Some(DirToCache::Downgrade);
                    return;
                }
                let dirty = entry.state == CacheState::M;
                debug_assert!(
                    entry.state.writable(),
                    "Downgrade of a non-owned line ({:?})",
                    entry.state
                );
                entry.state = CacheState::S;
                out.push(CacheAction::Send(CacheToDir::DowngradeAck { dirty }));
                out.push(CacheAction::Downgraded);
            }
        }
    }

    /// Vec-returning [`CacheCtrl::handle`] wrapper for tests.
    #[cfg(test)]
    fn handle_v(&mut self, line: LineAddr, msg: DirToCache) -> Vec<CacheAction> {
        let mut out = Vec::new();
        self.handle(line, msg, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(0x100);

    fn cache() -> CacheCtrl {
        CacheCtrl::new(CacheId(1))
    }

    #[test]
    fn cold_load_misses_with_gets() {
        let mut c = cache();
        assert_eq!(c.cpu_op(L, CpuOp::Load), CacheOpResult::Miss(ReqKind::GetS));
        assert_eq!(c.state(L), CacheState::I);
    }

    #[test]
    fn cold_store_misses_with_getm() {
        let mut c = cache();
        assert_eq!(
            c.cpu_op(L, CpuOp::Store),
            CacheOpResult::Miss(ReqKind::GetM)
        );
    }

    #[test]
    fn data_s_completes_load_in_s_or_e() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        let acts = c.handle_v(L, DirToCache::DataS { exclusive: false });
        assert_eq!(acts, vec![CacheAction::CpuDone]);
        assert_eq!(c.state(L), CacheState::S);

        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: true });
        assert_eq!(c.state(L), CacheState::E);
    }

    #[test]
    fn subsequent_load_hits() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: false });
        assert_eq!(c.cpu_op(L, CpuOp::Load), CacheOpResult::Hit);
        assert_eq!(c.hit_miss(), (1, 1));
    }

    #[test]
    fn e_state_silently_upgrades_on_store() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: true });
        assert_eq!(c.cpu_op(L, CpuOp::Store), CacheOpResult::Hit);
        assert_eq!(c.state(L), CacheState::M);
    }

    #[test]
    fn s_state_store_needs_upgrade() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: false });
        assert_eq!(c.cpu_op(L, CpuOp::Rmw), CacheOpResult::Miss(ReqKind::GetM));
        c.handle_v(L, DirToCache::DataM);
        assert_eq!(c.state(L), CacheState::M);
    }

    #[test]
    fn inv_from_m_acks_dirty_and_reports() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Store);
        c.handle_v(L, DirToCache::DataM);
        let acts = c.handle_v(L, DirToCache::Inv);
        assert_eq!(
            acts,
            vec![
                CacheAction::Send(CacheToDir::InvAck { dirty: true }),
                CacheAction::Invalidated
            ]
        );
        assert_eq!(c.state(L), CacheState::I);
    }

    #[test]
    fn inv_from_s_acks_clean() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: false });
        let acts = c.handle_v(L, DirToCache::Inv);
        assert_eq!(
            acts[0],
            CacheAction::Send(CacheToDir::InvAck { dirty: false })
        );
    }

    #[test]
    fn downgrade_from_m_sends_dirty_data() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Store);
        c.handle_v(L, DirToCache::DataM);
        let acts = c.handle_v(L, DirToCache::Downgrade);
        assert_eq!(
            acts,
            vec![
                CacheAction::Send(CacheToDir::DowngradeAck { dirty: true }),
                CacheAction::Downgraded
            ]
        );
        assert_eq!(c.state(L), CacheState::S);
    }

    #[test]
    fn inv_while_upgrade_pending_keeps_request_pending() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.handle_v(L, DirToCache::DataS { exclusive: false });
        // Upgrade queued at the directory...
        assert_eq!(
            c.cpu_op(L, CpuOp::Store),
            CacheOpResult::Miss(ReqKind::GetM)
        );
        // ...but a competing writer wins first.
        c.handle_v(L, DirToCache::Inv);
        assert_eq!(c.state(L), CacheState::I);
        // Our DataM still completes the stalled store.
        let acts = c.handle_v(L, DirToCache::DataM);
        assert_eq!(acts, vec![CacheAction::CpuDone]);
        assert_eq!(c.state(L), CacheState::M);
    }

    #[test]
    fn inv_overtaking_datam_is_deferred() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Rmw);
        // The Inv for the *next* transaction overtakes our DataM.
        assert!(
            c.handle_v(L, DirToCache::Inv).is_empty(),
            "ack must wait for data"
        );
        let acts = c.handle_v(L, DirToCache::DataM);
        assert_eq!(
            acts,
            vec![
                CacheAction::CpuDone,
                CacheAction::Send(CacheToDir::InvAck { dirty: true }),
                CacheAction::Invalidated
            ]
        );
        assert_eq!(c.state(L), CacheState::I);
    }

    #[test]
    fn downgrade_overtaking_datam_is_deferred() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Store);
        assert!(c.handle_v(L, DirToCache::Downgrade).is_empty());
        let acts = c.handle_v(L, DirToCache::DataM);
        assert_eq!(
            acts,
            vec![
                CacheAction::CpuDone,
                CacheAction::Send(CacheToDir::DowngradeAck { dirty: true }),
                CacheAction::Downgraded
            ]
        );
        assert_eq!(c.state(L), CacheState::S);
    }

    #[test]
    fn inv_overtaking_data_poisons_the_fill() {
        let mut c = cache();
        // Load misses; before the DataS arrives, a writer's Inv passes it.
        c.cpu_op(L, CpuOp::Load);
        let acts = c.handle_v(L, DirToCache::Inv);
        assert_eq!(
            acts[0],
            CacheAction::Send(CacheToDir::InvAck { dirty: false })
        );
        // The late data completes the load but is not cached.
        let acts = c.handle_v(L, DirToCache::DataS { exclusive: false });
        assert_eq!(acts, vec![CacheAction::CpuDone]);
        assert_eq!(c.state(L), CacheState::I, "stale fill must not be cached");
    }

    #[test]
    #[should_panic(expected = "pending")]
    fn double_pending_op_panics() {
        let mut c = cache();
        c.cpu_op(L, CpuOp::Load);
        c.cpu_op(L, CpuOp::Load);
    }

    #[test]
    fn independent_lines_do_not_interfere() {
        let mut c = cache();
        let l2 = LineAddr(0x200);
        c.cpu_op(L, CpuOp::Load);
        assert_eq!(
            c.cpu_op(l2, CpuOp::Store),
            CacheOpResult::Miss(ReqKind::GetM)
        );
        c.handle_v(l2, DirToCache::DataM);
        assert_eq!(c.state(l2), CacheState::M);
        assert_eq!(c.state(L), CacheState::I);
    }
}
