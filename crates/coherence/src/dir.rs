//! Home directory controller.

use std::collections::{BTreeSet, HashMap, VecDeque};

use locksim_engine::stats::Counters;

use crate::types::{CacheId, CacheToDir, DirId, DirToCache, LineAddr, ReqKind};

/// Output of the directory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirAction {
    /// Destination cache.
    pub to: CacheId,
    /// Message to deliver.
    pub msg: DirToCache,
    /// The message carries a cache line (network data class).
    pub carries_data: bool,
    /// The response required a DRAM access first (add memory latency).
    pub dram: bool,
}

/// Stable directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    Uncached,
    Shared(BTreeSet<CacheId>),
    Excl(CacheId),
}

#[derive(Debug)]
struct Transaction {
    requestor: CacheId,
    kind: ReqKind,
    acks_left: u32,
    dirty_seen: bool,
    /// The requestor held an S copy (upgrade: grant needs no data flit).
    req_has_copy: bool,
    /// Set of caches we are waiting on; the new Shared set is rebuilt on
    /// completion for GetS-from-Excl.
    prev_owner: Option<CacheId>,
}

#[derive(Debug)]
struct DirLine {
    state: DirState,
    busy: Option<Transaction>,
    queue: VecDeque<(CacheId, ReqKind)>,
}

impl Default for DirLine {
    fn default() -> Self {
        DirLine {
            state: DirState::Uncached,
            busy: None,
            queue: VecDeque::new(),
        }
    }
}

/// A blocking home directory: one transaction in flight per line, later
/// requests queue in arrival order (which is what serializes contended
/// lock lines and produces the hotspot behaviour of single-line locks).
///
/// See the crate docs for the protocol overview.
#[derive(Debug)]
pub struct DirCtrl {
    id: DirId,
    lines: HashMap<LineAddr, DirLine>,
    counters: Counters,
}

impl DirCtrl {
    /// Creates an empty directory.
    pub fn new(id: DirId) -> Self {
        DirCtrl {
            id,
            lines: HashMap::new(),
            counters: Counters::new(),
        }
    }

    /// This directory's identifier.
    pub fn id(&self) -> DirId {
        self.id
    }

    /// Protocol event counters (`dir_gets`, `dir_getm`, `dir_invs`, ...).
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Number of caches currently recorded as holding `line` (diagnostics).
    pub fn holders(&self, line: LineAddr) -> usize {
        match self.lines.get(&line).map(|l| &l.state) {
            None | Some(DirState::Uncached) => 0,
            Some(DirState::Shared(s)) => s.len(),
            Some(DirState::Excl(_)) => 1,
        }
    }

    /// Handles a cache→directory message, pushing responses to send into
    /// `out` (a caller-owned scratch vector, so the per-message hot path
    /// allocates nothing).
    ///
    /// # Panics
    ///
    /// Panics on protocol violations (acks outside a transaction, requests
    /// from the current owner, ...) — these indicate simulator bugs.
    pub fn handle(
        &mut self,
        line: LineAddr,
        from: CacheId,
        msg: CacheToDir,
        out: &mut Vec<DirAction>,
    ) {
        let _prof = locksim_trace::prof::span("coherence/dir_handle");
        match msg {
            CacheToDir::Req(kind) => {
                let entry = self.lines.entry(line).or_default();
                if entry.busy.is_some() {
                    self.counters.incr("dir_queued");
                }
                entry.queue.push_back((from, kind));
                self.pump(line, out);
            }
            CacheToDir::InvAck { dirty } | CacheToDir::DowngradeAck { dirty } => {
                self.ack(line, dirty, out);
            }
        }
    }

    /// Vec-returning [`DirCtrl::handle`] wrapper for tests.
    #[cfg(test)]
    fn handle_v(&mut self, line: LineAddr, from: CacheId, msg: CacheToDir) -> Vec<DirAction> {
        let mut out = Vec::new();
        self.handle(line, from, msg, &mut out);
        out
    }

    /// Serves queued requests in order until one starts a multi-step
    /// transaction (goes busy) or the queue empties.
    fn pump(&mut self, line: LineAddr, out: &mut Vec<DirAction>) {
        loop {
            let entry = self.lines.get_mut(&line).expect("line exists");
            if entry.busy.is_some() {
                break;
            }
            let Some((from, kind)) = entry.queue.pop_front() else {
                break;
            };
            self.start(line, from, kind, out);
        }
    }

    fn start(&mut self, line: LineAddr, from: CacheId, kind: ReqKind, out: &mut Vec<DirAction>) {
        let entry = self.lines.get_mut(&line).expect("line exists");
        debug_assert!(entry.busy.is_none());
        match kind {
            ReqKind::GetS => self.counters.incr("dir_gets"),
            ReqKind::GetM => self.counters.incr("dir_getm"),
        }
        match (&mut entry.state, kind) {
            (DirState::Uncached, ReqKind::GetS) => {
                entry.state = DirState::Excl(from);
                out.push(DirAction {
                    to: from,
                    msg: DirToCache::DataS { exclusive: true },
                    carries_data: true,
                    dram: true,
                });
            }
            (DirState::Uncached, ReqKind::GetM) => {
                entry.state = DirState::Excl(from);
                out.push(DirAction {
                    to: from,
                    msg: DirToCache::DataM,
                    carries_data: true,
                    dram: true,
                });
            }
            (DirState::Shared(set), ReqKind::GetS) => {
                debug_assert!(!set.contains(&from), "sharer re-requesting GetS");
                set.insert(from);
                out.push(DirAction {
                    to: from,
                    msg: DirToCache::DataS { exclusive: false },
                    carries_data: true,
                    dram: true,
                });
            }
            (DirState::Shared(set), ReqKind::GetM) => {
                let req_has_copy = set.contains(&from);
                let others = set.iter().filter(|&&c| c != from).count();
                if others == 0 {
                    // Sole-sharer upgrade: grant permissions immediately.
                    entry.state = DirState::Excl(from);
                    out.push(DirAction {
                        to: from,
                        msg: DirToCache::DataM,
                        carries_data: !req_has_copy,
                        dram: !req_has_copy,
                    });
                    return;
                }
                self.counters.add("dir_invs", others as u64);
                out.extend(
                    set.iter()
                        .copied()
                        .filter(|&c| c != from)
                        .map(|to| DirAction {
                            to,
                            msg: DirToCache::Inv,
                            carries_data: false,
                            dram: false,
                        }),
                );
                entry.busy = Some(Transaction {
                    requestor: from,
                    kind,
                    acks_left: others as u32,
                    dirty_seen: false,
                    req_has_copy,
                    prev_owner: None,
                });
            }
            (DirState::Excl(owner), kind) => {
                let owner = *owner;
                assert_ne!(owner, from, "owner re-requesting {kind:?}");
                let (msg, ctr) = match kind {
                    ReqKind::GetS => (DirToCache::Downgrade, "dir_downgrades"),
                    ReqKind::GetM => (DirToCache::Inv, "dir_invs"),
                };
                self.counters.incr(ctr);
                entry.busy = Some(Transaction {
                    requestor: from,
                    kind,
                    acks_left: 1,
                    dirty_seen: false,
                    req_has_copy: false,
                    prev_owner: Some(owner),
                });
                out.push(DirAction {
                    to: owner,
                    msg,
                    carries_data: false,
                    dram: false,
                });
            }
        }
    }

    fn ack(&mut self, line: LineAddr, dirty: bool, out: &mut Vec<DirAction>) {
        let entry = self.lines.get_mut(&line).expect("ack for unknown line");
        let tx = entry.busy.as_mut().expect("ack outside transaction");
        debug_assert!(tx.acks_left > 0);
        tx.acks_left -= 1;
        tx.dirty_seen |= dirty;
        if tx.acks_left > 0 {
            return;
        }
        let tx = entry.busy.take().expect("just observed");
        // Complete the transaction.
        match tx.kind {
            ReqKind::GetS => {
                let mut set = BTreeSet::new();
                if let Some(owner) = tx.prev_owner {
                    set.insert(owner);
                }
                set.insert(tx.requestor);
                entry.state = DirState::Shared(set);
                out.push(DirAction {
                    to: tx.requestor,
                    msg: DirToCache::DataS { exclusive: false },
                    carries_data: true,
                    // Data came back with the owner's ack if dirty,
                    // otherwise fetched from DRAM.
                    dram: !tx.dirty_seen,
                });
            }
            ReqKind::GetM => {
                entry.state = DirState::Excl(tx.requestor);
                out.push(DirAction {
                    to: tx.requestor,
                    msg: DirToCache::DataM,
                    carries_data: !tx.req_has_copy,
                    dram: !tx.dirty_seen && !tx.req_has_copy,
                });
            }
        }
        // Serve queued requests until one goes busy.
        self.pump(line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(0x80);
    const C0: CacheId = CacheId(0);
    const C1: CacheId = CacheId(1);
    const C2: CacheId = CacheId(2);

    fn dir() -> DirCtrl {
        DirCtrl::new(DirId(0))
    }

    #[test]
    fn cold_gets_grants_exclusive() {
        let mut d = dir();
        let out = d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetS));
        assert_eq!(
            out,
            vec![DirAction {
                to: C0,
                msg: DirToCache::DataS { exclusive: true },
                carries_data: true,
                dram: true
            }]
        );
        assert_eq!(d.holders(L), 1);
    }

    #[test]
    fn cold_getm_grants_m() {
        let mut d = dir();
        let out = d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        assert_eq!(out[0].msg, DirToCache::DataM);
        assert!(out[0].dram);
    }

    #[test]
    fn gets_on_exclusive_downgrades_owner() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        let out = d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetS));
        assert_eq!(
            out,
            vec![DirAction {
                to: C0,
                msg: DirToCache::Downgrade,
                carries_data: false,
                dram: false
            }]
        );
        // Owner acks with dirty data: requestor gets it without DRAM.
        let out = d.handle_v(L, C0, CacheToDir::DowngradeAck { dirty: true });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, C1);
        assert_eq!(out[0].msg, DirToCache::DataS { exclusive: false });
        assert!(!out[0].dram);
        assert_eq!(d.holders(L), 2);
    }

    #[test]
    fn getm_on_shared_invalidates_all_other_sharers() {
        let mut d = dir();
        // Build 3 sharers: C0 exclusive-clean, downgraded by C1's GetS, then C2 joins.
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetS));
        d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetS));
        d.handle_v(L, C0, CacheToDir::DowngradeAck { dirty: false });
        d.handle_v(L, C2, CacheToDir::Req(ReqKind::GetS));
        assert_eq!(d.holders(L), 3);
        // C0 upgrades: C1 and C2 must be invalidated.
        let out = d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        let targets: Vec<CacheId> = out.iter().map(|a| a.to).collect();
        assert_eq!(targets, vec![C1, C2]);
        assert!(out.iter().all(|a| a.msg == DirToCache::Inv));
        // First ack: nothing yet.
        assert!(d
            .handle_v(L, C1, CacheToDir::InvAck { dirty: false })
            .is_empty());
        // Second ack: upgrade grant without data (requestor held a copy).
        let out = d.handle_v(L, C2, CacheToDir::InvAck { dirty: false });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].to, C0);
        assert_eq!(out[0].msg, DirToCache::DataM);
        assert!(!out[0].carries_data);
        assert_eq!(d.holders(L), 1);
    }

    #[test]
    fn sole_sharer_upgrade_is_immediate() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetS));
        d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetS));
        d.handle_v(L, C0, CacheToDir::DowngradeAck { dirty: false });
        // C0 and C1 share; C1 invalidates C0 via GetM, then C1 is sole owner.
        let out = d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetM));
        assert_eq!(out[0].to, C0);
        let out = d.handle_v(L, C0, CacheToDir::InvAck { dirty: false });
        assert_eq!(out[0].msg, DirToCache::DataM);
        assert!(!out[0].carries_data, "upgrader already had the data");
    }

    #[test]
    fn requests_queue_behind_transaction() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        // C1 wants M: Inv goes to C0.
        let out = d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetM));
        assert_eq!(out[0].to, C0);
        // C2's request must queue.
        assert!(d.handle_v(L, C2, CacheToDir::Req(ReqKind::GetM)).is_empty());
        assert_eq!(d.counters().get("dir_queued"), 1);
        // C0's ack completes C1's grant AND starts C2's transaction.
        let out = d.handle_v(L, C0, CacheToDir::InvAck { dirty: true });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].to, C1);
        assert_eq!(out[0].msg, DirToCache::DataM);
        assert!(!out[0].dram, "dirty data came from the owner");
        assert_eq!(out[1].to, C1, "C2's transaction invalidates new owner C1");
        assert_eq!(out[1].msg, DirToCache::Inv);
        // C1 acks; C2 finally gets M.
        let out = d.handle_v(L, C1, CacheToDir::InvAck { dirty: true });
        assert_eq!(out[0].to, C2);
        assert_eq!(out[0].msg, DirToCache::DataM);
    }

    #[test]
    fn getm_on_exclusive_transfers_ownership() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetM));
        let out = d.handle_v(L, C0, CacheToDir::InvAck { dirty: true });
        assert_eq!(out[0].to, C1);
        assert!(out[0].carries_data);
        assert!(!out[0].dram);
        assert_eq!(d.holders(L), 1);
    }

    #[test]
    #[should_panic(expected = "owner re-requesting")]
    fn owner_rerequest_panics() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
    }

    #[test]
    fn counters_track_protocol_events() {
        let mut d = dir();
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetS));
        d.handle_v(L, C1, CacheToDir::Req(ReqKind::GetM));
        d.handle_v(L, C0, CacheToDir::InvAck { dirty: false });
        assert_eq!(d.counters().get("dir_gets"), 1);
        assert_eq!(d.counters().get("dir_getm"), 1);
        assert_eq!(d.counters().get("dir_invs"), 1);
    }

    #[test]
    fn independent_lines_have_independent_transactions() {
        let mut d = dir();
        let l2 = LineAddr(0x81);
        d.handle_v(L, C0, CacheToDir::Req(ReqKind::GetM));
        let out = d.handle_v(l2, C1, CacheToDir::Req(ReqKind::GetM));
        assert_eq!(out[0].to, C1, "no interference from busy line L");
    }
}
