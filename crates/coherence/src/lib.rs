//! MESI directory cache-coherence protocol, expressed as pure state
//! machines.
//!
//! Software locks cost what their coherence traffic costs: a TAS lock ping-
//! pongs a line between caches, an MCS lock pays an invalidation plus a
//! re-fetch per transfer, and the MRSW reader counter becomes a coherence
//! hotspot. To reproduce the paper's software-lock baselines faithfully,
//! this crate models a line-granularity MESI protocol with a blocking home
//! directory:
//!
//! * [`CacheCtrl`] — one per core; tracks per-line `M/E/S/I` state, turns CPU
//!   loads/stores/RMWs into hits or directory requests, and reacts to
//!   invalidations/downgrades.
//! * [`DirCtrl`] — one per memory controller; serializes transactions per
//!   line (one in flight, later requests queue), invalidates sharers,
//!   collects acks, and grants data.
//!
//! Both controllers are *pure*: inputs are messages or CPU operations,
//! outputs are [`CacheAction`]/[`DirAction`] lists. The machine crate wires
//! the outputs onto the network and event queue. This keeps the protocol
//! unit-testable (including property tests that drive random traffic and
//! check the single-writer invariant) without an event loop.
//!
//! Modelling notes (documented substitutions):
//!
//! * Caches are infinite — no capacity or conflict evictions. Lock-transfer
//!   costs are dominated by *sharing* misses, which are fully modelled.
//! * The directory collects invalidation acks itself before granting
//!   ownership (no direct sharer→requestor acks), a common real design that
//!   avoids transient-state races.
//!
//! # Example
//!
//! ```
//! use locksim_coherence::{CacheCtrl, CacheId, CacheOpResult, CpuOp, LineAddr};
//!
//! let mut cache = CacheCtrl::new(CacheId(0));
//! let line = LineAddr(0x40);
//! // Cold load misses and produces a GetS request for the home directory.
//! match cache.cpu_op(line, CpuOp::Load) {
//!     CacheOpResult::Miss(req) => assert_eq!(format!("{req:?}"), "GetS"),
//!     CacheOpResult::Hit => unreachable!("cold cache cannot hit"),
//! }
//! ```

mod cache;
mod dir;
mod types;

pub use cache::{CacheAction, CacheCtrl, CacheOpResult};
pub use dir::{DirAction, DirCtrl};
pub use types::{CacheId, CacheState, CacheToDir, CpuOp, DirId, DirToCache, LineAddr, ReqKind};

#[cfg(test)]
mod loop_tests;
