//! Closed-loop protocol tests: several caches and one directory exchanging
//! messages through a FIFO "network", with coherence invariants checked
//! after every step. Includes property tests over random traffic.

use proptest::prelude::*;
use std::collections::VecDeque;

use crate::{
    CacheAction, CacheCtrl, CacheId, CacheOpResult, CacheState, CacheToDir, CpuOp, DirAction,
    DirCtrl, DirId, DirToCache, LineAddr,
};

/// In-flight message.
#[derive(Debug)]
enum Wire {
    ToDir(LineAddr, CacheId, CacheToDir),
    ToCache(LineAddr, CacheId, DirToCache),
}

struct Loop {
    caches: Vec<CacheCtrl>,
    dir: DirCtrl,
    wire: VecDeque<Wire>,
    /// Completed CPU ops per cache (in completion order).
    completions: Vec<Vec<(LineAddr, CpuOp)>>,
    /// Ops issued but not yet completed (cache, line, op).
    outstanding: Vec<(usize, LineAddr, CpuOp)>,
}

impl Loop {
    fn new(n: usize) -> Self {
        Loop {
            caches: (0..n).map(|i| CacheCtrl::new(CacheId(i as u32))).collect(),
            dir: DirCtrl::new(DirId(0)),
            wire: VecDeque::new(),
            completions: vec![Vec::new(); n],
            outstanding: Vec::new(),
        }
    }

    /// Issues a CPU op; returns false if the cache already has a pending op
    /// on that line (caller should pick something else).
    fn issue(&mut self, cache: usize, line: LineAddr, op: CpuOp) -> bool {
        if self
            .outstanding
            .iter()
            .any(|&(c, l, _)| c == cache && l == line)
        {
            return false;
        }
        match self.caches[cache].cpu_op(line, op) {
            CacheOpResult::Hit => {
                self.completions[cache].push((line, op));
            }
            CacheOpResult::Miss(kind) => {
                self.outstanding.push((cache, line, op));
                self.wire.push_back(Wire::ToDir(
                    line,
                    CacheId(cache as u32),
                    CacheToDir::Req(kind),
                ));
            }
        }
        true
    }

    fn deliver_one(&mut self) -> bool {
        let Some(msg) = self.wire.pop_front() else {
            return false;
        };
        match msg {
            Wire::ToDir(line, from, m) => {
                let mut acts = Vec::new();
                self.dir.handle(line, from, m, &mut acts);
                for act in acts {
                    let DirAction { to, msg, .. } = act;
                    self.wire.push_back(Wire::ToCache(line, to, msg));
                }
            }
            Wire::ToCache(line, to, m) => {
                let idx = to.0 as usize;
                let mut acts = Vec::new();
                self.caches[idx].handle(line, m, &mut acts);
                for act in acts {
                    match act {
                        CacheAction::Send(m) => self.wire.push_back(Wire::ToDir(line, to, m)),
                        CacheAction::CpuDone => {
                            let pos = self
                                .outstanding
                                .iter()
                                .position(|&(c, l, _)| c == idx && l == line)
                                .expect("completion without outstanding op");
                            let (_, _, op) = self.outstanding.remove(pos);
                            self.completions[idx].push((line, op));
                        }
                        CacheAction::Invalidated | CacheAction::Downgraded => {}
                    }
                }
            }
        }
        true
    }

    fn drain(&mut self) {
        let mut steps = 0;
        while self.deliver_one() {
            steps += 1;
            assert!(steps < 1_000_000, "protocol livelock");
            self.check_invariants();
        }
    }

    /// The fundamental coherence invariant: per line, at most one cache in
    /// M/E, and M/E excludes any S copy elsewhere.
    fn check_invariants(&self) {
        use std::collections::BTreeSet;
        let mut lines = BTreeSet::new();
        for c in &self.caches {
            for l in 0..64u64 {
                lines.insert(LineAddr(l));
            }
            let _ = c;
        }
        for &line in &lines {
            let mut owners = 0;
            let mut sharers = 0;
            for c in &self.caches {
                match c.state(line) {
                    CacheState::M | CacheState::E => owners += 1,
                    CacheState::S => sharers += 1,
                    CacheState::I => {}
                }
            }
            assert!(owners <= 1, "line {line}: {owners} owners");
            assert!(
                owners == 0 || sharers == 0,
                "line {line}: owner coexists with {sharers} sharers"
            );
        }
    }
}

#[test]
fn single_cache_read_then_write() {
    let mut l = Loop::new(2);
    let line = LineAddr(1);
    assert!(l.issue(0, line, CpuOp::Load));
    l.drain();
    assert_eq!(l.caches[0].state(line), CacheState::E);
    // E->M silent upgrade hits locally.
    assert!(l.issue(0, line, CpuOp::Store));
    assert_eq!(l.caches[0].state(line), CacheState::M);
    assert_eq!(l.completions[0].len(), 2);
}

#[test]
fn two_readers_share() {
    let mut l = Loop::new(2);
    let line = LineAddr(2);
    l.issue(0, line, CpuOp::Load);
    l.drain();
    l.issue(1, line, CpuOp::Load);
    l.drain();
    assert_eq!(l.caches[0].state(line), CacheState::S);
    assert_eq!(l.caches[1].state(line), CacheState::S);
}

#[test]
fn writer_invalidates_readers() {
    let mut l = Loop::new(3);
    let line = LineAddr(3);
    l.issue(0, line, CpuOp::Load);
    l.drain();
    l.issue(1, line, CpuOp::Load);
    l.drain();
    l.issue(2, line, CpuOp::Store);
    l.drain();
    assert_eq!(l.caches[0].state(line), CacheState::I);
    assert_eq!(l.caches[1].state(line), CacheState::I);
    assert_eq!(l.caches[2].state(line), CacheState::M);
}

#[test]
fn ping_pong_ownership() {
    let mut l = Loop::new(2);
    let line = LineAddr(4);
    for i in 0..10 {
        l.issue(i % 2, line, CpuOp::Rmw);
        l.drain();
        assert_eq!(l.caches[i % 2].state(line), CacheState::M);
        assert_eq!(l.caches[(i + 1) % 2].state(line), CacheState::I);
    }
}

#[test]
fn concurrent_writers_all_complete() {
    let mut l = Loop::new(8);
    let line = LineAddr(5);
    for c in 0..8 {
        l.issue(c, line, CpuOp::Store);
    }
    l.drain();
    let done: usize = l.completions.iter().map(|v| v.len()).sum();
    assert_eq!(done, 8, "every store must eventually complete");
    assert!(l.outstanding.is_empty());
}

#[test]
fn mixed_concurrent_traffic_completes() {
    let mut l = Loop::new(4);
    for c in 0..4 {
        l.issue(
            c,
            LineAddr(6),
            if c % 2 == 0 {
                CpuOp::Load
            } else {
                CpuOp::Store
            },
        );
        l.issue(c, LineAddr(7), CpuOp::Rmw);
    }
    l.drain();
    assert!(l.outstanding.is_empty());
    let done: usize = l.completions.iter().map(|v| v.len()).sum();
    assert_eq!(done, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences over a handful of lines: every issued op
    /// completes, and the single-writer invariant holds at every step.
    #[test]
    fn random_traffic_is_coherent(
        ops in proptest::collection::vec(
            (0usize..6, 0u64..4, 0usize..3, 0usize..4), 1..200)
    ) {
        let mut l = Loop::new(6);
        let mut issued = 0usize;
        for (cache, line, op, drain_mod) in ops {
            let op = match op { 0 => CpuOp::Load, 1 => CpuOp::Store, _ => CpuOp::Rmw };
            if l.issue(cache, LineAddr(line), op) {
                issued += 1;
            }
            // Sometimes deliver a few messages to interleave traffic.
            for _ in 0..drain_mod {
                l.deliver_one();
                l.check_invariants();
            }
        }
        l.drain();
        prop_assert!(l.outstanding.is_empty());
        let done: usize = l.completions.iter().map(|v| v.len()).sum();
        prop_assert_eq!(done, issued);
    }

    /// After draining, the directory's holder count matches the caches'
    /// actual states.
    #[test]
    fn directory_agrees_with_caches(
        ops in proptest::collection::vec((0usize..4, 0u64..3, 0usize..3), 1..80)
    ) {
        let mut l = Loop::new(4);
        for (cache, line, op) in ops {
            let op = match op { 0 => CpuOp::Load, 1 => CpuOp::Store, _ => CpuOp::Rmw };
            l.issue(cache, LineAddr(line), op);
            l.drain();
        }
        for line in 0..3u64 {
            let line = LineAddr(line);
            let holders = l.caches.iter().filter(|c| c.state(line).readable()).count();
            prop_assert_eq!(l.dir.holders(line), holders, "line {}", line);
        }
    }
}
/// Regression: a specific interleaving of 6 caches over 4 lines (found by
/// the property test above) once left an op outstanding after drain. The
/// fourth tuple element is how many single messages to deliver between
/// issues, reproducing the original partial-drain interleaving.
#[test]
fn partial_drain_interleaving_completes() {
    let ops: Vec<(usize, u64, usize, usize)> = vec![
        (0, 1, 0, 0),
        (0, 0, 0, 0),
        (0, 0, 2, 1),
        (3, 2, 1, 1),
        (1, 0, 2, 1),
        (0, 0, 2, 1),
        (4, 2, 2, 3),
        (5, 0, 2, 0),
        (0, 3, 1, 0),
        (0, 2, 1, 2),
        (3, 3, 1, 3),
        (2, 1, 1, 0),
        (3, 2, 1, 3),
        (5, 1, 0, 0),
        (3, 3, 1, 3),
        (3, 0, 1, 3),
        (1, 1, 2, 0),
        (3, 0, 0, 2),
        (2, 1, 1, 3),
        (2, 0, 2, 2),
        (5, 1, 2, 3),
        (4, 2, 1, 1),
        (0, 2, 2, 3),
        (5, 0, 0, 3),
        (1, 1, 2, 2),
        (0, 1, 2, 2),
        (2, 3, 0, 0),
        (5, 0, 0, 2),
        (3, 3, 2, 2),
        (0, 1, 0, 3),
        (3, 2, 2, 2),
        (0, 2, 1, 3),
        (4, 3, 1, 1),
        (3, 0, 0, 3),
        (2, 0, 0, 2),
        (4, 0, 2, 3),
        (5, 3, 2, 0),
        (1, 1, 1, 3),
        (3, 0, 0, 0),
        (3, 2, 0, 2),
        (5, 0, 1, 0),
        (5, 1, 0, 2),
        (5, 1, 0, 2),
        (0, 1, 0, 3),
        (4, 0, 2, 3),
        (0, 2, 0, 3),
        (0, 1, 2, 1),
        (0, 1, 1, 3),
        (4, 2, 0, 3),
        (2, 1, 1, 1),
        (4, 1, 0, 2),
        (3, 1, 0, 0),
        (2, 2, 0, 2),
        (1, 2, 0, 1),
    ];
    let mut l = Loop::new(6);
    for (cache, line, op, deliveries) in ops {
        let op = match op {
            0 => CpuOp::Load,
            1 => CpuOp::Store,
            _ => CpuOp::Rmw,
        };
        l.issue(cache, LineAddr(line), op);
        for _ in 0..deliveries {
            l.deliver_one();
        }
    }
    l.drain();
    assert!(l.outstanding.is_empty(), "ops stuck: {:?}", l.outstanding);
}
