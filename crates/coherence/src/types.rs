//! Shared protocol vocabulary.

use std::fmt;

/// A cache-line-granular physical address (the low 6 offset bits are already
/// stripped by the machine's address map).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Identifies an L1 cache controller (one per core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheId(pub u32);

/// Identifies a home directory controller (one per memory controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DirId(pub u32);

/// MESI stable states of a line in an L1 cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CacheState {
    /// Invalid — not present.
    #[default]
    I,
    /// Shared — clean, readable, possibly cached elsewhere.
    S,
    /// Exclusive — clean, sole copy, silently upgradable to M.
    E,
    /// Modified — dirty, sole copy.
    M,
}

impl CacheState {
    /// Whether a load hits in this state.
    pub fn readable(self) -> bool {
        !matches!(self, CacheState::I)
    }

    /// Whether a store/RMW hits in this state (E upgrades silently).
    pub fn writable(self) -> bool {
        matches!(self, CacheState::E | CacheState::M)
    }
}

/// A CPU memory operation as seen by the cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuOp {
    /// A read.
    Load,
    /// A write.
    Store,
    /// An atomic read-modify-write (needs ownership, like a store).
    Rmw,
}

impl CpuOp {
    /// Whether the operation needs write permission.
    pub fn needs_ownership(self) -> bool {
        matches!(self, CpuOp::Store | CpuOp::Rmw)
    }
}

/// Request kinds a cache sends to the home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Read permission (results in S or E).
    GetS,
    /// Write permission (results in M; sharers invalidated).
    GetM,
}

/// Messages from a cache to its home directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheToDir {
    /// A permission request.
    Req(ReqKind),
    /// Acknowledges an `Inv`; `dirty` carries modified data home.
    InvAck {
        /// Line was in M and data travels with the ack.
        dirty: bool,
    },
    /// Acknowledges a `Downgrade`; `dirty` carries modified data home.
    DowngradeAck {
        /// Line was in M and data travels with the ack.
        dirty: bool,
    },
}

/// Messages from a directory to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirToCache {
    /// Grants read permission; `exclusive` selects E over S.
    DataS {
        /// No other sharer exists — install in E.
        exclusive: bool,
    },
    /// Grants write permission (install in M).
    DataM,
    /// Drop the line and ack (with data if dirty).
    Inv,
    /// Demote M/E to S and ack (with data if dirty).
    Downgrade,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_permissions() {
        assert!(!CacheState::I.readable());
        assert!(CacheState::S.readable());
        assert!(!CacheState::S.writable());
        assert!(CacheState::E.writable());
        assert!(CacheState::M.writable());
    }

    #[test]
    fn op_ownership_needs() {
        assert!(!CpuOp::Load.needs_ownership());
        assert!(CpuOp::Store.needs_ownership());
        assert!(CpuOp::Rmw.needs_ownership());
    }

    #[test]
    fn line_addr_display() {
        assert_eq!(LineAddr(0x40).to_string(), "L0x40");
    }
}
