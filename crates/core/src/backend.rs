//! The LCU/LRT protocol driver: a [`LockBackend`] implementation wiring the
//! per-core LCU tables and per-memory-controller LRTs into the machine's
//! event loop.

use std::collections::{BTreeMap, HashMap};

use locksim_engine::stats::Counters;
use locksim_engine::Cycles;
use locksim_machine::{
    Addr, BackendFault, CoreId, Ep, LockBackend, Mach, Mode, ThreadId, WirePayload,
};
use locksim_topo::MsgClass;

use crate::entry::{EntryKind, Lcu, Status};
use crate::lrt::{Lrt, Residency};
use crate::msg::{Msg, Node};
use locksim_machine::Checker;

/// A thread's outstanding acquire request.
#[derive(Debug, Clone, Copy)]
struct Req {
    addr: Addr,
    mode: Mode,
    /// Core the live request was issued from.
    core: usize,
    /// The grant timed out at the issuing LCU and was passed on; the request
    /// must be re-issued when the thread is scheduled again.
    needs_reissue: bool,
}

/// A lock a thread currently holds.
#[derive(Debug, Clone, Copy)]
struct Held {
    mode: Mode,
    /// Granted in LRT overflow mode (no queue membership).
    overflow: bool,
    /// Transfer count at grant time (restored when the LCU entry is
    /// re-allocated on demand).
    cnt: u64,
}

#[derive(Debug, Clone, Copy)]
enum TimerKind {
    /// A trylock budget expired.
    TryExpire(ThreadId),
    /// A received grant was not taken within the threshold (§III-C).
    GrantTimeout {
        lcu: usize,
        addr: Addr,
        tid: ThreadId,
    },
    /// Software retry of an acquire (LCU exhaustion / nonblocking retry).
    RetryAcquire(ThreadId),
    /// A release could not allocate an LCU entry; retry the protocol part
    /// (the thread itself has already moved on).
    RetryRelease {
        tid: ThreadId,
        addr: Addr,
        mode: Mode,
        core: usize,
        cnt: u64,
    },
    /// A forwarded request found a full LCU; redeliver it shortly.
    RedeliverFwd {
        at: usize,
        addr: Addr,
        tail_tid: ThreadId,
        req: Node,
    },
}

/// The Lock Control Unit backend: the paper's contribution.
///
/// One [`Lcu`] per core and one [`Lrt`] per memory controller exchange the
/// messages of [`Msg`] over the simulated network. See the crate docs for
/// the protocol walkthrough.
#[derive(Debug)]
pub struct LcuBackend {
    lcus: Vec<Lcu>,
    lrts: Vec<Lrt>,
    /// Free Lock Table per core: locks released by a local thread but not
    /// yet requested by anyone else, parked so a repeat acquire is a local
    /// hit (paper §IV-C). Maps lock → (owner-of-record, transfer count).
    /// Ordered so eviction picks a deterministic victim — a `HashMap` here
    /// made same-seed runs diverge across processes.
    flts: Vec<BTreeMap<Addr, (ThreadId, u64)>>,
    reqs: HashMap<ThreadId, Req>,
    held: HashMap<(ThreadId, Addr), Held>,
    timers: HashMap<u64, TimerKind>,
    timer_seq: u64,
    counters: Counters,
    checker: Checker,
    initialized: bool,
}

impl Default for LcuBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl LcuBackend {
    /// Creates the backend; tables are sized lazily from the machine
    /// configuration on first use.
    pub fn new() -> Self {
        LcuBackend {
            lcus: Vec::new(),
            lrts: Vec::new(),
            flts: Vec::new(),
            reqs: HashMap::new(),
            held: HashMap::new(),
            timers: HashMap::new(),
            timer_seq: 0,
            counters: Counters::new(),
            checker: Checker::new(),
            initialized: false,
        }
    }

    fn ensure_init(&mut self, m: &Mach) {
        if !self.initialized {
            let cfg = m.cfg();
            self.lcus = (0..m.n_cores())
                .map(|_| Lcu::new(cfg.lcu_entries))
                .collect();
            self.lrts = (0..m.n_mems())
                .map(|_| Lrt::new(cfg.lrt_entries, cfg.lrt_assoc))
                .collect();
            self.flts = (0..m.n_cores()).map(|_| BTreeMap::new()).collect();
            self.initialized = true;
        }
    }

    fn arm(&mut self, m: &mut Mach, delay: Cycles, kind: TimerKind) {
        let token = self.timer_seq;
        self.timer_seq += 1;
        self.timers.insert(token, kind);
        m.set_timer(delay, token);
    }

    /// Sends a protocol message from an LCU to the home LRT.
    fn send_to_lrt(&mut self, m: &mut Mach, from_core: usize, msg: Msg) {
        let home = m.home_of(msg.addr());
        let extra = m.cfg().lcu_latency;
        m.send_wire(
            Ep::Core(from_core),
            Ep::Mem(home),
            MsgClass::Control,
            extra,
            msg,
        );
    }

    /// Sends a protocol message from an LRT to an LCU; `penalty` carries
    /// extra processing latency (overflow-table access).
    fn lrt_to_lcu(
        &mut self,
        m: &mut Mach,
        from_mem: usize,
        to_core: usize,
        penalty: Cycles,
        msg: Msg,
    ) {
        let extra = m.cfg().lrt_latency + penalty;
        let wrapped = ToLcu { core: to_core, msg };
        m.send_wire(
            Ep::Mem(from_mem),
            Ep::Core(to_core),
            MsgClass::Control,
            extra,
            wrapped,
        );
    }

    /// Direct LCU→LCU transfer.
    fn lcu_to_lcu(&mut self, m: &mut Mach, from: usize, to: usize, msg: Msg) {
        let extra = m.cfg().lcu_latency;
        let wrapped = ToLcu { core: to, msg };
        if from == to {
            // Same-core transfer (two threads sharing a core): model as a
            // local LCU operation.
            let home = m.home_of(wrapped.msg.addr());
            m.send_wire(
                Ep::Core(from),
                Ep::Mem(home),
                MsgClass::Control,
                0,
                LoopBack(wrapped),
            );
            return;
        }
        m.send_wire(
            Ep::Core(from),
            Ep::Core(to),
            MsgClass::Control,
            extra,
            wrapped,
        );
    }

    /// Allocates an entry for queue maintenance (release re-allocation or
    /// owner re-allocation on a forwarded request): ordinary entries first,
    /// then the remote-request nonblocking entry (§III-D), which exists so
    /// remote-service operations make progress when ordinary entries are
    /// exhausted.
    fn alloc_service_entry(&mut self, core: usize, addr: Addr, tid: ThreadId, mode: Mode) -> bool {
        if self.lcus[core]
            .alloc(addr, tid, mode, EntryKind::Ordinary)
            .is_some()
        {
            return true;
        }
        self.lcus[core]
            .alloc(addr, tid, mode, EntryKind::RemoteRequest)
            .is_some()
    }

    // ----------------------------------------------------------------
    // Acquire path
    // ----------------------------------------------------------------

    fn try_start_request(&mut self, m: &mut Mach, t: ThreadId) {
        let Some(req) = self.reqs.get(&t).copied() else {
            return;
        };
        let Some(core) = m.core_of(t) else {
            // Thread got preempted before we could issue; re-issued on
            // reschedule via `on_thread_scheduled`.
            if let Some(r) = self.reqs.get_mut(&t) {
                r.needs_reissue = true;
            }
            return;
        };
        let core = core.0 as usize;
        if let Some(r) = self.reqs.get_mut(&t) {
            r.core = core;
            r.needs_reissue = false;
        }
        let (addr, mode) = (req.addr, req.mode);
        if let Some(e) = self.lcus[core].get_mut(addr, t) {
            match e.status {
                // Fast local re-acquire of a released read entry (§III-B).
                Status::RdRel
                    if mode == Mode::Read && e.mode == Mode::Read && m.cfg().lcu_fast_reacquire =>
                {
                    e.status = Status::Acq;
                    let cnt = e.cnt;
                    self.counters.incr("lcu_fast_reacquires");
                    m.trace_entry_state(Ep::Core(core), addr, "Acq");
                    self.finish_grant(m, t, addr, mode, false, cnt);
                    return;
                }
                // A grant is parked here (stale or fresh).
                Status::Rcv => {
                    self.try_take(m, core, addr, t);
                    return;
                }
                // Entry busy releasing or otherwise unusable; spin in
                // software and retry.
                _ => {
                    let backoff = m.cfg().retry_backoff;
                    self.arm(m, backoff, TimerKind::RetryAcquire(t));
                    return;
                }
            }
        }
        // Allocate a fresh entry.
        match self.lcus[core].alloc_for_local(addr, t, mode) {
            Some(e) => {
                e.status = Status::Issued;
                let nonblocking = e.kind != EntryKind::Ordinary;
                let node = Node {
                    tid: t,
                    lcu: core,
                    mode,
                    nonblocking,
                    no_ovf: true,
                };
                self.counters.incr("lcu_requests");
                m.trace_entry_state(Ep::Core(core), addr, "Issued");
                self.send_to_lrt(m, core, Msg::Request { addr, req: node });
            }
            None => {
                // No entry of any kind: software spin, retry later (§III-D
                // guarantees the local-request entry frees eventually).
                self.counters.incr("lcu_exhausted");
                let backoff = m.cfg().retry_backoff;
                self.arm(m, backoff, TimerKind::RetryAcquire(t));
            }
        }
    }

    /// Completes a grant to the local thread: bookkeeping + machine grant.
    fn finish_grant(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        addr: Addr,
        mode: Mode,
        overflow: bool,
        cnt: u64,
    ) {
        self.reqs.remove(&t);
        self.held.insert(
            (t, addr),
            Held {
                mode,
                overflow,
                cnt,
            },
        );
        self.checker
            .on_grant_traced(addr, t, mode, m.tracer(), m.lockstat());
        m.grant_lock_in(t, m.cfg().lcu_latency);
    }

    /// A grant sits in `(lcu, addr, tid)` with status `Rcv`; take it if the
    /// thread is present and still wants it, otherwise handle timeout /
    /// abort / migration per §III-C.
    fn try_take(&mut self, m: &mut Mach, lcu: usize, addr: Addr, tid: ThreadId) {
        let Some(e) = self.lcus[lcu].get_mut(addr, tid) else {
            return;
        };
        if e.status != Status::Rcv {
            return;
        }
        let want = self.reqs.get(&tid).copied();
        let here = m.core_of(tid).map(|c| c.0 as usize) == Some(lcu) && m.is_scheduled(tid);
        match want {
            Some(req) if req.addr == addr && here => {
                // Normal take.
                e.status = Status::Acq;
                let cnt = e.cnt;
                let mode = e.mode;
                let uncontended = e.head && e.next.is_none();
                m.trace_entry_state(Ep::Core(lcu), addr, "Acq");
                if uncontended {
                    // Entry removed to leave room (§III-A case (a)); the LRT
                    // still records us as owner.
                    self.lcus[lcu].free(addr, tid);
                    self.counters.incr("lcu_uncontended_takes");
                } else {
                    self.counters.incr("lcu_contended_takes");
                }
                self.finish_grant(m, tid, addr, mode, false, cnt);
            }
            Some(req) if req.addr == addr && !here => {
                // Thread migrated or preempted: arm the grant timeout.
                let timeout = m.cfg().grant_timeout;
                self.counters.incr("lcu_grant_waits");
                self.arm(m, timeout, TimerKind::GrantTimeout { lcu, addr, tid });
            }
            _ => {
                // No live request (trylock expired, or a duplicate entry
                // from before a migration): pass the grant through at once.
                self.pass_through(m, lcu, addr, tid);
            }
        }
    }

    /// Forwards an unwanted grant: to the next node if any, else releases
    /// to the LRT / parks it as stale.
    fn pass_through(&mut self, m: &mut Mach, lcu: usize, addr: Addr, tid: ThreadId) {
        let (head, cnt, mode, next) = {
            let Some(e) = self.lcus[lcu].get_mut(addr, tid) else {
                return;
            };
            if e.status != Status::Rcv {
                return;
            }
            // New status decided up front; messages sent after the borrow ends.
            e.status = match (e.next, e.head) {
                (Some(_), true) | (None, true) => Status::Rel,
                (Some(_), false) | (None, false) => Status::RdRel,
            };
            (e.head, e.cnt, e.mode, e.next)
        };
        self.counters.incr("lcu_pass_throughs");
        m.trace_entry_state(Ep::Core(lcu), addr, if head { "Rel" } else { "RdRel" });
        match next {
            Some(n) => {
                if mode == Mode::Write && head {
                    // An aborted writer relinquishes its waiting-writer slot.
                    self.send_to_lrt(m, lcu, Msg::AbortNotify { addr });
                }
                if head {
                    self.send_head_token(m, lcu, tid, addr, cnt, n, mode == Mode::Read);
                } else {
                    // Non-head read grant we do not want: behave as an
                    // instantly-released intermediate reader.
                    debug_assert_eq!(mode, Mode::Read);
                    let g = Msg::DirectGrant {
                        addr,
                        tid: n.tid,
                        head: false,
                        cnt: 0,
                        ack: None,
                    };
                    self.lcu_to_lcu(m, lcu, n.lcu, g);
                }
            }
            None if head => {
                if mode == Mode::Write {
                    self.send_to_lrt(m, lcu, Msg::AbortNotify { addr });
                }
                let rel = Msg::ReleaseToLrt {
                    addr,
                    tid,
                    lcu,
                    mode,
                    overflow: false,
                };
                self.send_to_lrt(m, lcu, rel);
            }
            None => {
                // Non-head read grant, no next: parked as an instantly
                // released reader; the head token will flush the entry.
                debug_assert_eq!(mode, Mode::Read);
            }
        }
    }

    // ----------------------------------------------------------------
    // Release path
    // ----------------------------------------------------------------

    /// Releases the lock held via entry `(lcu, addr, tid)`. The entry must
    /// be in a holding state. Queue maintenance happens off the thread's
    /// critical path.
    fn release_entry(&mut self, m: &mut Mach, lcu: usize, addr: Addr, tid: ThreadId) {
        let e = self.lcus[lcu]
            .get_mut(addr, tid)
            .expect("releasing unknown entry");
        debug_assert!(matches!(e.status, Status::Acq | Status::Rcv));
        if e.mode == Mode::Read && !e.head {
            // Intermediate reader: silent release; wait for the head token
            // (§III-B). Locally re-acquirable meanwhile.
            e.status = Status::RdRel;
            self.counters.incr("lcu_rd_rel");
            m.trace_entry_state(Ep::Core(lcu), addr, "RdRel");
            return;
        }
        self.release_head(m, lcu, addr, tid);
    }

    /// Releases a head entry: direct transfer, writer handoff, or LRT
    /// release.
    fn release_head(&mut self, m: &mut Mach, lcu: usize, addr: Addr, tid: ThreadId) {
        let e = self.lcus[lcu].get_mut(addr, tid).expect("head entry");
        debug_assert!(e.head, "release_head on non-head");
        let cnt = e.cnt;
        m.trace_entry_state(Ep::Core(lcu), addr, "Rel");
        match e.next {
            Some(n) => {
                let from_read = e.mode == Mode::Read;
                e.status = Status::Rel;
                self.send_head_token(m, lcu, tid, addr, cnt, n, from_read);
            }
            None => {
                e.status = Status::Rel;
                self.counters.incr("lcu_lrt_releases");
                let mode = e.mode;
                let rel = Msg::ReleaseToLrt {
                    addr,
                    tid,
                    lcu,
                    mode,
                    overflow: false,
                };
                self.send_to_lrt(m, lcu, rel);
            }
        }
    }

    /// Passes the queue-head token from a releasing entry to `next`,
    /// applying the overflow-reader gating: a writer that may coexist with
    /// overflow-mode readers (`!no_ovf`), or any transfer under the
    /// via-LRT ablation, is granted by the LRT once the reader count
    /// drains; everything else transfers directly LCU→LCU. The releasing
    /// entry must already be in `Rel` status; the LRT acknowledges it.
    #[allow(clippy::too_many_arguments)] // protocol message fields travel together
    fn send_head_token(
        &mut self,
        m: &mut Mach,
        lcu: usize,
        releaser: ThreadId,
        addr: Addr,
        cnt: u64,
        next: Node,
        from_read_session: bool,
    ) {
        let gated = from_read_session && next.mode == Mode::Write && !next.no_ovf;
        if gated || !m.cfg().lcu_direct_transfer {
            self.counters.incr("lcu_writer_handoffs");
            m.lockstat_bump(addr, "lcu_writer_handoffs");
            let msg = Msg::WriterHandoff {
                addr,
                writer: next,
                cnt: cnt + 1,
                releaser: (lcu, releaser),
            };
            self.send_to_lrt(m, lcu, msg);
        } else {
            self.counters.incr("lcu_direct_transfers");
            m.lockstat_bump(addr, "lcu_direct_transfers");
            let g = Msg::DirectGrant {
                addr,
                tid: next.tid,
                head: true,
                cnt: cnt + 1,
                ack: Some((lcu, releaser)),
            };
            self.lcu_to_lcu(m, lcu, next.lcu, g);
        }
    }

    /// Makes a parked (FLT) release visible: re-allocates an entry for the
    /// owner-of-record and releases through the LRT, exactly as an
    /// uncontended release would have.
    fn flt_unpark_release(&mut self, m: &mut Mach, core: usize, lock: Addr) {
        let Some((tid, cnt)) = self.flts[core].remove(&lock) else {
            return;
        };
        self.counters.incr("flt_unparks");
        if self.alloc_service_entry(core, lock, tid, Mode::Write) {
            let e = self.lcus[core].get_mut(lock, tid).expect("just allocated");
            e.status = Status::Rel;
            e.head = true;
            e.cnt = cnt;
            let rel = Msg::ReleaseToLrt {
                addr: lock,
                tid,
                lcu: core,
                mode: Mode::Write,
                overflow: false,
            };
            self.send_to_lrt(m, core, rel);
        } else {
            let backoff = m.cfg().retry_backoff;
            self.arm(
                m,
                backoff,
                TimerKind::RetryRelease {
                    tid,
                    addr: lock,
                    mode: Mode::Write,
                    core,
                    cnt,
                },
            );
        }
    }

    // ----------------------------------------------------------------
    // LRT message handling
    // ----------------------------------------------------------------

    fn lrt_handle(&mut self, m: &mut Mach, mem: usize, msg: Msg) {
        match msg {
            Msg::Request { addr, req } => self.lrt_request(m, mem, addr, req),
            Msg::ReleaseToLrt {
                addr,
                tid,
                lcu,
                mode,
                overflow,
            } => self.lrt_release(m, mem, addr, tid, lcu, mode, overflow),
            Msg::HeadNotify {
                addr,
                node,
                cnt,
                ack,
            } => {
                let lrt = &mut self.lrts[mem];
                if let Some((e, _)) = lrt.get_mut(addr) {
                    if cnt > e.cnt {
                        e.cnt = cnt;
                        let was_writer_wait = node.mode == Mode::Write;
                        e.head = Some(node);
                        if was_writer_wait {
                            e.waiting_writers = e.waiting_writers.saturating_sub(1);
                        }
                    }
                }
                if let Some((alcu, atid)) = ack {
                    self.lrt_to_lcu(m, mem, alcu, 0, Msg::ReleaseAck { addr, tid: atid });
                }
            }
            Msg::WriterHandoff {
                addr,
                writer,
                cnt,
                releaser,
            } => {
                let (e, res) = self.lrts[mem].entry_mut(addr);
                e.cnt = e.cnt.max(cnt);
                e.head = Some(writer);
                e.pending_writer = Some((writer, cnt));
                let penalty = overflow_penalty(m, res);
                let fire = e.reader_cnt == 0;
                if fire {
                    e.pending_writer = None;
                    e.waiting_writers = e.waiting_writers.saturating_sub(1);
                }
                self.lrt_to_lcu(
                    m,
                    mem,
                    releaser.0,
                    penalty,
                    Msg::ReleaseAck {
                        addr,
                        tid: releaser.1,
                    },
                );
                if fire {
                    self.counters.incr("lrt_writer_grants");
                    let gcnt = self.lrts[mem]
                        .get_mut(addr)
                        .map(|(e, _)| e.cnt)
                        .unwrap_or(cnt);
                    let g = Msg::LrtGrant {
                        addr,
                        tid: writer.tid,
                        head: true,
                        overflow: false,
                        cnt: gcnt,
                    };
                    self.lrt_to_lcu(m, mem, writer.lcu, penalty, g);
                }
            }
            Msg::AbortNotify { addr } => {
                if let Some((e, _)) = self.lrts[mem].get_mut(addr) {
                    e.waiting_writers = e.waiting_writers.saturating_sub(1);
                }
            }
            other => panic!("LRT received unexpected message {other:?}"),
        }
    }

    fn lrt_request(&mut self, m: &mut Mach, mem: usize, addr: Addr, req: Node) {
        let now = m.now();
        let reservation_timeout = m.cfg().reservation_timeout;
        let (e, res) = self.lrts[mem].entry_mut(addr);
        let penalty = overflow_penalty(m, res);
        if e.head.is_none() {
            // Lock is free (possibly with draining overflow readers or an
            // active reservation).
            if let Some((rt, _, expiry)) = e.reservation {
                if now < expiry && rt != req.tid {
                    // Reserved for someone else: everyone retries (§III-D).
                    self.counters.incr("lrt_reservation_denials");
                    self.lrt_to_lcu(m, mem, req.lcu, penalty, Msg::Retry { addr, tid: req.tid });
                    return;
                }
                e.reservation = None;
            }
            if e.reader_cnt > 0 {
                // Only overflow readers hold the lock.
                match (req.mode, req.nonblocking) {
                    (Mode::Read, true) => {
                        e.reader_cnt += 1;
                        self.counters.incr("lrt_overflow_grants");
                        let g = Msg::LrtGrant {
                            addr,
                            tid: req.tid,
                            head: false,
                            overflow: true,
                            cnt: 0,
                        };
                        self.lrt_to_lcu(m, mem, req.lcu, penalty, g);
                    }
                    (Mode::Read, false) => {
                        // Join the (empty) queue as head of the read session.
                        e.head = Some(req);
                        e.tail = Some(req);
                        e.cnt += 1;
                        let gcnt = e.cnt;
                        let g = Msg::LrtGrant {
                            addr,
                            tid: req.tid,
                            head: true,
                            overflow: false,
                            cnt: gcnt,
                        };
                        self.lrt_to_lcu(m, mem, req.lcu, penalty, g);
                    }
                    (Mode::Write, false) => {
                        // Writer must wait for the overflow readers.
                        e.head = Some(req);
                        e.tail = Some(req);
                        e.waiting_writers += 1;
                        e.pending_writer = Some((req, e.cnt));
                        self.counters.incr("lrt_writer_gated");
                        m.trace_entry_state(Ep::Mem(mem), addr, "LrtWriterGated");
                    }
                    (Mode::Write, true) => {
                        self.deny_nonblocking(m, mem, addr, req, penalty, reservation_timeout);
                    }
                }
                return;
            }
            // Truly free: grant as (sole) head.
            e.head = Some(req);
            e.tail = Some(req);
            e.cnt += 1;
            let gcnt = e.cnt;
            self.counters.incr("lrt_free_grants");
            m.trace_entry_state(Ep::Mem(mem), addr, "LrtHead");
            let g = Msg::LrtGrant {
                addr,
                tid: req.tid,
                head: true,
                overflow: false,
                cnt: gcnt,
            };
            self.lrt_to_lcu(m, mem, req.lcu, penalty, g);
            return;
        }
        // Lock taken with a queue (or at least an owner).
        if req.nonblocking {
            let head = e.head.expect("checked");
            let readable = req.mode == Mode::Read
                && head.mode == Mode::Read
                && e.waiting_writers == 0
                && e.pending_writer.is_none();
            if readable {
                e.reader_cnt += 1;
                self.counters.incr("lrt_overflow_grants");
                let g = Msg::LrtGrant {
                    addr,
                    tid: req.tid,
                    head: false,
                    overflow: true,
                    cnt: 0,
                };
                self.lrt_to_lcu(m, mem, req.lcu, penalty, g);
            } else {
                self.deny_nonblocking(m, mem, addr, req, penalty, reservation_timeout);
            }
            return;
        }
        // Ordinary request: enqueue at the tail. Writers are stamped with
        // whether overflow readers existed — if none did, a read session
        // may transfer to them directly (the count only drains from here).
        let mut req = req;
        req.no_ovf = e.reader_cnt == 0;
        let old_tail = e.tail.expect("queue with head has tail");
        e.tail = Some(req);
        if req.mode == Mode::Write {
            e.waiting_writers += 1;
        }
        self.counters.incr("lrt_forwards");
        m.trace_entry_state(Ep::Mem(mem), addr, "LrtEnqueued");
        let fwd = Msg::FwdRequest {
            addr,
            tail_tid: old_tail.tid,
            req,
        };
        self.lrt_to_lcu(m, mem, old_tail.lcu, penalty, fwd);
    }

    fn deny_nonblocking(
        &mut self,
        m: &mut Mach,
        mem: usize,
        addr: Addr,
        req: Node,
        penalty: Cycles,
        window: Cycles,
    ) {
        let now = m.now();
        let reservations_on = m.cfg().lcu_reservation;
        let (e, _) = self.lrts[mem].entry_mut(addr);
        let expired = e.reservation.is_none_or(|(_, _, exp)| exp <= now);
        if expired && reservations_on {
            e.reservation = Some((req.tid, req.lcu, now + window));
            self.counters.incr("lrt_reservations");
            m.trace_entry_state(Ep::Mem(mem), addr, "LrtReserved");
        }
        self.counters.incr("lrt_retries");
        self.lrt_to_lcu(m, mem, req.lcu, penalty, Msg::Retry { addr, tid: req.tid });
    }

    #[allow(clippy::too_many_arguments)] // protocol message fields travel together
    fn lrt_release(
        &mut self,
        m: &mut Mach,
        mem: usize,
        addr: Addr,
        tid: ThreadId,
        lcu: usize,
        mode: Mode,
        overflow: bool,
    ) {
        let now = m.now();
        let (e, res) = self.lrts[mem].entry_mut(addr);
        let penalty = overflow_penalty(m, res);
        if overflow {
            debug_assert!(e.reader_cnt > 0, "overflow release with zero count");
            e.reader_cnt = e.reader_cnt.saturating_sub(1);
            self.counters.incr("lrt_overflow_releases");
            if e.reader_cnt == 0 {
                if let Some((writer, wcnt)) = e.pending_writer.take() {
                    e.waiting_writers = e.waiting_writers.saturating_sub(1);
                    e.cnt = e.cnt.max(wcnt);
                    let gcnt = e.cnt;
                    self.counters.incr("lrt_writer_grants");
                    let g = Msg::LrtGrant {
                        addr,
                        tid: writer.tid,
                        head: true,
                        overflow: false,
                        cnt: gcnt,
                    };
                    self.lrt_to_lcu(m, mem, writer.lcu, penalty, g);
                }
            }
            self.lrts[mem].remove_if_dead(addr, now);
            return;
        }
        let Some(head) = e.head else {
            panic!("release of free lock {addr} by {tid:?}");
        };
        let tail = e.tail.expect("tail");
        if head.tid == tid && head.lcu == lcu {
            if tail.tid == tid && tail.lcu == lcu {
                // Sole node: the lock becomes free.
                e.head = None;
                e.tail = None;
                self.counters.incr("lrt_frees");
                m.trace_entry_state(Ep::Mem(mem), addr, "LrtFree");
                self.lrt_to_lcu(m, mem, lcu, penalty, Msg::ReleaseAck { addr, tid });
                self.lrts[mem].remove_if_dead(addr, now);
            } else {
                // Race (§III-A): a new requestor was recorded as tail while
                // this release was in flight; the releasing entry will serve
                // the forwarded request directly.
                self.counters.incr("lrt_release_retries");
                self.lrt_to_lcu(m, mem, lcu, penalty, Msg::Retry { addr, tid });
            }
            return;
        }
        // Release from an LCU that is not the recorded head: a migrated
        // owner (§III-C). Forward to the head LCU; it hops along the queue
        // if needed.
        self.counters.incr("lrt_remote_releases");
        let fwd = Msg::FwdRelease { addr, tid, mode };
        self.lrt_to_lcu(m, mem, head.lcu, penalty, fwd);
    }

    // ----------------------------------------------------------------
    // LCU message handling
    // ----------------------------------------------------------------

    fn lcu_handle(&mut self, m: &mut Mach, at: usize, msg: Msg) {
        match msg {
            Msg::LrtGrant {
                addr,
                tid,
                head,
                overflow,
                cnt,
            } => {
                if overflow {
                    // Overflow-mode read grant: the nonblocking entry is
                    // freed; the thread holds without queue membership.
                    let core = at;
                    if self.lcus[core].get(addr, tid).is_some() {
                        self.lcus[core].free(addr, tid);
                    }
                    if self.reqs.get(&tid).map(|r| r.addr) != Some(addr) {
                        // Trylock expired while the grant was in flight:
                        // give it straight back.
                        let rel = Msg::ReleaseToLrt {
                            addr,
                            tid,
                            lcu: core,
                            mode: Mode::Read,
                            overflow: true,
                        };
                        self.send_to_lrt(m, core, rel);
                        return;
                    }
                    self.counters.incr("lcu_overflow_takes");
                    self.finish_grant(m, tid, addr, Mode::Read, true, 0);
                    return;
                }
                let core = at;
                if self.lcus[core].get(addr, tid).is_none() {
                    // Entry vanished (aborted + freed): the LRT granted us a
                    // lock nobody wants; the grant is dropped and the LRT
                    // entry will be repaired by the next requestor's race
                    // handling.
                    self.counters.incr("lcu_orphan_grants");
                    return;
                }
                self.counters.incr("lcu_lrt_grants");
                // Arrival handling is identical to a direct grant (the LRT
                // already points at us, so no acknowledgement is owed).
                self.lcu_direct_grant(m, core, addr, tid, head, cnt, None);
            }
            Msg::FwdRequest {
                addr,
                tail_tid,
                req,
            } => self.lcu_fwd_request(m, at, addr, tail_tid, req),
            Msg::Retry { addr, tid } => {
                // Either a nonblocking denial (entry Issued) or a release
                // race (entry Rel).
                let core = at;
                if self.lcus[core].get(addr, tid).is_some() {
                    let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                    match e.status {
                        Status::Issued => {
                            // Nonblocking request denied: free the entry and
                            // retry from software after a backoff.
                            self.lcus[core].free(addr, tid);
                            self.counters.incr("lcu_nb_retries");
                            if self.reqs.contains_key(&tid) {
                                let backoff = m.cfg().retry_backoff;
                                self.arm(m, backoff, TimerKind::RetryAcquire(tid));
                            }
                        }
                        Status::Rel => {
                            // Release race: keep the entry; the forwarded
                            // request will arrive and we transfer directly.
                            self.counters.incr("lcu_release_races");
                        }
                        other => panic!("Retry at entry in {other:?}"),
                    }
                }
            }
            Msg::ReleaseAck { addr, tid } => {
                if let Some(e) = self.lcus[at].get(addr, tid) {
                    debug_assert_eq!(e.status, Status::Rel, "ack for non-releasing entry");
                    self.lcus[at].free(addr, tid);
                    self.counters.incr("lcu_entry_frees");
                }
            }
            Msg::DirectGrant {
                addr,
                tid,
                head,
                cnt,
                ack,
            } => self.lcu_direct_grant(m, at, addr, tid, head, cnt, ack),
            Msg::Wait { addr, tid } => {
                if let Some(e) = self.lcus[at].get_mut(addr, tid) {
                    if e.status == Status::Issued {
                        e.status = Status::Wait;
                        m.trace_entry_state(Ep::Core(at), addr, "Wait");
                    }
                }
            }
            Msg::FwdRelease { addr, tid, mode } => self.lcu_fwd_release(m, at, addr, tid, mode),
            other => panic!("LCU received unexpected message {other:?}"),
        }
    }

    /// Finds which LCU holds an entry for `(addr, tid)`. Protocol messages
    /// address entries by tuple; physical delivery in this model is keyed
    /// by the same tuple, so a linear scan over cores stands in for the
    /// per-core table lookup.
    fn find_entry_core(&self, addr: Addr, tid: ThreadId) -> Option<usize> {
        self.lcus.iter().position(|l| l.get(addr, tid).is_some())
    }

    fn lcu_fwd_request(
        &mut self,
        m: &mut Mach,
        at: usize,
        addr: Addr,
        tail_tid: ThreadId,
        req: Node,
    ) {
        // Locate the tail entry at the addressed LCU; if the owner took the
        // lock uncontended the entry was deallocated here and must be
        // re-allocated (§III-A case (b)).
        let core = at;
        // A remote requestor appeared for a parked lock: unpark the
        // deferred release and transfer to the requestor directly.
        if let Some(&(owner, cnt)) = self.flts[core].get(&addr) {
            if owner == tail_tid {
                self.flts[core].remove(&addr);
                self.counters.incr("flt_fwd_unparks");
                if self.lcus[core]
                    .alloc(addr, tail_tid, Mode::Write, EntryKind::Ordinary)
                    .is_none()
                {
                    // Table full: repark and NACK-redeliver.
                    self.flts[core].insert(addr, (owner, cnt));
                    let backoff = m.cfg().retry_backoff;
                    self.arm(
                        m,
                        backoff,
                        TimerKind::RedeliverFwd {
                            at,
                            addr,
                            tail_tid,
                            req,
                        },
                    );
                    return;
                }
                let e = self.lcus[core]
                    .get_mut(addr, tail_tid)
                    .expect("just allocated");
                e.status = Status::Rel;
                e.head = true;
                e.cnt = cnt;
                e.next = Some(req);
                let g = Msg::DirectGrant {
                    addr,
                    tid: req.tid,
                    head: true,
                    cnt: cnt + 1,
                    ack: Some((core, tail_tid)),
                };
                self.counters.incr("lcu_direct_transfers");
                m.lockstat_bump(addr, "lcu_direct_transfers");
                self.lcu_to_lcu(m, core, req.lcu, g);
                return;
            }
        }
        if self.lcus[core].get(addr, tail_tid).is_none() {
            let Some(held) = self.held.get(&(tail_tid, addr)).copied() else {
                // The owner's release is racing with this forward: its
                // ReleaseToLrt will get a Retry (the LRT already recorded
                // the new tail) and its entry will be waiting for exactly
                // this message. Redeliver until that entry exists.
                self.counters.incr("lcu_fwd_orphans");
                let backoff = m.cfg().retry_backoff;
                self.arm(
                    m,
                    backoff,
                    TimerKind::RedeliverFwd {
                        at,
                        addr,
                        tail_tid,
                        req,
                    },
                );
                return;
            };
            // Re-allocation creates a *queue node*, so only ordinary
            // entries qualify (nonblocking entries never join queues,
            // §III-D); NACK-redeliver until one frees. Releases keep making
            // progress through the remote-request entry, which frees
            // ordinary entries over time.
            if self.lcus[core]
                .alloc(addr, tail_tid, held.mode, EntryKind::Ordinary)
                .is_none()
            {
                self.counters.incr("lcu_fwd_noentry");
                let backoff = m.cfg().retry_backoff;
                self.arm(
                    m,
                    backoff,
                    TimerKind::RedeliverFwd {
                        at,
                        addr,
                        tail_tid,
                        req,
                    },
                );
                return;
            }
            let e = self.lcus[core]
                .get_mut(addr, tail_tid)
                .expect("just allocated");
            e.status = Status::Acq;
            e.head = true;
            e.cnt = held.cnt;
            self.counters.incr("lcu_reallocs");
        }
        let e = self.lcus[core].get_mut(addr, tail_tid).expect("tail entry");
        if e.next.is_some() {
            // Stale forward (should not happen: the LRT serializes tail
            // updates); count and drop.
            self.counters.incr("lcu_stale_forwards");
            return;
        }
        e.next = Some(req);
        let shared_read = e.mode == Mode::Read && req.mode == Mode::Read && e.read_session();
        let stale = e.status == Status::Rcv && e.stale_grant;
        let releasing = e.status == Status::Rel;
        if shared_read {
            // Concurrent reader: grant immediately (non-head).
            self.counters.incr("lcu_read_shares");
            let g = Msg::DirectGrant {
                addr,
                tid: req.tid,
                head: false,
                cnt: 0,
                ack: None,
            };
            self.lcu_to_lcu(m, core, req.lcu, g);
        } else if releasing {
            // Release race resolution: transfer to the requestor (gated if
            // it is a writer that may coexist with overflow readers).
            let cnt = e.cnt;
            let from_read = e.mode == Mode::Read;
            self.counters.incr("lcu_race_transfers");
            self.send_head_token(m, core, tail_tid, addr, cnt, req, from_read);
        } else if stale {
            // Grant parked with no taker: pass it on at once.
            self.pass_through(m, core, addr, tail_tid);
        } else {
            let w = Msg::Wait { addr, tid: req.tid };
            self.lcu_to_lcu(m, core, req.lcu, w);
        }
    }

    #[allow(clippy::too_many_arguments)] // protocol message fields travel together
    fn lcu_direct_grant(
        &mut self,
        m: &mut Mach,
        at: usize,
        addr: Addr,
        tid: ThreadId,
        head: bool,
        cnt: u64,
        ack: Option<(usize, ThreadId)>,
    ) {
        let core = at;
        if self.lcus[core].get(addr, tid).is_none() {
            self.counters.incr("lcu_orphan_grants");
            return;
        }
        let status = self.lcus[core].get(addr, tid).expect("entry").status;
        match status {
            Status::Issued | Status::Wait => {
                let notify = {
                    let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                    e.status = Status::Rcv;
                    m.trace_entry_state(Ep::Core(core), addr, "Rcv");
                    e.head |= head;
                    if head {
                        e.cnt = cnt;
                        Some(Node {
                            tid,
                            lcu: core,
                            mode: e.mode,
                            nonblocking: false,
                            no_ovf: true,
                        })
                    } else {
                        debug_assert!(ack.is_none());
                        None
                    }
                };
                if let Some(node) = notify {
                    self.counters.incr("lcu_head_notifies");
                    self.send_to_lrt(
                        m,
                        core,
                        Msg::HeadNotify {
                            addr,
                            node,
                            cnt,
                            ack,
                        },
                    );
                }
                self.propagate_read_grant(m, core, addr, tid);
                self.try_take(m, core, addr, tid);
            }
            Status::Rcv | Status::Acq => {
                // A reader that already holds (or received) the lock gets
                // the head token.
                debug_assert!(head, "duplicate non-head grant");
                let (node, was_rcv) = {
                    let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                    e.head = true;
                    e.cnt = cnt;
                    (
                        Node {
                            tid,
                            lcu: core,
                            mode: e.mode,
                            nonblocking: false,
                            no_ovf: true,
                        },
                        e.status == Status::Rcv,
                    )
                };
                self.counters.incr("lcu_head_notifies");
                self.send_to_lrt(
                    m,
                    core,
                    Msg::HeadNotify {
                        addr,
                        node,
                        cnt,
                        ack,
                    },
                );
                if was_rcv {
                    self.try_take(m, core, addr, tid);
                }
            }
            Status::RdRel => {
                // Token arrives at a released intermediate reader: bypass
                // it to the next node, or release to the LRT if last.
                debug_assert!(head, "non-head grant to RdRel entry");
                let next = self.lcus[core].get(addr, tid).expect("entry").next;
                self.counters.incr("lcu_token_bypasses");
                match next {
                    Some(n)
                        if n.mode == Mode::Write && (!n.no_ovf || !m.cfg().lcu_direct_transfer) =>
                    {
                        // The writer may coexist with overflow readers: the
                        // LRT must gate its grant. Become the head first
                        // (acknowledging the original releaser), then hand
                        // off; our entry awaits the handoff's ack.
                        {
                            let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                            e.status = Status::Rel;
                            e.head = true;
                            e.cnt = cnt;
                        }
                        let node = Node {
                            tid,
                            lcu: core,
                            mode: Mode::Read,
                            nonblocking: false,
                            no_ovf: true,
                        };
                        self.send_to_lrt(
                            m,
                            core,
                            Msg::HeadNotify {
                                addr,
                                node,
                                cnt,
                                ack,
                            },
                        );
                        self.send_head_token(m, core, tid, addr, cnt, n, true);
                    }
                    Some(n) => {
                        self.lcus[core].free(addr, tid);
                        let g = Msg::DirectGrant {
                            addr,
                            tid: n.tid,
                            head: true,
                            cnt: cnt + 1,
                            ack,
                        };
                        self.lcu_to_lcu(m, core, n.lcu, g);
                    }
                    None => {
                        // Last reader in the session: the lock frees. We
                        // must both notify the LRT (becoming head) and
                        // immediately release.
                        {
                            let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                            e.status = Status::Rel;
                            e.head = true;
                            e.cnt = cnt;
                        }
                        let node = Node {
                            tid,
                            lcu: core,
                            mode: Mode::Read,
                            nonblocking: false,
                            no_ovf: true,
                        };
                        self.send_to_lrt(
                            m,
                            core,
                            Msg::HeadNotify {
                                addr,
                                node,
                                cnt,
                                ack,
                            },
                        );
                        let rel = Msg::ReleaseToLrt {
                            addr,
                            tid,
                            lcu: core,
                            mode: Mode::Read,
                            overflow: false,
                        };
                        self.send_to_lrt(m, core, rel);
                    }
                }
            }
            Status::Rel => {
                // Grant reached an entry that is already releasing — the
                // release-race transfer already happened; drop.
                self.counters.incr("lcu_grant_to_releasing");
            }
        }
    }

    /// If this reader entry holds a grant and its next is also a reader
    /// that has not been granted yet, propagate the (non-head) grant.
    fn propagate_read_grant(&mut self, m: &mut Mach, core: usize, addr: Addr, tid: ThreadId) {
        let e = self.lcus[core].get_mut(addr, tid).expect("entry");
        if e.mode != Mode::Read || !matches!(e.status, Status::Rcv | Status::Acq) {
            return;
        }
        if let Some(n) = e.next {
            if n.mode == Mode::Read {
                self.counters.incr("lcu_read_propagations");
                let g = Msg::DirectGrant {
                    addr,
                    tid: n.tid,
                    head: false,
                    cnt: 0,
                    ack: None,
                };
                self.lcu_to_lcu(m, core, n.lcu, g);
            }
        }
    }

    fn lcu_fwd_release(&mut self, m: &mut Mach, at: usize, addr: Addr, tid: ThreadId, mode: Mode) {
        // Look at the addressed LCU first; if the entry moved (reader chain
        // traversal), fall back to locating it anywhere. In hardware the
        // message hops next-pointer by next-pointer; the tuple lookup
        // stands in for the traversal (the timing difference is a few
        // control hops on an already off-critical-path operation).
        let found = if self.lcus[at].get(addr, tid).is_some() {
            Some(at)
        } else {
            self.find_entry_core(addr, tid)
        };
        if let Some(core) = found {
            let st = self.lcus[core].get(addr, tid).expect("entry").status;
            match st {
                Status::Acq | Status::Rcv => {
                    self.counters.incr("lcu_remote_release_served");
                    // Make sure a parked Rcv becomes a real hold first.
                    if st == Status::Rcv {
                        let e = self.lcus[core].get_mut(addr, tid).expect("entry");
                        e.status = Status::Acq;
                    }
                    self.release_entry(m, core, addr, tid);
                }
                _ => {
                    self.counters.incr("lcu_remote_release_dropped");
                }
            }
        } else {
            let _ = mode;
            self.counters.incr("lcu_remote_release_missing");
        }
    }
}

/// Extra LRT latency when the entry lives in the memory overflow table.
fn overflow_penalty(m: &Mach, res: Residency) -> Cycles {
    match res {
        Residency::Table => 0,
        Residency::Overflow => m.cfg().lrt_overflow_latency,
    }
}

/// An LCU-bound message with its destination core: protocol messages are
/// physically addressed to a specific LCU, which matters when a migrated
/// thread briefly has entries at two LCUs.
struct ToLcu {
    core: usize,
    msg: Msg,
}

/// Same-core transfers are routed through a loop via the home memory
/// endpoint to keep using the wire abstraction; the payload marks them.
struct LoopBack(ToLcu);

impl LockBackend for LcuBackend {
    fn name(&self) -> &'static str {
        "lcu"
    }

    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        mode: Mode,
        try_for: Option<Cycles>,
    ) {
        self.ensure_init(m);
        assert!(
            !self.reqs.contains_key(&t),
            "thread {t:?} already has an acquire outstanding"
        );
        assert!(
            !self.held.contains_key(&(t, lock)),
            "thread {t:?} re-acquiring held lock {lock}"
        );
        let core = m.core_of(t).expect("acquire from scheduled thread").0 as usize;
        // FLT fast path (§IV-C): the same thread re-acquiring a lock it
        // parked at this core takes it locally, like a biased lock.
        if let Some(&(owner, cnt)) = self.flts[core].get(&lock) {
            if owner == t && mode == Mode::Write {
                self.flts[core].remove(&lock);
                self.counters.incr("flt_hits");
                self.held.insert(
                    (t, lock),
                    Held {
                        mode,
                        overflow: false,
                        cnt,
                    },
                );
                self.checker
                    .on_grant_traced(lock, t, mode, m.tracer(), m.lockstat());
                m.grant_lock_in(t, m.cfg().lcu_latency);
                return;
            }
            // A different local thread (or a read acquire): the parked
            // release must become visible first.
            self.flt_unpark_release(m, core, lock);
        }
        self.reqs.insert(
            t,
            Req {
                addr: lock,
                mode,
                core,
                needs_reissue: false,
            },
        );
        if let Some(budget) = try_for {
            if budget == 0 {
                // Degenerate trylock: single attempt semantics still need a
                // request round-trip; give it one retry-backoff window.
                let backoff = m.cfg().retry_backoff;
                self.arm(m, backoff, TimerKind::TryExpire(t));
            } else {
                self.arm(m, budget, TimerKind::TryExpire(t));
            }
        }
        self.try_start_request(m, t);
    }

    fn on_release(&mut self, m: &mut Mach, t: ThreadId, lock: Addr, mode: Mode) {
        self.ensure_init(m);
        let held = self
            .held
            .remove(&(t, lock))
            .unwrap_or_else(|| panic!("{t:?} releasing {lock} it does not hold"));
        debug_assert_eq!(held.mode, mode, "release mode mismatch");
        self.checker
            .on_release_traced(lock, t, mode, m.tracer(), m.lockstat());
        let core = m.core_of(t).expect("release from scheduled thread").0 as usize;
        let lcu_lat = m.cfg().lcu_latency;
        if held.overflow {
            // Overflow readers have no entry; release goes straight home.
            let rel = Msg::ReleaseToLrt {
                addr: lock,
                tid: t,
                lcu: core,
                mode,
                overflow: true,
            };
            self.send_to_lrt(m, core, rel);
            m.complete_release_in(t, lcu_lat);
            return;
        }
        let local = self.lcus[core].get(lock, t).is_some();
        match (local, self.find_entry_core(lock, t)) {
            (true, _) => {
                self.release_entry(m, core, lock, t);
            }
            (false, Some(_remote_core)) => {
                // The holding entry is on another core (we migrated while
                // holding). Send the release to the LRT, which forwards it
                // to the entry (§III-C remote release).
                self.counters.incr("lcu_remote_release_sent");
                let rel = Msg::ReleaseToLrt {
                    addr: lock,
                    tid: t,
                    lcu: core,
                    mode,
                    overflow: false,
                };
                self.send_to_lrt(m, core, rel);
            }
            (false, None)
                if mode == Mode::Write
                    && m.cfg().flt_entries > 0
                    && self.lcus[core].get(lock, t).is_none() =>
            {
                // FLT (§IV-C): park the uncontended write release locally.
                // The LRT keeps recording us as owner; a forwarded request
                // unparks and transfers.
                if self.flts[core].len() >= m.cfg().flt_entries {
                    // Evict the lowest-addressed park by making its release
                    // visible (deterministic victim selection).
                    if let Some(&victim) = self.flts[core].keys().next() {
                        self.flt_unpark_release(m, core, victim);
                    }
                }
                self.flts[core].insert(lock, (t, held.cnt));
                self.counters.incr("flt_parks");
            }
            (false, None) => {
                // Uncontended hold: the entry was deallocated at take time.
                // Re-allocate and release through the LRT (§III-A). If no
                // entry is free (even the remote-request one), retry the
                // protocol part shortly — the thread itself proceeds.
                if self.alloc_service_entry(core, lock, t, mode) {
                    let e = self.lcus[core].get_mut(lock, t).expect("just allocated");
                    e.status = Status::Rel;
                    e.head = true;
                    e.cnt = held.cnt;
                    self.counters.incr("lcu_uncontended_releases");
                    let rel = Msg::ReleaseToLrt {
                        addr: lock,
                        tid: t,
                        lcu: core,
                        mode,
                        overflow: false,
                    };
                    self.send_to_lrt(m, core, rel);
                } else {
                    // The rel instruction spins until an entry frees; the
                    // thread stays blocked in the release meanwhile.
                    self.counters.incr("lcu_release_noentry");
                    let backoff = m.cfg().retry_backoff;
                    self.arm(
                        m,
                        backoff,
                        TimerKind::RetryRelease {
                            tid: t,
                            addr: lock,
                            mode,
                            core,
                            cnt: held.cnt,
                        },
                    );
                    return;
                }
            }
        }
        m.complete_release_in(t, lcu_lat);
    }

    fn on_wire(&mut self, m: &mut Mach, payload: WirePayload) {
        self.ensure_init(m);
        let payload = match payload.downcast::<LoopBack>() {
            Ok(lb) => {
                // Same-core transfer bounced via the home node: handle as a
                // normal LCU message now.
                self.lcu_handle(m, lb.0.core, lb.0.msg);
                return;
            }
            Err(p) => p,
        };
        let payload = match payload.downcast::<ToLcu>() {
            Ok(tl) => {
                self.lcu_handle(m, tl.core, tl.msg);
                return;
            }
            Err(p) => p,
        };
        let msg = payload.downcast::<Msg>().expect("unknown wire payload");
        let mem = m.home_of(msg.addr());
        self.lrt_handle(m, mem, msg);
    }

    fn on_timer(&mut self, m: &mut Mach, token: u64) {
        self.ensure_init(m);
        let Some(kind) = self.timers.remove(&token) else {
            return;
        };
        match kind {
            TimerKind::TryExpire(t) => {
                if let Some(req) = self.reqs.get(&t).copied() {
                    self.counters.incr("lcu_try_expires");
                    self.reqs.remove(&t);
                    // Entry cleanup is lazy: any grant that arrives for the
                    // abandoned entry passes through. If the entry is still
                    // merely Issued/Wait, it stays queued and forwards.
                    m.fail_lock(t);
                    let _ = req;
                }
            }
            TimerKind::GrantTimeout { lcu, addr, tid } => {
                let still_rcv = self.lcus[lcu]
                    .get(addr, tid)
                    .map(|e| e.status == Status::Rcv)
                    .unwrap_or(false);
                if !still_rcv {
                    return;
                }
                // Thread returned meanwhile?
                let here = m.core_of(tid).map(|c| c.0 as usize) == Some(lcu) && m.is_scheduled(tid);
                if here && self.reqs.get(&tid).is_some_and(|r| r.addr == addr) {
                    self.try_take(m, lcu, addr, tid);
                    return;
                }
                self.counters.incr("lcu_grant_timeouts");
                let has_next = self.lcus[lcu].get(addr, tid).and_then(|e| e.next).is_some();
                if has_next {
                    self.pass_through(m, lcu, addr, tid);
                    if let Some(r) = self.reqs.get_mut(&tid) {
                        if r.addr == addr {
                            r.needs_reissue = true;
                        }
                    }
                } else if self.reqs.get(&tid).is_some_and(|r| r.addr == addr) {
                    // Keep the grant parked for the absent thread; new
                    // requestors will flush it via the stale flag.
                    if let Some(e) = self.lcus[lcu].get_mut(addr, tid) {
                        e.stale_grant = true;
                    }
                } else {
                    // Nobody wants it: release.
                    self.pass_through(m, lcu, addr, tid);
                }
            }
            TimerKind::RetryAcquire(t) => {
                if self.reqs.contains_key(&t) {
                    self.try_start_request(m, t);
                }
            }
            TimerKind::RetryRelease {
                tid,
                addr,
                mode,
                core,
                cnt,
            } => {
                if self.alloc_service_entry(core, addr, tid, mode) {
                    let e = self.lcus[core].get_mut(addr, tid).expect("just allocated");
                    e.status = Status::Rel;
                    e.head = true;
                    e.cnt = cnt;
                    self.counters.incr("lcu_uncontended_releases");
                    let rel = Msg::ReleaseToLrt {
                        addr,
                        tid,
                        lcu: core,
                        mode,
                        overflow: false,
                    };
                    self.send_to_lrt(m, core, rel);
                    m.complete_release_in(tid, m.cfg().lcu_latency);
                } else {
                    let backoff = m.cfg().retry_backoff;
                    self.arm(
                        m,
                        backoff,
                        TimerKind::RetryRelease {
                            tid,
                            addr,
                            mode,
                            core,
                            cnt,
                        },
                    );
                }
            }
            TimerKind::RedeliverFwd {
                at,
                addr,
                tail_tid,
                req,
            } => {
                self.counters.incr("lcu_fwd_redeliveries");
                self.lcu_fwd_request(m, at, addr, tail_tid, req);
            }
        }
    }

    fn on_thread_scheduled(&mut self, m: &mut Mach, t: ThreadId, core: CoreId) {
        self.ensure_init(m);
        let Some(req) = self.reqs.get(&t).copied() else {
            return;
        };
        let core = core.0 as usize;
        if req.core == core && !req.needs_reissue {
            // Back on the same core: a parked grant may be waiting.
            if self.lcus[core].get(req.addr, t).map(|e| e.status) == Some(Status::Rcv) {
                self.try_take(m, core, req.addr, t);
            }
            return;
        }
        // Migrated (or told to re-issue): issue a fresh request from the
        // new core; stale entries elsewhere pass grants through on timeout.
        self.counters.incr("lcu_reissues");
        self.try_start_request(m, t);
    }

    fn on_fault(&mut self, m: &mut Mach, fault: BackendFault) -> bool {
        self.ensure_init(m);
        match fault {
            BackendFault::FltEvict { core } => {
                // Capacity pressure: force the lowest-address parked release
                // out, exactly as a conflicting allocation would (§IV-C).
                let Some(&lock) = self.flts.get(core).and_then(|f| f.keys().next()) else {
                    return false;
                };
                self.counters.incr("flt_fault_evictions");
                self.flt_unpark_release(m, core, lock);
                true
            }
        }
    }

    fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, lcu) in self.lcus.iter().enumerate() {
            for e in lcu.iter() {
                writeln!(
                    out,
                    "LCU{i}: addr={} tid={:?} mode={:?} status={:?} head={} next={:?} cnt={}",
                    e.addr, e.tid, e.mode, e.status, e.head, e.next, e.cnt
                )
                .ok();
            }
        }
        for (t, r) in &self.reqs {
            writeln!(
                out,
                "req {t:?}: addr={} mode={:?} core={} reissue={}",
                r.addr, r.mode, r.core, r.needs_reissue
            )
            .ok();
        }
        for (i, flt) in self.flts.iter().enumerate() {
            for (a, (t, cnt)) in flt {
                writeln!(out, "FLT{i}: {a} parked by {t:?} cnt={cnt}").ok();
            }
        }
        for ((t, a), h) in &self.held {
            writeln!(
                out,
                "held {t:?} {a}: mode={:?} overflow={} cnt={}",
                h.mode, h.overflow, h.cnt
            )
            .ok();
        }
        for (i, lrt) in self.lrts.iter().enumerate() {
            for set in lrt.debug_sets() {
                for e in set {
                    writeln!(
                        out,
                        "LRT{i}: addr={} head={:?} tail={:?} rdr={} ww={} pw={:?} cnt={}",
                        e.addr,
                        e.head,
                        e.tail,
                        e.reader_cnt,
                        e.waiting_writers,
                        e.pending_writer,
                        e.cnt
                    )
                    .ok();
                }
            }
        }
        let mut c = self.counters.clone();
        for l in &self.lrts {
            c.add("lrt_evictions", l.evictions);
        }
        for (k, v) in c.iter() {
            writeln!(out, "ctr {k} = {v}").ok();
        }
        out
    }

    fn counters(&self) -> Counters {
        let mut c = self.counters.clone();
        let mut ev = 0;
        let mut oh = 0;
        for l in &self.lrts {
            ev += l.evictions;
            oh += l.overflow_hits;
        }
        c.add("lrt_evictions", ev);
        c.add("lrt_overflow_hits", oh);
        c
    }
}
