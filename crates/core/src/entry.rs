//! The per-core Lock Control Unit table.

use locksim_machine::{Addr, Mode, ThreadId};

use crate::msg::Node;

/// Status of an LCU entry (paper Figure 3's status values, plus the
/// releasing states described in §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Request sent to the LRT, no reply yet.
    Issued,
    /// Enqueued; waiting for the lock grant.
    Wait,
    /// Grant received, not yet taken by the local thread.
    Rcv,
    /// Lock taken by the local thread.
    Acq,
    /// Intermediate reader released; waiting for the head token so the
    /// queue is not broken (§III-B). Locally re-acquirable.
    RdRel,
    /// Released; awaiting the LRT acknowledgement before deallocation.
    Rel,
}

/// Hardware entry class (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// Normal entry; may join queues.
    Ordinary,
    /// Nonblocking entry reserved for local thread requests when the
    /// ordinary entries are exhausted; never enqueued.
    LocalRequest,
    /// Nonblocking entry reserved for serving remote releases.
    RemoteRequest,
}

/// One LCU table entry.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Lock address.
    pub addr: Addr,
    /// Owning thread (entries are addressed by `(addr, tid)`).
    pub tid: ThreadId,
    /// Requested/held mode.
    pub mode: Mode,
    /// Current status.
    pub status: Status,
    /// Queue-head token.
    pub head: bool,
    /// Next node in the lock queue, if any.
    pub next: Option<Node>,
    /// Entry class.
    pub kind: EntryKind,
    /// The local thread abandoned this request (trylock expiry) or migrated
    /// away; any received grant is passed through.
    pub aborted: bool,
    /// A grant arrived but the local thread was unavailable and the
    /// timeout already fired; forward immediately on the next enqueue.
    pub stale_grant: bool,
    /// Transfer count captured from the grant that made this entry head.
    pub cnt: u64,
}

impl Entry {
    fn new(addr: Addr, tid: ThreadId, mode: Mode, kind: EntryKind) -> Self {
        Entry {
            addr,
            tid,
            mode,
            status: Status::Issued,
            head: false,
            next: None,
            kind,
            aborted: false,
            stale_grant: false,
            cnt: 0,
        }
    }

    /// Whether this entry currently participates in a read session (holds
    /// or held a read grant that has not passed on).
    pub fn read_session(&self) -> bool {
        self.mode == Mode::Read && matches!(self.status, Status::Rcv | Status::Acq | Status::RdRel)
    }
}

/// A core's LCU: a fixed-capacity table of [`Entry`]s addressed by
/// `(addr, tid)`, with `n` ordinary entries plus one local-request and one
/// remote-request nonblocking entry (§III-D).
///
/// # Example
///
/// ```
/// use locksim_core::lcu_table::{EntryKind, Lcu};
/// use locksim_machine::{Addr, Mode, ThreadId};
///
/// let mut lcu = Lcu::new(2);
/// lcu.alloc(Addr(8), ThreadId(0), Mode::Write, EntryKind::Ordinary).unwrap();
/// assert_eq!(lcu.get(Addr(8), ThreadId(0)).unwrap().tid, ThreadId(0));
/// ```
#[derive(Debug)]
pub struct Lcu {
    ordinary_cap: usize,
    entries: Vec<Entry>,
    local_req_busy: bool,
    remote_req_busy: bool,
}

impl Lcu {
    /// Creates an LCU with `ordinary_cap` ordinary entries.
    pub fn new(ordinary_cap: usize) -> Self {
        Lcu {
            ordinary_cap,
            entries: Vec::new(),
            local_req_busy: false,
            remote_req_busy: false,
        }
    }

    fn ordinary_used(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.kind == EntryKind::Ordinary)
            .count()
    }

    /// Number of live entries of any kind.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Allocates an entry of the requested kind. Returns `None` when that
    /// kind's capacity is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if an entry for `(addr, tid)` already exists.
    pub fn alloc(
        &mut self,
        addr: Addr,
        tid: ThreadId,
        mode: Mode,
        kind: EntryKind,
    ) -> Option<&mut Entry> {
        assert!(
            self.get(addr, tid).is_none(),
            "duplicate LCU entry for ({addr}, {tid:?})"
        );
        match kind {
            EntryKind::Ordinary => {
                if self.ordinary_used() >= self.ordinary_cap {
                    return None;
                }
            }
            EntryKind::LocalRequest => {
                if self.local_req_busy {
                    return None;
                }
                self.local_req_busy = true;
            }
            EntryKind::RemoteRequest => {
                if self.remote_req_busy {
                    return None;
                }
                self.remote_req_busy = true;
            }
        }
        self.entries.push(Entry::new(addr, tid, mode, kind));
        self.entries.last_mut()
    }

    /// Allocates preferring an ordinary entry, falling back to the
    /// local-request nonblocking entry. The returned entry's
    /// [`EntryKind`] tells the caller which it got.
    pub fn alloc_for_local(&mut self, addr: Addr, tid: ThreadId, mode: Mode) -> Option<&mut Entry> {
        if self.ordinary_used() < self.ordinary_cap {
            self.alloc(addr, tid, mode, EntryKind::Ordinary)
        } else {
            self.alloc(addr, tid, mode, EntryKind::LocalRequest)
        }
    }

    /// Looks up the entry for `(addr, tid)`.
    pub fn get(&self, addr: Addr, tid: ThreadId) -> Option<&Entry> {
        self.entries.iter().find(|e| e.addr == addr && e.tid == tid)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, addr: Addr, tid: ThreadId) -> Option<&mut Entry> {
        self.entries
            .iter_mut()
            .find(|e| e.addr == addr && e.tid == tid)
    }

    /// Any entry for `addr` regardless of thread (used when serving
    /// forwarded requests addressed to the tail thread that may have
    /// multiple entries after migration).
    pub fn any_for_addr(&self, addr: Addr) -> Option<&Entry> {
        self.entries.iter().find(|e| e.addr == addr)
    }

    /// Frees the entry for `(addr, tid)`.
    ///
    /// # Panics
    ///
    /// Panics if no such entry exists.
    pub fn free(&mut self, addr: Addr, tid: ThreadId) -> Entry {
        let pos = self
            .entries
            .iter()
            .position(|e| e.addr == addr && e.tid == tid)
            .unwrap_or_else(|| panic!("freeing unknown LCU entry ({addr}, {tid:?})"));
        let e = self.entries.swap_remove(pos);
        match e.kind {
            EntryKind::Ordinary => {}
            EntryKind::LocalRequest => self.local_req_busy = false,
            EntryKind::RemoteRequest => self.remote_req_busy = false,
        }
        e
    }

    /// Iterates all live entries.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Addr = Addr(0x100);
    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    #[test]
    fn alloc_and_get() {
        let mut l = Lcu::new(2);
        l.alloc(A, T0, Mode::Write, EntryKind::Ordinary).unwrap();
        assert!(l.get(A, T0).is_some());
        assert!(l.get(A, T1).is_none());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn ordinary_capacity_enforced() {
        let mut l = Lcu::new(1);
        assert!(l.alloc(A, T0, Mode::Write, EntryKind::Ordinary).is_some());
        assert!(l
            .alloc(Addr(0x200), T1, Mode::Write, EntryKind::Ordinary)
            .is_none());
    }

    #[test]
    fn local_fallback_when_ordinary_full() {
        let mut l = Lcu::new(1);
        l.alloc_for_local(A, T0, Mode::Write).unwrap();
        let e = l.alloc_for_local(Addr(0x200), T1, Mode::Read).unwrap();
        assert_eq!(e.kind, EntryKind::LocalRequest);
        // Both nonblocking and ordinary exhausted now.
        assert!(l
            .alloc_for_local(Addr(0x300), ThreadId(2), Mode::Read)
            .is_none());
    }

    #[test]
    fn free_releases_capacity() {
        let mut l = Lcu::new(1);
        l.alloc(A, T0, Mode::Write, EntryKind::Ordinary).unwrap();
        l.free(A, T0);
        assert!(l.alloc(A, T1, Mode::Write, EntryKind::Ordinary).is_some());
    }

    #[test]
    fn remote_request_entry_is_singular() {
        let mut l = Lcu::new(1);
        assert!(l
            .alloc(A, T0, Mode::Write, EntryKind::RemoteRequest)
            .is_some());
        assert!(l
            .alloc(Addr(0x200), T1, Mode::Write, EntryKind::RemoteRequest)
            .is_none());
        l.free(A, T0);
        assert!(l
            .alloc(Addr(0x200), T1, Mode::Write, EntryKind::RemoteRequest)
            .is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_entry_panics() {
        let mut l = Lcu::new(2);
        l.alloc(A, T0, Mode::Write, EntryKind::Ordinary);
        l.alloc(A, T0, Mode::Read, EntryKind::Ordinary);
    }

    #[test]
    fn read_session_detection() {
        let mut l = Lcu::new(2);
        l.alloc(A, T0, Mode::Read, EntryKind::Ordinary).unwrap();
        assert!(
            !l.get(A, T0).unwrap().read_session(),
            "Issued is not a session"
        );
        l.get_mut(A, T0).unwrap().status = Status::Acq;
        assert!(l.get(A, T0).unwrap().read_session());
        l.get_mut(A, T0).unwrap().status = Status::RdRel;
        assert!(l.get(A, T0).unwrap().read_session());
    }
}
