//! The **Lock Control Unit (LCU)** — a faithful model of the hardware
//! reader-writer locking mechanism from *Architectural Support for Fair
//! Reader-Writer Locking* (Vallejo et al., MICRO 2010).
//!
//! # Architecture
//!
//! Two hardware blocks cooperate (paper Figure 3):
//!
//! * a per-core **LCU** ([`lcu_table::Lcu`]) — a small table whose entries,
//!   addressed by `(lock address, threadid)`, act as the nodes of a
//!   distributed lock queue. Threads spin locally on their LCU entry;
//!   transfers go **directly LCU→LCU**, keeping the lock handoff off the
//!   home node.
//! * a per-memory-controller **LRT** ([`lrt_table::Lrt`]) — allocated on
//!   demand per locked address, holding the queue head/tail tuples, the
//!   overflow reader count, and the anti-starvation reservation.
//!
//! [`LcuBackend`] drives the full protocol over the simulated network:
//!
//! * write and read locking with queue build-up (§III-A/B), including the
//!   head-token mechanism that lets concurrent readers release in any order
//!   without breaking the queue (`RD_REL` status, token bypass);
//! * uncontended-entry deallocation and on-demand re-allocation;
//! * the release race (`RETRY`) resolution;
//! * thread suspension/migration via grant timeouts, pass-through, remote
//!   release forwarding, and request re-issue (§III-C);
//! * trylock abort with lazy entry cleanup;
//! * resource overflow: nonblocking local-request/remote-request entries,
//!   LRT overflow-mode readers with the reservation mechanism (§III-D), and
//!   the memory-backed LRT hash table (§III-E).
//!
//! One deliberate deviation, documented in `DESIGN.md`: the read→write
//! queue transition routes through the LRT (a "writer handoff"), which
//! gates the writer's grant on the overflow-reader count draining. The
//! paper leaves this interaction unspecified; the handoff preserves both
//! the direct-transfer fast path for all other cases and reader-writer
//! exclusion with overflow readers present.
//!
//! Every grant and release passes through a runtime [`Checker`] that
//! asserts reader-writer exclusion, so protocol bugs fail loudly.
//!
//! # Example
//!
//! ```
//! use locksim_core::LcuBackend;
//! use locksim_machine::{testing::ScriptProgram, Action, MachineConfig, Mode, World};
//!
//! let mut w = World::new(MachineConfig::model_a(4), Box::new(LcuBackend::new()), 1);
//! let lock = w.mach().alloc().alloc_line();
//! for _ in 0..4 {
//!     w.spawn(Box::new(ScriptProgram::new(vec![
//!         Action::Acquire { lock, mode: Mode::Write, try_for: None },
//!         Action::Compute(100),
//!         Action::Release { lock, mode: Mode::Write },
//!     ])));
//! }
//! w.run_to_completion();
//! ```

mod backend;
pub mod entry;
pub mod lrt;
mod msg;

pub use backend::LcuBackend;
pub use locksim_machine::Checker;
pub use msg::{Msg, Node};

/// Public alias of the LCU table module (named for discoverability).
pub use entry as lcu_table;
/// Public alias of the LRT table module.
pub use lrt as lrt_table;
