//! The Lock Reservation Table: per-memory-controller lock queue management.

use std::collections::HashMap;

use locksim_engine::Time;
use locksim_machine::{Addr, ThreadId};

use crate::msg::Node;

/// One LRT line (paper Figure 3): queue head/tail pointers, the overflow
/// reader count, and the reservation tuple.
#[derive(Debug, Clone)]
pub struct LrtEntry {
    /// Lock address.
    pub addr: Addr,
    /// Queue head (`None` while the lock is free but the entry is kept
    /// alive by a reservation or draining overflow readers).
    pub head: Option<Node>,
    /// Queue tail.
    pub tail: Option<Node>,
    /// Readers granted in overflow mode (not in the queue).
    pub reader_cnt: u64,
    /// Writers enqueued but not yet at the head; gates overflow-read grants.
    pub waiting_writers: u64,
    /// Anti-starvation reservation for a nonblocking requestor: thread,
    /// LCU, and expiry time (§III-D).
    pub reservation: Option<(ThreadId, usize, Time)>,
    /// A writer handoff waiting for `reader_cnt` to drain:
    /// `(writer, transfer_cnt)`.
    pub pending_writer: Option<(Node, u64)>,
    /// Latest head-transfer count observed (stale notifications ignored).
    pub cnt: u64,
}

impl LrtEntry {
    fn new(addr: Addr) -> Self {
        LrtEntry {
            addr,
            head: None,
            tail: None,
            reader_cnt: 0,
            waiting_writers: 0,
            reservation: None,
            pending_writer: None,
            cnt: 0,
        }
    }

    /// An entry is dead (removable) when nothing references the lock.
    pub fn is_dead(&self, now: Time) -> bool {
        self.head.is_none()
            && self.tail.is_none()
            && self.reader_cnt == 0
            && self.pending_writer.is_none()
            && self.reservation.is_none_or(|(_, _, expiry)| expiry <= now)
    }
}

/// Where a lookup found (or placed) an entry — drives latency accounting:
/// overflow hits pay the in-memory hash-table access cost (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// Found in the SRAM table.
    Table,
    /// Found in (or spilled to) the memory-backed overflow table.
    Overflow,
}

/// A set-associative LRT backed by a per-controller in-memory overflow
/// hash table.
///
/// # Example
///
/// ```
/// use locksim_core::lrt_table::Lrt;
/// use locksim_machine::Addr;
///
/// let mut lrt = Lrt::new(512, 16);
/// let (entry, res) = lrt.entry_mut(Addr(0x40));
/// entry.reader_cnt += 1;
/// assert_eq!(res, locksim_core::lrt_table::Residency::Table);
/// ```
#[derive(Debug)]
pub struct Lrt {
    n_sets: usize,
    assoc: usize,
    sets: Vec<Vec<LrtEntry>>,
    overflow: HashMap<Addr, LrtEntry>,
    /// Eviction count (reported in experiment counters).
    pub evictions: u64,
    /// Overflow-table hits.
    pub overflow_hits: u64,
}

impl Lrt {
    /// Creates an LRT with `entries` total lines, `assoc`-way associative.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0 && entries > 0 && entries.is_multiple_of(assoc));
        let n_sets = entries / assoc;
        Lrt {
            n_sets,
            assoc,
            sets: (0..n_sets).map(|_| Vec::new()).collect(),
            overflow: HashMap::new(),
            evictions: 0,
            overflow_hits: 0,
        }
    }

    fn set_of(&self, addr: Addr) -> usize {
        // Cheap address hash; word-granular lock addresses map across sets.
        (addr.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.n_sets
    }

    /// Looks up `addr`, returning the entry and where it lives. Does not
    /// allocate.
    pub fn get_mut(&mut self, addr: Addr) -> Option<(&mut LrtEntry, Residency)> {
        let set = self.set_of(addr);
        // Split-borrow dance: find index first.
        if let Some(pos) = self.sets[set].iter().position(|e| e.addr == addr) {
            return Some((&mut self.sets[set][pos], Residency::Table));
        }
        if self.overflow.contains_key(&addr) {
            self.overflow_hits += 1;
            return self
                .overflow
                .get_mut(&addr)
                .map(|e| (e, Residency::Overflow));
        }
        None
    }

    /// Looks up or allocates the entry for `addr`. Allocation may evict a
    /// victim line to the overflow table.
    pub fn entry_mut(&mut self, addr: Addr) -> (&mut LrtEntry, Residency) {
        let set = self.set_of(addr);
        if let Some(pos) = self.sets[set].iter().position(|e| e.addr == addr) {
            return (&mut self.sets[set][pos], Residency::Table);
        }
        if self.overflow.contains_key(&addr) {
            self.overflow_hits += 1;
            // Bring the entry back to the table (swapping out a victim if
            // the set is full), as the paper describes.
            let entry = self.overflow.remove(&addr).expect("just checked");
            if self.sets[set].len() >= self.assoc {
                let victim = self.sets[set].swap_remove(0);
                self.evictions += 1;
                self.overflow.insert(victim.addr, victim);
            }
            self.sets[set].push(entry);
            let last = self.sets[set].len() - 1;
            return (&mut self.sets[set][last], Residency::Overflow);
        }
        // Fresh allocation.
        let mut residency = Residency::Table;
        if self.sets[set].len() >= self.assoc {
            let victim = self.sets[set].swap_remove(0);
            self.evictions += 1;
            residency = Residency::Overflow;
            self.overflow.insert(victim.addr, victim);
        }
        self.sets[set].push(LrtEntry::new(addr));
        let last = self.sets[set].len() - 1;
        (&mut self.sets[set][last], residency)
    }

    /// Removes the entry for `addr` if it is dead.
    pub fn remove_if_dead(&mut self, addr: Addr, now: Time) {
        let set = self.set_of(addr);
        if let Some(pos) = self.sets[set].iter().position(|e| e.addr == addr) {
            if self.sets[set][pos].is_dead(now) {
                self.sets[set].swap_remove(pos);
            }
            return;
        }
        if let Some(e) = self.overflow.get(&addr) {
            if e.is_dead(now) {
                self.overflow.remove(&addr);
            }
        }
    }

    /// Number of live entries (table + overflow).
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum::<usize>() + self.overflow.len()
    }

    /// Whether the LRT holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently spilled to memory.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// All sets (diagnostics).
    pub fn debug_sets(&self) -> impl Iterator<Item = &Vec<LrtEntry>> {
        self.sets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locksim_machine::Mode;

    fn node(t: u32) -> Node {
        Node {
            tid: ThreadId(t),
            lcu: t as usize,
            mode: Mode::Write,
            nonblocking: false,
            no_ovf: true,
        }
    }

    #[test]
    fn entry_roundtrip() {
        let mut lrt = Lrt::new(16, 4);
        let a = Addr(0x77);
        {
            let (e, res) = lrt.entry_mut(a);
            assert_eq!(res, Residency::Table);
            e.head = Some(node(1));
            e.tail = Some(node(1));
        }
        let (e, _) = lrt.get_mut(a).unwrap();
        assert_eq!(e.head.unwrap().tid, ThreadId(1));
        assert_eq!(lrt.len(), 1);
    }

    #[test]
    fn dead_entries_are_removed() {
        let mut lrt = Lrt::new(16, 4);
        let a = Addr(0x5);
        lrt.entry_mut(a);
        lrt.remove_if_dead(a, Time::ZERO);
        assert!(lrt.is_empty());
    }

    #[test]
    fn live_entries_survive_removal_attempts() {
        let mut lrt = Lrt::new(16, 4);
        let a = Addr(0x5);
        lrt.entry_mut(a).0.head = Some(node(3));
        lrt.remove_if_dead(a, Time::ZERO);
        assert_eq!(lrt.len(), 1);
    }

    #[test]
    fn reservation_keeps_entry_alive_until_expiry() {
        let mut lrt = Lrt::new(16, 4);
        let a = Addr(0x6);
        lrt.entry_mut(a).0.reservation = Some((ThreadId(9), 0, Time::from_cycles(100)));
        lrt.remove_if_dead(a, Time::from_cycles(50));
        assert_eq!(lrt.len(), 1, "unexpired reservation pins the entry");
        lrt.remove_if_dead(a, Time::from_cycles(100));
        assert!(lrt.is_empty(), "expired reservation lets the entry die");
    }

    #[test]
    fn set_overflow_spills_to_memory() {
        // 4 entries, 1-way: 4 sets of 1. Force collisions by filling with
        // many addresses; spills must land in the overflow table without
        // losing entries.
        let mut lrt = Lrt::new(4, 1);
        for i in 0..32 {
            let (e, _) = lrt.entry_mut(Addr(i));
            e.head = Some(node(i as u32));
        }
        assert_eq!(lrt.len(), 32);
        assert!(lrt.overflow_len() >= 28);
        assert!(lrt.evictions >= 28);
        // Every entry still findable with correct contents.
        for i in 0..32 {
            let (e, _) = lrt.get_mut(Addr(i)).expect("entry lost");
            assert_eq!(e.head.unwrap().tid, ThreadId(i as u32));
        }
    }

    #[test]
    fn overflowed_entry_comes_back_on_access() {
        let mut lrt = Lrt::new(2, 1);
        // Fill enough to guarantee at least one spill.
        for i in 0..8 {
            lrt.entry_mut(Addr(i)).0.head = Some(node(i as u32));
        }
        let spilled: Vec<Addr> = (0..8)
            .map(Addr)
            .filter(|a| {
                let set = lrt.set_of(*a);
                !lrt.sets[set].iter().any(|e| e.addr == *a)
            })
            .collect();
        assert!(!spilled.is_empty());
        let victim = spilled[0];
        let before = lrt.overflow_hits;
        let (_, res) = lrt.entry_mut(victim);
        assert_eq!(res, Residency::Overflow);
        assert_eq!(lrt.overflow_hits, before + 1);
        // Now resident in the table.
        let set = lrt.set_of(victim);
        assert!(lrt.sets[set].iter().any(|e| e.addr == victim));
    }
}
