//! LCU ⇄ LRT ⇄ LCU protocol messages.

use locksim_machine::{Addr, Mode, ThreadId};

/// A queue-node identity: the tuple `(threadid, LCUid, R/W)` the paper
/// stores in LRT head/tail pointers and LCU `next` fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// Requesting thread.
    pub tid: ThreadId,
    /// LCU (core index) the request was issued from.
    pub lcu: usize,
    /// Requested mode.
    pub mode: Mode,
    /// Request came from a nonblocking LCU entry (never enqueued).
    pub nonblocking: bool,
    /// For enqueued writers: no overflow-mode readers existed when the LRT
    /// forwarded this request. Overflow grants stop once a writer waits,
    /// so the count can only drain — when this is set, a read session may
    /// hand the lock to this writer directly instead of via the LRT.
    pub no_ovf: bool,
}

/// Protocol messages. Naming follows the paper where it names them
/// (REQUEST, GRANT, WAIT, RELEASE, RETRY); the rest implement mechanisms
/// the paper describes in prose (head notification, remote release
/// forwarding, writer handoff through the LRT).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Msg {
    // ---- LCU -> LRT ----
    /// Lock request for `addr`.
    Request {
        /// Lock address.
        addr: Addr,
        /// Requesting node.
        req: Node,
    },
    /// Release reaching the LRT: uncontended release, sole-node queue
    /// release, overflow-reader release, or a release from a migrated
    /// thread's current core.
    ReleaseToLrt {
        /// Lock address.
        addr: Addr,
        /// Releasing thread.
        tid: ThreadId,
        /// LCU the release was issued from.
        lcu: usize,
        /// Mode held.
        mode: Mode,
        /// The holder was an overflow-mode reader (not in the queue).
        overflow: bool,
    },
    /// Sent by the LCU entry that just became queue head; lets the LRT
    /// update its head pointer and acknowledge the previous head's entry
    /// deallocation (paper §III-A, Figure 5).
    HeadNotify {
        /// Lock address.
        addr: Addr,
        /// The new head node.
        node: Node,
        /// Monotonic transfer count to ignore stale notifications.
        cnt: u64,
        /// Entry to acknowledge: `(lcu, tid)` of the releaser, if any.
        ack: Option<(usize, ThreadId)>,
    },
    /// A read session's head released with a *writer* next in queue; the
    /// LRT gates the writer's grant on the overflow reader count draining.
    WriterHandoff {
        /// Lock address.
        addr: Addr,
        /// The writer to grant once safe.
        writer: Node,
        /// Transfer count.
        cnt: u64,
        /// Releaser entry to acknowledge.
        releaser: (usize, ThreadId),
    },
    /// An aborted writer passed a head grant through without taking the
    /// lock; the LRT decrements its waiting-writer count.
    AbortNotify {
        /// Lock address.
        addr: Addr,
    },

    // ---- LRT -> LCU ----
    /// Grant from the LRT: a free lock (`head = true`) or an overflow-mode
    /// read grant (`overflow = true`).
    LrtGrant {
        /// Lock address.
        addr: Addr,
        /// Thread granted.
        tid: ThreadId,
        /// Grant carries the queue-head token.
        head: bool,
        /// Overflow-mode reader grant (no queue membership).
        overflow: bool,
        /// The LRT's transfer-count generation: the new head's chain counts
        /// upward from here, so later `HeadNotify`s outrank stale ones.
        cnt: u64,
    },
    /// Request forwarded to the queue tail's LCU for enqueueing.
    FwdRequest {
        /// Lock address.
        addr: Addr,
        /// Tail thread whose entry should enqueue the requestor.
        tail_tid: ThreadId,
        /// The requestor to enqueue.
        req: Node,
    },
    /// Retry: race detected or nonblocking request denied.
    Retry {
        /// Lock address.
        addr: Addr,
        /// Thread whose request is denied.
        tid: ThreadId,
    },
    /// The LRT acknowledges a release; the entry can deallocate.
    ReleaseAck {
        /// Lock address.
        addr: Addr,
        /// Thread whose entry is acknowledged.
        tid: ThreadId,
    },

    // ---- LCU -> LCU (or LRT -> LCU for remote release) ----
    /// Direct lock transfer to a waiting entry. `head = true` passes the
    /// queue-head token; reader chains also receive non-head grants.
    DirectGrant {
        /// Lock address.
        addr: Addr,
        /// Receiving thread.
        tid: ThreadId,
        /// Head token included.
        head: bool,
        /// Transfer count (forwarded to the LRT in `HeadNotify`).
        cnt: u64,
        /// Previous head's entry to acknowledge via the LRT.
        ack: Option<(usize, ThreadId)>,
    },
    /// Enqueue confirmation from the tail to the requestor (paper's WAIT).
    Wait {
        /// Lock address.
        addr: Addr,
        /// Requesting thread now enqueued.
        tid: ThreadId,
    },
    /// A release by a migrated thread, forwarded along the queue until the
    /// LCU holding the matching entry is found (paper §III-C).
    FwdRelease {
        /// Lock address.
        addr: Addr,
        /// Thread whose entry must be released.
        tid: ThreadId,
        /// Mode held.
        mode: Mode,
    },
}

impl Msg {
    /// The lock address this message concerns.
    pub fn addr(&self) -> Addr {
        match *self {
            Msg::Request { addr, .. }
            | Msg::ReleaseToLrt { addr, .. }
            | Msg::HeadNotify { addr, .. }
            | Msg::WriterHandoff { addr, .. }
            | Msg::AbortNotify { addr }
            | Msg::LrtGrant { addr, .. }
            | Msg::FwdRequest { addr, .. }
            | Msg::Retry { addr, .. }
            | Msg::ReleaseAck { addr, .. }
            | Msg::DirectGrant { addr, .. }
            | Msg::Wait { addr, .. }
            | Msg::FwdRelease { addr, .. } => addr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction_covers_variants() {
        let a = Addr(0x10);
        let n = Node {
            tid: ThreadId(1),
            lcu: 2,
            mode: Mode::Read,
            nonblocking: false,
            no_ovf: true,
        };
        let msgs = [
            Msg::Request { addr: a, req: n },
            Msg::LrtGrant {
                addr: a,
                tid: ThreadId(1),
                head: true,
                overflow: false,
                cnt: 0,
            },
            Msg::Retry {
                addr: a,
                tid: ThreadId(1),
            },
            Msg::AbortNotify { addr: a },
        ];
        for m in msgs {
            assert_eq!(m.addr(), a);
        }
    }
}
