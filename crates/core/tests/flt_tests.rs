//! Tests of the Free Lock Table extension (paper §IV-C future work):
//! parked releases make same-thread re-acquisition local while staying
//! correct when other requestors appear.

use locksim_core::LcuBackend;
use locksim_machine::testing::ScriptProgram;
use locksim_machine::{Action, MachineConfig, Mode, World};

fn flt_world(flt_entries: usize, chips: usize, seed: u64) -> World {
    let mut cfg = MachineConfig::model_a(chips);
    cfg.flt_entries = flt_entries;
    World::new(cfg, Box::new(LcuBackend::new()), seed)
}

#[test]
fn private_reacquire_is_local_with_flt() {
    // 50 acquire/release pairs of a private lock.
    let run = |flt: usize| {
        let mut w = flt_world(flt, 4, 1);
        let lock = w.mach().alloc().alloc_line();
        let mut script = Vec::new();
        for _ in 0..50 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(40));
            script.push(Action::Release {
                lock,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
        w.run_to_completion();
        (w.mach().now().cycles(), w.report_counters())
    };
    let (t_off, _) = run(0);
    let (t_on, c_on) = run(4);
    assert_eq!(
        c_on.get("flt_hits"),
        49,
        "every re-acquire should hit the FLT"
    );
    assert!(
        (t_on as f64) < (t_off as f64) * 0.35,
        "FLT should slash private-lock cost: {t_on} vs {t_off}"
    );
}

#[test]
fn parked_lock_transfers_when_requested() {
    // t0 parks the lock; t1 then requests it and must get it (the forwarded
    // request unparks the deferred release).
    let mut w = flt_world(4, 4, 2);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
        Action::Compute(200_000), // stay alive; do not re-acquire
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(5_000),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 2);
    assert_eq!(
        c.get("flt_parks"),
        2,
        "both releases were uncontended parks"
    );
    assert_eq!(
        c.get("flt_fwd_unparks"),
        1,
        "t1's request unparked t0's release"
    );
}

#[test]
fn flt_capacity_evicts_oldest() {
    // Parking more locks than entries forces evictions (visible releases).
    let mut w = flt_world(2, 4, 3);
    let locks: Vec<_> = (0..5).map(|_| w.mach().alloc().alloc_line()).collect();
    let mut script = Vec::new();
    for &l in &locks {
        script.push(Action::Acquire {
            lock: l,
            mode: Mode::Write,
            try_for: None,
        });
        script.push(Action::Release {
            lock: l,
            mode: Mode::Write,
        });
    }
    script.push(Action::Compute(100_000));
    w.spawn(Box::new(ScriptProgram::new(script)));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("flt_parks"), 5);
    assert!(c.get("flt_unparks") >= 3, "capacity 2 must evict: {c:?}");
}

#[test]
fn different_local_thread_forces_unpark() {
    // Two threads time-share one core; the second thread's acquire of a
    // lock parked by the first must go through a visible release.
    let mut w = flt_world(4, 1, 4);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Release {
            lock,
            mode: Mode::Write,
        },
        Action::Yield,
        Action::Compute(10),
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(10),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 2);
    assert!(c.get("flt_unparks") >= 1, "{c:?}");
}

#[test]
fn contended_workload_with_flt_stays_correct() {
    // Mixed private/shared: each thread has a private lock plus a shared
    // one; the checker and grant accounting validate the combination.
    let mut w = flt_world(4, 8, 5);
    let shared = w.mach().alloc().alloc_line();
    let privates: Vec<_> = (0..8).map(|_| w.mach().alloc().alloc_line()).collect();
    for &private in privates.iter().take(8) {
        let mut script = Vec::new();
        for _ in 0..10 {
            script.push(Action::Acquire {
                lock: private,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(50));
            script.push(Action::Release {
                lock: private,
                mode: Mode::Write,
            });
            script.push(Action::Acquire {
                lock: shared,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(50));
            script.push(Action::Release {
                lock: shared,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 8 * 10 * 2);
    assert!(c.get("flt_hits") > 0);
}

#[test]
fn radiosity_pattern_recovers_with_flt() {
    // The paper's Radiosity observation: coherence locks win on private
    // work queues via implicit biasing; the FLT restores that for the LCU.
    use locksim_harness::{run_app, AppSel, BackendKind};
    use locksim_swlocks::SwAlg;

    let posix = run_app(AppSel::Radiosity, BackendKind::Sw(SwAlg::Posix), 6) as f64;
    let lcu = run_app(AppSel::Radiosity, BackendKind::Lcu, 6) as f64;
    let lcu_flt = run_app(AppSel::Radiosity, BackendKind::LcuFlt, 6) as f64;
    assert!(lcu > posix * 0.98, "plain LCU should not beat posix here");
    assert!(
        lcu_flt < lcu * 0.9,
        "FLT should recover most of the biasing: flt={lcu_flt} lcu={lcu} posix={posix}"
    );
}
