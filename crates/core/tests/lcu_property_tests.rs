//! Property-based and adversarial tests of the LCU protocol: random
//! workloads over random configurations must complete with exact grant
//! accounting (the backend's checker enforces exclusion throughout).

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use locksim_core::LcuBackend;
use locksim_engine::Time;
use locksim_machine::testing::FnProgram;
use locksim_machine::{Action, Addr, Ctx, MachineConfig, Mode, Outcome, ThreadId, World};

/// A generic lock-loop driven by a per-thread op script.
#[derive(Debug, Clone)]
struct OpScript {
    /// (lock index, is_write, cs_cycles, think_cycles)
    ops: Vec<(usize, bool, u16, u16)>,
}

fn spawn_script(w: &mut World, locks: &[Addr], script: OpScript, done: Rc<RefCell<u64>>) {
    let locks = locks.to_vec();
    let mut i = 0;
    let mut stage = 0u8;
    w.spawn(Box::new(FnProgram(
        #[allow(clippy::never_loop)]
        move |_: &mut Ctx<'_>, _: Outcome| loop {
            if i == script.ops.len() {
                return Action::Done;
            }
            let (l, wr, cs, think) = script.ops[i];
            let mode = if wr { Mode::Write } else { Mode::Read };
            match stage {
                0 => {
                    stage = 1;
                    return Action::Acquire {
                        lock: locks[l % locks.len()],
                        mode,
                        try_for: None,
                    };
                }
                1 => {
                    stage = 2;
                    return Action::Compute(u64::from(cs) + 1);
                }
                2 => {
                    stage = 3;
                    return Action::Release {
                        lock: locks[l % locks.len()],
                        mode,
                    };
                }
                _ => {
                    *done.borrow_mut() += 1;
                    stage = 0;
                    i += 1;
                    return Action::Compute(u64::from(think) + 1);
                }
            }
        },
    )));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random single-lock-at-a-time workloads over random machine shapes
    /// complete with every acquire granted exactly once.
    #[test]
    fn random_workloads_complete_exactly(
        chips in 2usize..12,
        n_locks in 1usize..4,
        lcu_entries in 2usize..10,
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (0usize..4, any::<bool>(), 0u16..200, 0u16..200), 1..12),
            1..10),
    ) {
        let mut cfg = MachineConfig::model_a(chips);
        cfg.lcu_entries = lcu_entries;
        let mut w = World::new(cfg, Box::new(LcuBackend::new()), 1234);
        let locks: Vec<Addr> = (0..n_locks).map(|_| w.mach().alloc().alloc_line()).collect();
        let done = Rc::new(RefCell::new(0u64));
        let mut expected = 0;
        for ops in scripts {
            expected += ops.len() as u64;
            spawn_script(&mut w, &locks, OpScript { ops }, done.clone());
        }
        w.run_to_completion();
        prop_assert_eq!(*done.borrow(), expected);
        prop_assert_eq!(w.report_counters().get("locks_granted"), expected);
    }

    /// The ablated configurations (no direct transfer, no fast re-acquire,
    /// no reservation) remain correct — only timing may change.
    #[test]
    fn ablated_configs_remain_correct(
        direct in any::<bool>(),
        fast in any::<bool>(),
        reservation in any::<bool>(),
        write_pct in 0u8..=100,
    ) {
        let mut cfg = MachineConfig::model_a(8);
        cfg.lcu_direct_transfer = direct;
        cfg.lcu_fast_reacquire = fast;
        cfg.lcu_reservation = reservation;
        cfg.lcu_entries = 3;
        let mut w = World::new(cfg, Box::new(LcuBackend::new()), 99);
        let lock = w.mach().alloc().alloc_line();
        let done = Rc::new(RefCell::new(0u64));
        for t in 0..8u16 {
            let ops = (0..6)
                .map(|i| (0usize, (u16::from(write_pct) * 101 + t * 7 + i) % 100 < u16::from(write_pct), 50u16, 50u16))
                .collect();
            spawn_script(&mut w, &[lock], OpScript { ops }, done.clone());
        }
        w.run_to_completion();
        prop_assert_eq!(*done.borrow(), 48);
    }
}

/// A trylock abort mid-queue must not lose the grant: the grant passes
/// through the abandoned entry to the next waiter.
#[test]
fn trylock_abort_mid_queue_passes_grant_through() {
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), 5);
    let lock = w.mach().alloc().alloc_line();
    let order = Rc::new(RefCell::new(Vec::new()));
    // t0 holds for 40k.
    {
        let order = order.clone();
        let mut stage = 0;
        w.spawn(Box::new(FnProgram(move |_: &mut Ctx<'_>, _: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: None,
                },
                2 => Action::Compute(40_000),
                3 => {
                    order.borrow_mut().push(("t0-release", 0));
                    Action::Release {
                        lock,
                        mode: Mode::Write,
                    }
                }
                _ => Action::Done,
            }
        })));
    }
    // t1 trylocks with a short budget (will abort while first in queue).
    {
        let order = order.clone();
        let mut stage = 0;
        w.spawn(Box::new(FnProgram(move |ctx: &mut Ctx<'_>, o: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(1_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: Some(5_000),
                },
                _ => {
                    order
                        .borrow_mut()
                        .push(("t1-outcome", ctx.now.cycles() as i64 as i32));
                    assert_eq!(o, Outcome::Failed);
                    Action::Done
                }
            }
        })));
    }
    // t2 queues behind t1 with a blocking acquire and must receive the
    // grant that t1's abandoned entry passes through.
    {
        let order = order.clone();
        let mut stage = 0;
        w.spawn(Box::new(FnProgram(move |_: &mut Ctx<'_>, _: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(2_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: None,
                },
                3 => {
                    order.borrow_mut().push(("t2-granted", 0));
                    Action::Release {
                        lock,
                        mode: Mode::Write,
                    }
                }
                _ => Action::Done,
            }
        })));
    }
    w.run_to_completion();
    let names: Vec<&str> = order.borrow().iter().map(|&(n, _)| n).collect();
    assert_eq!(names, vec!["t1-outcome", "t0-release", "t2-granted"]);
    let c = w.report_counters();
    assert_eq!(c.get("locks_failed"), 1);
    assert_eq!(c.get("locks_granted"), 2);
    assert!(c.get("lcu_pass_throughs") >= 1, "{c:?}");
}

/// The reservation mechanism gives a nonblocking (overflowed) requestor the
/// lock even while ordinary requestors keep hammering it.
#[test]
fn reservation_prevents_nonblocking_starvation() {
    // One-entry LCUs: the second lock a thread touches must go nonblocking.
    let mut cfg = MachineConfig::model_a(8);
    cfg.lcu_entries = 1;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 6);
    let busy = w.mach().alloc().alloc_line();
    let target = w.mach().alloc().alloc_line();
    // Thread 0 holds `busy` *contended* (a partner queues behind it, which
    // re-allocates and pins the single ordinary entry), then acquires
    // `target` — which must use the nonblocking local-request entry.
    w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
        vec![
            Action::Compute(10_000),
            Action::Acquire {
                lock: busy,
                mode: Mode::Write,
                try_for: None,
            },
            // The partner enqueues on `busy` during this window.
            Action::Compute(6_000),
            Action::Acquire {
                lock: target,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Compute(100),
            Action::Release {
                lock: target,
                mode: Mode::Write,
            },
            Action::Release {
                lock: busy,
                mode: Mode::Write,
            },
        ],
    )));
    // The partner that keeps t0's busy-entry alive in the queue.
    w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
        vec![
            Action::Compute(12_000),
            Action::Acquire {
                lock: busy,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Release {
                lock: busy,
                mode: Mode::Write,
            },
        ],
    )));
    // Three rivals churn `target` with ordinary blocking acquires.
    for _ in 0..3 {
        let mut script = Vec::new();
        for _ in 0..30 {
            script.push(Action::Acquire {
                lock: target,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(300));
            script.push(Action::Release {
                lock: target,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 2 + 1 + 90);
    // The starving nonblocking requestor went through denial + reservation.
    assert!(c.get("lrt_retries") > 0, "{c:?}");
}

/// Suspension (forced preemption) while waiting: the LCU's grant timeout
/// forwards the grant past the sleeping thread, which still gets the lock
/// after rescheduling.
#[test]
fn preempted_waiter_is_skipped_then_served() {
    let mut cfg = MachineConfig::model_a(2);
    cfg.quantum = 30_000;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 7);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    // Three threads on two cores: someone is always preempted.
    for _ in 0..3 {
        let mut script = Vec::new();
        for _ in 0..8 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Rmw(counter, locksim_machine::RmwOp::FetchAdd(1)));
            script.push(Action::Compute(8_000));
            script.push(Action::Release {
                lock,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 24);
}

/// Concurrent readers across the whole machine plus one writer per lock:
/// heavy read-session churn with head-token bypasses stays sound.
#[test]
fn read_session_churn_with_token_bypass() {
    let mut w = World::new(MachineConfig::model_a(16), Box::new(LcuBackend::new()), 8);
    let lock = w.mach().alloc().alloc_line();
    for t in 0..16u64 {
        let mut script = vec![Action::Compute(1 + t * 37)];
        for _ in 0..12 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            });
            script.push(Action::Compute(400));
            script.push(Action::Release {
                lock,
                mode: Mode::Read,
            });
            script.push(Action::Compute(100));
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    // One writer interleaving throughout.
    let mut script = vec![Action::Compute(500)];
    for _ in 0..12 {
        script.push(Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        });
        script.push(Action::Compute(200));
        script.push(Action::Release {
            lock,
            mode: Mode::Write,
        });
        script.push(Action::Compute(2_000));
    }
    w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
        script,
    )));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 16 * 12 + 12);
    assert!(
        c.get("lcu_read_shares") + c.get("lcu_read_propagations") > 0,
        "{c:?}"
    );
}

/// Migration storm: threads hop cores mid-acquire repeatedly; grants are
/// forwarded/timeout-passed and every acquire still completes.
#[test]
fn migration_storm_completes() {
    let mut w = World::new(MachineConfig::model_a(16), Box::new(LcuBackend::new()), 9);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..4 {
        let mut script = Vec::new();
        for _ in 0..6 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(4_000));
            script.push(Action::Release {
                lock,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    // Periodically migrate whichever thread sits on core 1 to a free core.
    let mut next_free = 8;
    for step in 1..12 {
        let exit = w.run_for(Some(Time::from_cycles(step * 5_000)));
        if exit != locksim_machine::RunExit::TimeLimit {
            break;
        }
        for t in 0..4u32 {
            if w.mach().core_of(ThreadId(t)).map(|c| c.0) == Some(1) && next_free < 16 {
                w.migrate(ThreadId(t), next_free);
                next_free += 1;
            }
        }
    }
    w.run_to_completion();
    assert_eq!(w.report_counters().get("locks_granted"), 24);
}

/// Regression: a read session ending through an RD_REL token bypass must
/// not hand the head token directly to a writer while overflow-mode
/// readers still hold the lock (found by the full-scale STM run).
#[test]
fn token_bypass_respects_overflow_readers() {
    // Tiny LCUs force overflow-mode read grants.
    let mut cfg = MachineConfig::model_a(16);
    cfg.lcu_entries = 1;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 31);
    let pin = w.mach().alloc().alloc_line();
    let target = w.mach().alloc().alloc_line();
    // Eight "pinned" readers: each holds `pin` (occupying its ordinary
    // entry) and then read-acquires `target` nonblockingly — some land in
    // overflow mode — holding both for a long window.
    for _ in 0..8 {
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            vec![
                Action::Acquire {
                    lock: pin,
                    mode: Mode::Read,
                    try_for: None,
                },
                Action::Acquire {
                    lock: target,
                    mode: Mode::Read,
                    try_for: None,
                },
                Action::Compute(30_000),
                Action::Release {
                    lock: target,
                    mode: Mode::Read,
                },
                Action::Release {
                    lock: pin,
                    mode: Mode::Read,
                },
            ],
        )));
    }
    // Churning queue readers that release quickly (building RD_REL chains).
    for _ in 0..4 {
        let mut script = vec![Action::Compute(2_000)];
        for _ in 0..10 {
            script.push(Action::Acquire {
                lock: target,
                mode: Mode::Read,
                try_for: None,
            });
            script.push(Action::Compute(100));
            script.push(Action::Release {
                lock: target,
                mode: Mode::Read,
            });
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    // Writers that enqueue behind the readers; the checker panics if any
    // writer is granted while overflow readers hold.
    for _ in 0..3 {
        let mut script = vec![Action::Compute(4_000)];
        for _ in 0..5 {
            script.push(Action::Acquire {
                lock: target,
                mode: Mode::Write,
                try_for: None,
            });
            script.push(Action::Compute(200));
            script.push(Action::Release {
                lock: target,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(locksim_machine::testing::ScriptProgram::new(
            script,
        )));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 16 + 40 + 15);
    assert!(
        c.get("lrt_overflow_grants") > 0,
        "scenario must exercise overflow: {c:?}"
    );
}
