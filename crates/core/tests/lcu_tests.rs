//! End-to-end LCU/LRT protocol tests on the full simulated machine.
//!
//! The backend's built-in exclusion checker panics on any reader-writer
//! violation, so every test here doubles as an invariant check.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_core::LcuBackend;
use locksim_engine::Time;
use locksim_machine::testing::ScriptProgram;
use locksim_machine::{Action, Addr, Ctx, MachineConfig, Mode, Outcome, Program, ThreadId, World};

/// A critical-section loop: `iters` × { acquire → read counter → compute →
/// (writers: bump counter) → release → think }.
struct CsLoop {
    lock: Addr,
    counter: Addr,
    iters: u32,
    write_pct: u32,
    cs_cycles: u64,
    think_cycles: u64,
    // FSM state
    i: u32,
    stage: u8,
    val: u64,
    is_writer: bool,
}

impl CsLoop {
    fn new(lock: Addr, counter: Addr, iters: u32, write_pct: u32) -> Self {
        CsLoop {
            lock,
            counter,
            iters,
            write_pct,
            cs_cycles: 50,
            think_cycles: 100,
            i: 0,
            stage: 0,
            val: 0,
            is_writer: false,
        }
    }
}

impl Program for CsLoop {
    fn resume(&mut self, ctx: &mut Ctx<'_>, outcome: Outcome) -> Action {
        loop {
            match self.stage {
                0 => {
                    if self.i == self.iters {
                        return Action::Done;
                    }
                    self.is_writer = ctx.rng.below(100) < self.write_pct as u64;
                    self.stage = 1;
                    let mode = if self.is_writer {
                        Mode::Write
                    } else {
                        Mode::Read
                    };
                    return Action::Acquire {
                        lock: self.lock,
                        mode,
                        try_for: None,
                    };
                }
                1 => {
                    assert_eq!(outcome, Outcome::Granted);
                    self.stage = 2;
                    return Action::Read(self.counter);
                }
                2 => {
                    let Outcome::Value(v) = outcome else {
                        panic!("expected value")
                    };
                    self.val = v;
                    self.stage = 3;
                    return Action::Compute(self.cs_cycles);
                }
                3 => {
                    if self.is_writer {
                        self.stage = 4;
                        return Action::Write(self.counter, self.val + 1);
                    }
                    self.stage = 5;
                    continue;
                }
                4 => {
                    self.stage = 5;
                    continue;
                }
                5 => {
                    self.stage = 6;
                    let mode = if self.is_writer {
                        Mode::Write
                    } else {
                        Mode::Read
                    };
                    return Action::Release {
                        lock: self.lock,
                        mode,
                    };
                }
                6 => {
                    self.i += 1;
                    self.stage = 0;
                    return Action::Compute(self.think_cycles);
                }
                _ => unreachable!(),
            }
        }
    }

    fn label(&self) -> &'static str {
        "cs-loop"
    }
}

fn lcu_world(cfg: MachineConfig, seed: u64) -> World {
    World::new(cfg, Box::new(LcuBackend::new()), seed)
}

#[test]
fn single_uncontended_acquire_release() {
    let mut w = lcu_world(MachineConfig::model_a(4), 1);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 1);
    assert_eq!(c.get("lrt_free_grants"), 1);
    assert_eq!(c.get("lcu_uncontended_takes"), 1);
}

#[test]
fn write_mutual_exclusion_counter() {
    let mut w = lcu_world(MachineConfig::model_a(8), 2);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    const N: u32 = 25;
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, N, 100)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 8 * N as u64);
}

#[test]
fn contended_writers_use_direct_transfers() {
    let mut w = lcu_world(MachineConfig::model_a(8), 3);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 20, 100)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("lcu_direct_transfers") > 50,
        "expected many direct LCU->LCU transfers, got {}",
        c.get("lcu_direct_transfers")
    );
}

#[test]
fn writers_granted_fifo_when_staggered() {
    // Spawn writers that stagger their first acquire by increasing delays;
    // grants must come back in request order (queue fairness).
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut w = lcu_world(MachineConfig::model_a(8), 4);
    let lock = w.mach().alloc().alloc_line();
    for i in 0..6u32 {
        let order = order.clone();
        let mut stage = 0;
        w.spawn(Box::new(locksim_machine::testing::FnProgram(
            move |ctx: &mut Ctx<'_>, _: Outcome| {
                stage += 1;
                match stage {
                    // Stagger well beyond message latencies so arrival
                    // order at the LRT is deterministic.
                    1 => Action::Compute(1 + i as u64 * 3_000),
                    2 => Action::Acquire {
                        lock,
                        mode: Mode::Write,
                        try_for: None,
                    },
                    3 => {
                        order.borrow_mut().push(ctx.tid.0);
                        // Hold long enough that everyone queues up.
                        Action::Compute(30_000)
                    }
                    4 => Action::Release {
                        lock,
                        mode: Mode::Write,
                    },
                    _ => Action::Done,
                }
            },
        )));
    }
    w.run_to_completion();
    assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4, 5], "FIFO violated");
}

#[test]
fn readers_overlap_writers_do_not() {
    let mut w = lcu_world(MachineConfig::model_a(8), 5);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(20_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    let t_readers = w.mach().now().cycles();
    assert!(
        t_readers < 3 * 20_000,
        "6 readers should overlap: took {t_readers}"
    );

    let mut w = lcu_world(MachineConfig::model_a(8), 5);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Compute(20_000),
            Action::Release {
                lock,
                mode: Mode::Write,
            },
        ])));
    }
    w.run_to_completion();
    assert!(w.mach().now().cycles() >= 6 * 20_000);
}

#[test]
fn read_write_mix_is_exclusion_safe_and_complete() {
    // The backend checker panics on violations; completion proves no
    // deadlock / lost wakeups across the mixed protocol paths.
    for seed in 0..5 {
        let mut w = lcu_world(MachineConfig::model_a(16), 100 + seed);
        let lock = w.mach().alloc().alloc_line();
        let counter = w.mach().alloc().alloc_line();
        let mut writes_expected = 0u64;
        let mut progs = Vec::new();
        for t in 0..16 {
            // Deterministic per-thread write ratio spread.
            let pct = [0, 10, 25, 50, 75, 100][t % 6] as u32;
            progs.push(CsLoop::new(lock, counter, 15, pct));
            let _ = &mut writes_expected;
        }
        for p in progs {
            w.spawn(Box::new(p));
        }
        w.run_to_completion();
        // Counter increments = number of write-mode CSs actually executed;
        // verify against the thread stats (writers counted at grant).
        let total_acquires: u64 = (0..16)
            .map(|i| w.mach().thread_stats(ThreadId(i)).acquires)
            .sum();
        assert_eq!(total_acquires, 16 * 15);
    }
}

#[test]
fn writers_behind_readers_make_progress() {
    // Readers keep re-acquiring; a writer must still get in (fairness /
    // no reader starvation of writers).
    let mut w = lcu_world(MachineConfig::model_a(8), 6);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 40, 0))); // pure readers
    }
    w.spawn(Box::new(CsLoop::new(lock, counter, 10, 100))); // one writer
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 10);
}

#[test]
fn trylock_fails_under_hold_and_lock_stays_usable() {
    let mut w = lcu_world(MachineConfig::model_a(4), 7);
    let lock = w.mach().alloc().alloc_line();
    let result = Rc::new(RefCell::new(None));
    let r2 = result.clone();
    // Holder keeps the lock for 80k cycles.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(80_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // Trylock with a 5k budget must fail, then a blocking acquire works.
    let mut stage = 0;
    w.spawn(Box::new(locksim_machine::testing::FnProgram(
        move |_: &mut Ctx<'_>, outcome: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(2_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: Some(5_000),
                },
                3 => {
                    *r2.borrow_mut() = Some(outcome);
                    Action::Acquire {
                        lock,
                        mode: Mode::Write,
                        try_for: None,
                    }
                }
                4 => Action::Release {
                    lock,
                    mode: Mode::Write,
                },
                _ => Action::Done,
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*result.borrow(), Some(Outcome::Failed));
    let c = w.report_counters();
    assert_eq!(c.get("locks_failed"), 1);
    assert_eq!(c.get("locks_granted"), 2);
}

#[test]
fn trylock_succeeds_on_free_lock() {
    let mut w = lcu_world(MachineConfig::model_a(4), 8);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: Some(10_000),
        },
        Action::Compute(10),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    assert_eq!(w.report_counters().get("locks_granted"), 1);
}

#[test]
fn migration_while_waiting_still_acquires() {
    let mut w = lcu_world(MachineConfig::model_a(8), 9);
    let lock = w.mach().alloc().alloc_line();
    // Holder occupies the lock for a while.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(60_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // Waiter requests, then is migrated while spinning.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(1_000),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // Let the waiter enqueue, then migrate it to a distant core.
    w.run_for(Some(Time::from_cycles(20_000)));
    w.migrate(ThreadId(1), 5);
    w.run_to_completion();
    assert_eq!(w.report_counters().get("locks_granted"), 2);
}

#[test]
fn migration_while_holding_releases_remotely() {
    let mut w = lcu_world(MachineConfig::model_a(8), 10);
    let lock = w.mach().alloc().alloc_line();
    // A queue must exist behind the holder for the remote-release
    // forwarding to matter.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(50_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
        Action::Compute(10),
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(5_000),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // Migrate the holder mid-critical-section.
    w.run_for(Some(Time::from_cycles(20_000)));
    w.migrate(ThreadId(0), 6);
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 2);
    assert!(
        c.get("lcu_remote_release_sent") >= 1,
        "expected a remote release, counters: {c:?}"
    );
}

#[test]
fn tiny_lcu_overflow_readers_preserve_exclusion() {
    // 2 ordinary entries per LCU, every thread takes many distinct read
    // locks and holds them, forcing overflow-mode grants. The checker
    // validates exclusion; a final writer on each lock validates draining.
    let mut cfg = MachineConfig::model_a(4);
    cfg.lcu_entries = 2;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 11);
    let locks: Vec<Addr> = (0..6).map(|_| w.mach().alloc().alloc_line()).collect();
    // Each of 3 threads read-acquires all 6 locks, holds, then releases.
    for _ in 0..3 {
        let mut script = Vec::new();
        for &l in &locks {
            script.push(Action::Acquire {
                lock: l,
                mode: Mode::Read,
                try_for: None,
            });
        }
        script.push(Action::Compute(5_000));
        for &l in &locks {
            script.push(Action::Release {
                lock: l,
                mode: Mode::Read,
            });
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
    }
    // A writer takes each lock after the readers.
    let mut script = Vec::new();
    script.push(Action::Compute(1_000));
    for &l in &locks {
        script.push(Action::Acquire {
            lock: l,
            mode: Mode::Write,
            try_for: None,
        });
        script.push(Action::Compute(10));
        script.push(Action::Release {
            lock: l,
            mode: Mode::Write,
        });
    }
    w.spawn(Box::new(ScriptProgram::new(script)));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 3 * 6 + 6);
}

#[test]
fn lrt_eviction_to_memory_table_is_correct() {
    // Shrink the LRT so live locks spill to the memory-backed overflow
    // table; everything must still complete correctly.
    let mut cfg = MachineConfig::model_a(4);
    cfg.lrt_entries = 4;
    cfg.lrt_assoc = 2;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 12);
    let locks: Vec<Addr> = (0..24).map(|_| w.mach().alloc().alloc_line()).collect();
    for t in 0..4u64 {
        let mut script = vec![Action::Compute(t * 97)];
        // Each thread locks six distinct locks (held simultaneously so the
        // LRT entries stay live), then releases.
        let mine: Vec<Addr> = locks[(t as usize * 6)..(t as usize * 6 + 6)].to_vec();
        for &l in &mine {
            script.push(Action::Acquire {
                lock: l,
                mode: Mode::Write,
                try_for: None,
            });
        }
        script.push(Action::Compute(2_000));
        for &l in &mine {
            script.push(Action::Release {
                lock: l,
                mode: Mode::Write,
            });
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 24);
    assert!(c.get("lrt_evictions") > 0, "expected LRT pressure: {c:?}");
}

#[test]
fn oversubscribed_lcu_queueing_completes() {
    // More threads than cores with a contended lock: preemptions interact
    // with grant timeouts; the run must complete with the right counter.
    let mut cfg = MachineConfig::model_a(4);
    cfg.quantum = 20_000;
    let mut w = World::new(cfg, Box::new(LcuBackend::new()), 13);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    const N: u32 = 10;
    for _ in 0..10 {
        w.spawn(Box::new(CsLoop::new(lock, counter, N, 100)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 10 * N as u64);
}

#[test]
fn rd_rel_fast_reacquire_counts() {
    // A single reader re-acquiring its lock while an intermediate RD_REL
    // entry is still present takes the fast local path... requires being a
    // non-head reader. Build: two readers hold; the second releases and
    // re-acquires while the first still holds (so the token has not moved).
    let mut w = lcu_world(MachineConfig::model_a(4), 14);
    let lock = w.mach().alloc().alloc_line();
    // Reader A holds for a long time (keeps the head token).
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Read,
            try_for: None,
        },
        Action::Compute(50_000),
        Action::Release {
            lock,
            mode: Mode::Read,
        },
    ])));
    // Reader B: acquire, release, re-acquire quickly.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(2_000),
        Action::Acquire {
            lock,
            mode: Mode::Read,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Read,
        },
        Action::Compute(100),
        Action::Acquire {
            lock,
            mode: Mode::Read,
            try_for: None,
        },
        Action::Compute(100),
        Action::Release {
            lock,
            mode: Mode::Read,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("lcu_fast_reacquires") >= 1,
        "expected a fast RD_REL re-acquire, counters: {c:?}"
    );
}

#[test]
fn determinism_same_seed_same_trace() {
    let run = |seed: u64| {
        let mut w = lcu_world(MachineConfig::model_b(), seed);
        let lock = w.mach().alloc().alloc_line();
        let counter = w.mach().alloc().alloc_line();
        for _ in 0..12 {
            w.spawn(Box::new(CsLoop::new(lock, counter, 10, 50)));
        }
        w.run_to_completion();
        (w.mach().now().cycles(), w.mach().mem_peek(counter))
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn model_b_cross_chip_contention_works() {
    let mut w = lcu_world(MachineConfig::model_b(), 15);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    const N: u32 = 8;
    for _ in 0..32 {
        w.spawn(Box::new(CsLoop::new(lock, counter, N, 100)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 32 * N as u64);
}

#[test]
fn many_distinct_locks_no_interference() {
    let mut w = lcu_world(MachineConfig::model_a(8), 16);
    let locks: Vec<Addr> = (0..8).map(|_| w.mach().alloc().alloc_line()).collect();
    let counters: Vec<Addr> = (0..8).map(|_| w.mach().alloc().alloc_line()).collect();
    for t in 0..8 {
        w.spawn(Box::new(CsLoop::new(locks[t], counters[t], 20, 100)));
    }
    w.run_to_completion();
    for &c in &counters {
        assert_eq!(w.mach().mem_peek(c), 20);
    }
    // All uncontended: no direct transfers should be needed.
    let c = w.report_counters();
    assert_eq!(c.get("lcu_direct_transfers"), 0);
}
