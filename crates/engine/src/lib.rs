//! Discrete-event simulation kernel for the locksim workspace.
//!
//! This crate provides the domain-independent pieces every other crate builds
//! on:
//!
//! * [`Time`] and [`Cycles`] — simulated time in clock cycles.
//! * [`Simulator`] — a deterministic discrete-event queue, generic over the
//!   event payload type.
//! * [`rng::RngStream`] — reproducible per-component random-number streams.
//! * [`stats`] — counters, running statistics, histograms and confidence
//!   intervals used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use locksim_engine::{Simulator, Time};
//!
//! let mut sim: Simulator<&'static str> = Simulator::new();
//! sim.schedule_in(10, "b");
//! sim.schedule_in(5, "a");
//! let (t, ev) = sim.pop().unwrap();
//! assert_eq!((t, ev), (Time::from_cycles(5), "a"));
//! let (t, ev) = sim.pop().unwrap();
//! assert_eq!((t, ev), (Time::from_cycles(10), "b"));
//! assert!(sim.pop().is_none());
//! ```

pub mod rng;
pub mod stats;

mod queue;
mod time;

pub use queue::{EventSeq, Simulator};
pub use rng::RngStream;
pub use time::{Cycles, Time};
