//! Deterministic event queue: a bucketed timing wheel with hierarchical
//! overflow.
//!
//! # Geometry
//!
//! Three tiers, promoted lazily as the clock advances:
//!
//! * **Near wheel** — [`SLOTS`] single-cycle buckets covering the aligned
//!   window `[base0, base0 + SLOTS)`. Schedule and pop are O(1); each
//!   bucket holds the events of exactly one cycle in FIFO order.
//! * **Far wheel** — [`SLOTS`] buckets of [`SLOTS`] cycles each covering
//!   `[base1, base1 + SLOTS²)`. When the clock enters a new near window
//!   the one far bucket covering it is cascaded into the near wheel.
//! * **Overflow** — an ordered map keyed by absolute cycle for anything
//!   beyond the far horizon (quantum ticks, watchdogs, chaos deadlines).
//!   When the clock enters a new far window the covered keys are promoted
//!   into the far wheel.
//!
//! # Storage
//!
//! Events live in one slab arena of linked nodes; wheel buckets are just
//! `head`/`tail` node indices. Scheduling writes one node and two indices,
//! popping unlinks the head, and a far→near cascade *relinks* nodes
//! without moving the events. Freed node slots are reused LIFO, so the
//! steady-state working set is `peak_pending` nodes — hot in cache — and
//! the run loop schedules and pops without heap traffic.
//!
//! # Ordering
//!
//! Pops are nondecreasing in time with same-cycle FIFO. The FIFO argument:
//! routing depends only on the event time versus the current windows, and
//! windows only move forward, at which point the covered bucket is drained
//! *stably* before any event in the new window can fire. So for a fixed
//! cycle, earlier-scheduled events always sit earlier in whatever bucket
//! currently holds that cycle. A retired `BinaryHeap` implementation is
//! kept as a `#[cfg(test)]` reference model and the two are driven in
//! lockstep by a differential property test below.

use std::collections::BTreeMap;

use crate::time::{Cycles, Time};

/// Monotonic sequence number used to break ties between events scheduled for
/// the same cycle: events fire in the order they were scheduled.
pub type EventSeq = u64;

/// Buckets per wheel level (must be a power of two).
const SLOTS: usize = 1 << 10;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Cycles covered by the far wheel: `SLOTS` buckets of `SLOTS` cycles.
const FAR_SPAN: u64 = (SLOTS as u64) * (SLOTS as u64);
const WORDS: usize = SLOTS / 64;

#[inline]
fn set_bit(bits: &mut [u64; WORDS], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn clear_bit(bits: &mut [u64; WORDS], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

#[inline]
fn first_bit(bits: &[u64; WORDS]) -> Option<usize> {
    bits.iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| (i << 6) + w.trailing_zeros() as usize)
}

/// First set bit at index `> s`, or `None`. Starts scanning in `s`'s word,
/// so when the next occupied slot is nearby (the common case while the
/// clock walks a window) this reads one or two words, not all of them.
#[inline]
fn first_bit_after(bits: &[u64; WORDS], s: usize) -> Option<usize> {
    let w = s >> 6;
    let masked = bits[w] & !(u64::MAX >> (63 - (s & 63)));
    if masked != 0 {
        return Some((w << 6) + masked.trailing_zeros() as usize);
    }
    bits[w + 1..]
        .iter()
        .enumerate()
        .find(|(_, &word)| word != 0)
        .map(|(i, &word)| ((w + 1 + i) << 6) + word.trailing_zeros() as usize)
}

/// Arena node index sentinel for "no node".
const NIL: u32 = u32::MAX;

/// One arena slot: an event tagged with its absolute cycle, linked into
/// whichever bucket currently holds that cycle. `event` is `None` only
/// while the slot sits on the free list.
#[derive(Debug)]
struct Node<E> {
    at: u64,
    next: u32,
    event: Option<E>,
}

/// A bucket's intrusive list: head/tail arena indices.
#[derive(Debug, Clone, Copy)]
struct List {
    head: u32,
    tail: u32,
}

impl List {
    const EMPTY: List = List {
        head: NIL,
        tail: NIL,
    };
}

/// A deterministic discrete-event simulator queue.
///
/// Events of type `E` are scheduled at absolute or relative times and popped
/// in nondecreasing time order. Two events scheduled for the same cycle fire
/// in scheduling order, making every run bit-for-bit reproducible.
///
/// The simulator only manages *time and ordering*; the caller interprets the
/// popped events (typically a `World`-style dispatcher owning all model
/// state).
///
/// # Example
///
/// ```
/// use locksim_engine::Simulator;
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(3, 'x');
/// sim.schedule_in(3, 'y'); // same cycle: FIFO order
/// let mut order = Vec::new();
/// while let Some((_, ev)) = sim.pop() {
///     order.push(ev);
/// }
/// assert_eq!(order, ['x', 'y']);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: Time,
    seq: EventSeq,
    popped: u64,
    pending: usize,
    peak_pending: usize,
    /// Cycle of the earliest pending event — kept exact by every mutation
    /// so `peek_time` (called once per run-loop iteration) is a load.
    next_at: Option<u64>,
    /// Start of the near window (aligned down to `SLOTS`).
    base0: u64,
    /// Start of the far window (aligned down to `FAR_SPAN`).
    base1: u64,
    /// Slab of linked event nodes; freed slots chain off `free` and are
    /// reused LIFO, so the hot working set is `peak_pending` nodes.
    arena: Vec<Node<E>>,
    free: u32,
    near: Box<[List; SLOTS]>,
    near_bits: [u64; WORDS],
    far: Box<[List; SLOTS]>,
    far_bits: [u64; WORDS],
    overflow: BTreeMap<u64, List>,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: Time::ZERO,
            seq: 0,
            popped: 0,
            pending: 0,
            peak_pending: 0,
            next_at: None,
            base0: 0,
            base1: 0,
            arena: Vec::new(),
            free: NIL,
            near: Box::new([List::EMPTY; SLOTS]),
            near_bits: [0; WORDS],
            far: Box::new([List::EMPTY; SLOTS]),
            far_bits: [0; WORDS],
            overflow: BTreeMap::new(),
        }
    }

    /// Takes a node off the free list (or grows the slab) and fills it.
    #[inline]
    fn alloc_node(&mut self, at: u64, event: E) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            let n = &mut self.arena[idx as usize];
            self.free = n.next;
            n.at = at;
            n.next = NIL;
            n.event = Some(event);
            idx
        } else {
            let idx = u32::try_from(self.arena.len()).expect("event arena overflow");
            assert_ne!(idx, NIL, "event arena overflow");
            self.arena.push(Node {
                at,
                next: NIL,
                event: Some(event),
            });
            idx
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Highest number of simultaneously pending events seen so far — the
    /// queue-occupancy waterline `benchsim` reports per scenario.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Total events ever scheduled (the next sequence number).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Returns `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) -> EventSeq {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventSeq {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let t = at.max(self.now).cycles();
        let idx = self.alloc_node(t, event);
        if t < self.base0 + SLOTS as u64 {
            // The near window starts at or below `now`, so `t` maps to the
            // unique in-window cycle for its slot.
            let s = (t & SLOT_MASK) as usize;
            let tail = self.near[s].tail;
            if tail == NIL {
                self.near[s].head = idx;
                set_bit(&mut self.near_bits, s);
            } else {
                self.arena[tail as usize].next = idx;
            }
            self.near[s].tail = idx;
        } else if t < self.base1 + FAR_SPAN {
            let b = ((t >> 10) & SLOT_MASK) as usize;
            let tail = self.far[b].tail;
            if tail == NIL {
                self.far[b].head = idx;
                set_bit(&mut self.far_bits, b);
            } else {
                self.arena[tail as usize].next = idx;
            }
            self.far[b].tail = idx;
        } else {
            let list = self.overflow.entry(t).or_insert(List::EMPTY);
            let tail = list.tail;
            list.tail = idx;
            if tail == NIL {
                list.head = idx;
            } else {
                self.arena[tail as usize].next = idx;
            }
        }
        self.pending += 1;
        self.peak_pending = self.peak_pending.max(self.pending);
        self.next_at = Some(self.next_at.map_or(t, |n| n.min(t)));
        seq
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let t = self.next_at?;
        if t >= self.base0 + SLOTS as u64 {
            self.roll_to(t);
        }
        let s = (t & SLOT_MASK) as usize;
        let idx = self.near[s].head;
        debug_assert_ne!(idx, NIL, "next_at desynced");
        let node = &mut self.arena[idx as usize];
        let event = node.event.take().expect("free node linked in a bucket");
        let next = node.next;
        node.next = self.free;
        self.free = idx;
        self.near[s].head = next;
        self.pending -= 1;
        self.popped += 1;
        let at = Time::from_cycles(t);
        debug_assert!(at >= self.now);
        self.now = at;
        if next == NIL {
            self.near[s].tail = NIL;
            clear_bit(&mut self.near_bits, s);
            self.recompute_next(s);
        }
        Some((at, event))
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.next_at.map(Time::from_cycles)
    }

    /// Advances the clock to `at` without popping an event, so work injected
    /// from outside the queue (fault injection, external stimuli) lands at an
    /// exact cycle. A target at or before `now` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an event earlier than `at` is still pending —
    /// the caller must drain those first or determinism is lost.
    pub fn advance_to(&mut self, at: Time) {
        if at <= self.now {
            return;
        }
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= at),
            "advance_to({at:?}) would skip a pending event at {:?}",
            self.peek_time()
        );
        self.now = at;
    }

    /// Rolls the windows forward so cycle `t` lies in the near wheel,
    /// cascading the covering far bucket (and, on a far-window crossing,
    /// promoting the covered overflow keys first). Only called when the
    /// near wheel is empty: every earlier event has already popped.
    #[cold]
    fn roll_to(&mut self, t: u64) {
        debug_assert!(
            self.near_bits.iter().all(|&w| w == 0),
            "window roll with events still in the near wheel"
        );
        if t >= self.base1 + FAR_SPAN {
            debug_assert!(
                self.far_bits.iter().all(|&w| w == 0),
                "far-window roll with events still in the far wheel"
            );
            self.base1 = t & !(FAR_SPAN - 1);
            let horizon = self.base1 + FAR_SPAN;
            while let Some(entry) = self.overflow.first_entry() {
                let k = *entry.key();
                if k >= horizon {
                    break;
                }
                // Splice the whole per-key list onto the far bucket: keys
                // promote in ascending order and each key's list is already
                // FIFO, so bucket order stays (cycle, then scheduling order).
                let list = entry.remove();
                let b = ((k >> 10) & SLOT_MASK) as usize;
                let tail = self.far[b].tail;
                if tail == NIL {
                    self.far[b].head = list.head;
                    set_bit(&mut self.far_bits, b);
                } else {
                    self.arena[tail as usize].next = list.head;
                }
                self.far[b].tail = list.tail;
            }
        }
        self.base0 = t & !SLOT_MASK;
        let b = ((t >> 10) & SLOT_MASK) as usize;
        if self.far_bits[b >> 6] & (1 << (b & 63)) != 0 {
            clear_bit(&mut self.far_bits, b);
            // Stable cascade: relink each node into its near slot in list
            // order. The events themselves never move.
            let mut idx = std::mem::replace(&mut self.far[b], List::EMPTY).head;
            while idx != NIL {
                let node = &mut self.arena[idx as usize];
                let (time, next) = (node.at, node.next);
                node.next = NIL;
                debug_assert_eq!(time & !SLOT_MASK, self.base0);
                let s = (time & SLOT_MASK) as usize;
                let tail = self.near[s].tail;
                if tail == NIL {
                    self.near[s].head = idx;
                    set_bit(&mut self.near_bits, s);
                } else {
                    self.arena[tail as usize].next = idx;
                }
                self.near[s].tail = idx;
                idx = next;
            }
        }
    }

    /// Rebuilds `next_at` after the slot `drained` (the cached minimum's
    /// slot) emptied. Every pending near event is strictly after the drained
    /// cycle, so the scan starts at its slot rather than slot 0; far buckets
    /// cover disjoint increasing ranges within their window, so the first
    /// occupied bucket holds the minimum otherwise (found by walking its
    /// list); overflow keys all lie beyond the far horizon.
    fn recompute_next(&mut self, drained: usize) {
        self.next_at = if let Some(s) = first_bit_after(&self.near_bits, drained) {
            Some(self.base0 + s as u64)
        } else if let Some(b) = first_bit(&self.far_bits) {
            let mut idx = self.far[b].head;
            let mut min = u64::MAX;
            while idx != NIL {
                let node = &self.arena[idx as usize];
                min = min.min(node.at);
                idx = node.next;
            }
            Some(min)
        } else {
            self.overflow.first_key_value().map(|(&k, _)| k)
        };
    }
}

/// The retired `BinaryHeap` event queue, kept as the reference model for the
/// differential property test: same API subset, obviously correct ordering
/// by `(time, seq)`.
#[cfg(test)]
mod model {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    use super::EventSeq;
    use crate::time::{Cycles, Time};

    #[derive(Debug)]
    struct Entry<E> {
        time: Time,
        seq: EventSeq,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            (self.time, self.seq).cmp(&(other.time, other.seq))
        }
    }

    #[derive(Debug, Default)]
    pub struct HeapSimulator<E> {
        now: Time,
        seq: EventSeq,
        heap: BinaryHeap<Reverse<Entry<E>>>,
        popped: u64,
        peak_pending: usize,
    }

    impl<E> HeapSimulator<E> {
        pub fn new() -> Self {
            HeapSimulator {
                now: Time::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                popped: 0,
                peak_pending: 0,
            }
        }

        pub fn now(&self) -> Time {
            self.now
        }

        pub fn events_processed(&self) -> u64 {
            self.popped
        }

        pub fn pending(&self) -> usize {
            self.heap.len()
        }

        pub fn peak_pending(&self) -> usize {
            self.peak_pending
        }

        pub fn events_scheduled(&self) -> u64 {
            self.seq
        }

        pub fn schedule_in(&mut self, delay: Cycles, event: E) -> EventSeq {
            self.schedule_at(self.now + delay, event)
        }

        pub fn schedule_at(&mut self, at: Time, event: E) -> EventSeq {
            debug_assert!(at >= self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Reverse(Entry {
                time: at.max(self.now),
                seq,
                event,
            }));
            self.peak_pending = self.peak_pending.max(self.heap.len());
            seq
        }

        pub fn pop(&mut self) -> Option<(Time, E)> {
            let Reverse(entry) = self.heap.pop()?;
            self.now = entry.time;
            self.popped += 1;
            Some((entry.time, entry.event))
        }

        pub fn peek_time(&self) -> Option<Time> {
            self.heap.peek().map(|Reverse(e)| e.time)
        }

        pub fn advance_to(&mut self, at: Time) {
            if at <= self.now {
                return;
            }
            debug_assert!(self.peek_time().is_none_or(|t| t >= at));
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_in(30, 3);
        sim.schedule_in(10, 1);
        sim.schedule_in(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut sim = Simulator::new();
        for i in 0..100 {
            sim.schedule_in(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut sim = Simulator::new();
        sim.schedule_in(42, ());
        assert_eq!(sim.now(), Time::ZERO);
        sim.pop();
        assert_eq!(sim.now(), Time::from_cycles(42));
    }

    #[test]
    fn schedule_relative_to_current_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(10, 'a');
        sim.pop();
        sim.schedule_in(5, 'b');
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, Time::from_cycles(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim = Simulator::new();
        sim.schedule_in(7, ());
        assert_eq!(sim.peek_time(), Some(Time::from_cycles(7)));
        assert_eq!(sim.now(), Time::ZERO);
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulator::new();
        assert!(sim.is_empty());
        sim.schedule_in(1, ());
        sim.schedule_in(2, ());
        assert_eq!(sim.pending(), 2);
        sim.pop();
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.events_scheduled(), 2);
    }

    #[test]
    fn peak_pending_is_a_high_water_mark() {
        let mut sim = Simulator::new();
        assert_eq!(sim.peak_pending(), 0);
        sim.schedule_in(1, ());
        sim.schedule_in(2, ());
        sim.schedule_in(3, ());
        assert_eq!(sim.peak_pending(), 3);
        sim.pop();
        sim.pop();
        // Draining never lowers the waterline.
        assert_eq!(sim.peak_pending(), 3);
        sim.schedule_in(4, ());
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.peak_pending(), 3);
    }

    #[test]
    fn advance_to_moves_clock_without_popping() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(Time::from_cycles(50));
        assert_eq!(sim.now(), Time::from_cycles(50));
        assert_eq!(sim.events_processed(), 0);
        // Backwards / same-cycle targets are no-ops.
        sim.advance_to(Time::from_cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(50));
        // Scheduling after an advance is relative to the new clock.
        sim.schedule_in(5, ());
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, Time::from_cycles(55));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(3, ());
        sim.advance_to(Time::from_cycles(10));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two identical runs produce identical traces.
        let run = || {
            let mut sim = Simulator::new();
            let mut trace = Vec::new();
            sim.schedule_in(0, 0u32);
            while let Some((t, e)) = sim.pop() {
                trace.push((t, e));
                if e < 20 {
                    sim.schedule_in((e as u64 * 7) % 5, e + 2);
                    sim.schedule_in((e as u64 * 3) % 5, e + 1);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_events_cross_every_tier() {
        let mut sim = Simulator::new();
        // Overflow (beyond the far horizon), far wheel, near wheel — all at
        // once, with same-cycle pairs on each tier.
        let far = FAR_SPAN + 7;
        sim.schedule_in(far, 100);
        sim.schedule_in(far, 101);
        sim.schedule_in(SLOTS as u64 + 3, 10);
        sim.schedule_in(SLOTS as u64 + 3, 11);
        sim.schedule_in(2, 0);
        sim.schedule_in(2, 1);
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [0, 1, 10, 11, 100, 101]);
        assert_eq!(sim.now(), Time::from_cycles(far));
    }

    #[test]
    fn same_cycle_fifo_survives_tier_promotion() {
        // Schedule at a cycle while it is far-future, then again at the same
        // cycle once it is near: the early (overflow) event must still pop
        // first.
        let mut sim = Simulator::new();
        let target = FAR_SPAN + 500;
        sim.schedule_at(Time::from_cycles(target), 'a'); // overflow tier
        sim.schedule_in(1, 'x');
        sim.pop(); // now = 1
        sim.schedule_at(Time::from_cycles(target), 'b'); // still far
        let (_, e1) = sim.pop().unwrap();
        // 'b' was scheduled after 'a'; both promoted stably.
        assert_eq!(e1, 'a');
        assert_eq!(sim.pop().unwrap().1, 'b');
    }

    mod differential {
        //! Satellite: the new wheel and the retired heap queue are driven
        //! with identical random schedule/pop/advance sequences — including
        //! same-cycle bursts, far-future overflow, and drain-then-advance —
        //! and must agree on pop order, clock, and the
        //! `scheduled = processed + pending` accounting at every step.

        use super::super::model::HeapSimulator;
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            /// Schedule `1 + burst` events `delay` cycles out (a burst lands
            /// them all on the same cycle, exercising FIFO).
            Schedule {
                delay: u64,
                burst: u8,
            },
            Pop,
            /// Drain everything, then advance the clock into the gap.
            DrainThenAdvance {
                gap: u64,
            },
        }

        /// The vendored proptest has no combinators, so `Op` gets a bespoke
        /// strategy biased toward schedules, with delays mixing near-window,
        /// far-wheel, and overflow targets.
        #[derive(Debug, Clone, Copy)]
        struct OpStrategy;

        impl Strategy for OpStrategy {
            type Value = Op;
            fn new_value(&self, rng: &mut proptest::test_runner::TestRng) -> Op {
                let delay = rng.below(600);
                match rng.below(8) {
                    0..=3 => Op::Schedule {
                        delay: match delay % 3 {
                            0 => delay,
                            1 => delay * 97,
                            _ => FAR_SPAN + delay * 13,
                        },
                        burst: rng.below(4) as u8,
                    },
                    4..=6 => Op::Pop,
                    _ => Op::DrainThenAdvance {
                        gap: 1 + rng.below(2000),
                    },
                }
            }
        }

        fn check_agree(ops: Vec<Op>) -> Result<(), TestCaseError> {
            let mut wheel = Simulator::new();
            let mut heap = HeapSimulator::new();
            let mut id = 0u64;
            for op in ops {
                match op {
                    Op::Schedule { delay, burst } => {
                        for _ in 0..=burst {
                            let a = wheel.schedule_in(delay, id);
                            let b = heap.schedule_in(delay, id);
                            prop_assert_eq!(a, b, "sequence numbers diverged");
                            id += 1;
                        }
                    }
                    Op::Pop => {
                        prop_assert_eq!(wheel.pop(), heap.pop());
                    }
                    Op::DrainThenAdvance { gap } => {
                        loop {
                            let (a, b) = (wheel.pop(), heap.pop());
                            prop_assert_eq!(a, b);
                            if a.is_none() {
                                break;
                            }
                        }
                        let target = wheel.now() + gap;
                        wheel.advance_to(target);
                        heap.advance_to(target);
                    }
                }
                prop_assert_eq!(wheel.now(), heap.now());
                prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                prop_assert_eq!(wheel.pending(), heap.pending());
                prop_assert_eq!(wheel.peak_pending(), heap.peak_pending());
                prop_assert_eq!(
                    wheel.events_scheduled(),
                    wheel.events_processed() + wheel.pending() as u64
                );
                prop_assert_eq!(
                    heap.events_scheduled(),
                    heap.events_processed() + heap.pending() as u64
                );
            }
            // Final drain: both queues must agree to exhaustion.
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(wheel.events_processed(), heap.events_processed());
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn wheel_matches_heap_model(
                ops in proptest::collection::vec(OpStrategy, 1..200),
            ) {
                check_agree(ops)?;
            }
        }
    }
}
