//! Deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::{Cycles, Time};

/// Monotonic sequence number used to break ties between events scheduled for
/// the same cycle: events fire in the order they were scheduled.
pub type EventSeq = u64;

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: EventSeq,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulator queue.
///
/// Events of type `E` are scheduled at absolute or relative times and popped
/// in nondecreasing time order. Two events scheduled for the same cycle fire
/// in scheduling order, making every run bit-for-bit reproducible.
///
/// The simulator only manages *time and ordering*; the caller interprets the
/// popped events (typically a `World`-style dispatcher owning all model
/// state).
///
/// # Example
///
/// ```
/// use locksim_engine::Simulator;
///
/// let mut sim = Simulator::new();
/// sim.schedule_in(3, 'x');
/// sim.schedule_in(3, 'y'); // same cycle: FIFO order
/// let mut order = Vec::new();
/// while let Some((_, ev)) = sim.pop() {
///     order.push(ev);
/// }
/// assert_eq!(order, ['x', 'y']);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: Time,
    seq: EventSeq,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    popped: u64,
    peak_pending: usize,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            popped: 0,
            peak_pending: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events popped so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Highest number of simultaneously pending events seen so far — the
    /// queue-occupancy waterline `benchsim` reports per scenario.
    #[inline]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Total events ever scheduled (the next sequence number).
    #[inline]
    pub fn events_scheduled(&self) -> u64 {
        self.seq
    }

    /// Returns `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycles, event: E) -> EventSeq {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is in the past.
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventSeq {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time: at.max(self.now),
            seq,
            event,
        }));
        self.peak_pending = self.peak_pending.max(self.heap.len());
        seq
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Advances the clock to `at` without popping an event, so work injected
    /// from outside the queue (fault injection, external stimuli) lands at an
    /// exact cycle. A target at or before `now` is a no-op.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an event earlier than `at` is still pending —
    /// the caller must drain those first or determinism is lost.
    pub fn advance_to(&mut self, at: Time) {
        if at <= self.now {
            return;
        }
        debug_assert!(
            self.peek_time().is_none_or(|t| t >= at),
            "advance_to({at:?}) would skip a pending event at {:?}",
            self.peek_time()
        );
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut sim = Simulator::new();
        sim.schedule_in(30, 3);
        sim.schedule_in(10, 1);
        sim.schedule_in(20, 2);
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut sim = Simulator::new();
        for i in 0..100 {
            sim.schedule_in(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut sim = Simulator::new();
        sim.schedule_in(42, ());
        assert_eq!(sim.now(), Time::ZERO);
        sim.pop();
        assert_eq!(sim.now(), Time::from_cycles(42));
    }

    #[test]
    fn schedule_relative_to_current_time() {
        let mut sim = Simulator::new();
        sim.schedule_in(10, 'a');
        sim.pop();
        sim.schedule_in(5, 'b');
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, Time::from_cycles(15));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim = Simulator::new();
        sim.schedule_in(7, ());
        assert_eq!(sim.peek_time(), Some(Time::from_cycles(7)));
        assert_eq!(sim.now(), Time::ZERO);
    }

    #[test]
    fn counters_track_activity() {
        let mut sim = Simulator::new();
        assert!(sim.is_empty());
        sim.schedule_in(1, ());
        sim.schedule_in(2, ());
        assert_eq!(sim.pending(), 2);
        sim.pop();
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.events_scheduled(), 2);
    }

    #[test]
    fn peak_pending_is_a_high_water_mark() {
        let mut sim = Simulator::new();
        assert_eq!(sim.peak_pending(), 0);
        sim.schedule_in(1, ());
        sim.schedule_in(2, ());
        sim.schedule_in(3, ());
        assert_eq!(sim.peak_pending(), 3);
        sim.pop();
        sim.pop();
        // Draining never lowers the waterline.
        assert_eq!(sim.peak_pending(), 3);
        sim.schedule_in(4, ());
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.peak_pending(), 3);
    }

    #[test]
    fn advance_to_moves_clock_without_popping() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(Time::from_cycles(50));
        assert_eq!(sim.now(), Time::from_cycles(50));
        assert_eq!(sim.events_processed(), 0);
        // Backwards / same-cycle targets are no-ops.
        sim.advance_to(Time::from_cycles(10));
        assert_eq!(sim.now(), Time::from_cycles(50));
        // Scheduling after an advance is relative to the new clock.
        sim.schedule_in(5, ());
        let (t, _) = sim.pop().unwrap();
        assert_eq!(t, Time::from_cycles(55));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(3, ());
        sim.advance_to(Time::from_cycles(10));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two identical runs produce identical traces.
        let run = || {
            let mut sim = Simulator::new();
            let mut trace = Vec::new();
            sim.schedule_in(0, 0u32);
            while let Some((t, e)) = sim.pop() {
                trace.push((t, e));
                if e < 20 {
                    sim.schedule_in((e as u64 * 7) % 5, e + 2);
                    sim.schedule_in((e as u64 * 3) % 5, e + 1);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
