//! Reproducible random-number streams.
//!
//! Every stochastic component of the simulation (each simulated thread, the
//! scheduler, workload generators, ...) draws from its own [`RngStream`],
//! derived from a master seed plus a stream identifier. Runs with the same
//! seed are bit-for-bit identical regardless of how many components exist or
//! in which order they draw.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A named, reproducible random-number stream.
///
/// # Example
///
/// ```
/// use locksim_engine::RngStream;
///
/// let mut a = RngStream::new(42, 7);
/// let mut b = RngStream::new(42, 7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = RngStream::new(42, 8);
/// // Different stream ids decorrelate (overwhelmingly likely to differ).
/// assert_ne!(RngStream::new(42, 7).next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct RngStream {
    rng: SmallRng,
}

impl RngStream {
    /// Creates the stream `stream` of the master seed `seed`.
    pub fn new(seed: u64, stream: u64) -> Self {
        // SplitMix64-style mixing so that adjacent (seed, stream) pairs map to
        // well-separated SmallRng seeds.
        let mut z = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(0x94D0_49BB_1331_11EB);
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let mut seed_bytes = [0u8; 32];
        for chunk in seed_bytes.chunks_mut(8) {
            chunk.copy_from_slice(&next().to_le_bytes());
        }
        RngStream {
            rng: SmallRng::from_seed(seed_bytes),
        }
    }

    /// Next uniformly distributed `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.rng.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.rng.gen_range(lo..hi)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < p
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Geometrically distributed count of failures before the first success
    /// with success probability `p`; used for exponential-ish backoff jitter.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1], got {p}");
        if p >= 1.0 {
            return 0;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Forks a decorrelated child stream: one draw from `self` is mixed with
    /// `tag` to seed an independent stream. Children with distinct tags are
    /// decorrelated from each other and from the parent's subsequent output.
    ///
    /// This is the split-stream primitive used by the chaos fuzzer: a root
    /// stream is forked once per concern (fault-plan generation, workload
    /// perturbation), so drawing more values for one concern never shifts
    /// the other's sequence — a plan-generator change cannot silently alter
    /// the workload a seed produces.
    pub fn split(&mut self, tag: u64) -> RngStream {
        RngStream::new(self.next_u64(), tag)
    }

    /// Draws a random permutation index order of `n` elements.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        // Fisher–Yates.
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(1, 2);
        let mut b = RngStream::new(1, 2);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let a: Vec<u64> = {
            let mut r = RngStream::new(9, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = RngStream::new(9, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn split_streams_are_independent_of_parent_draw_count() {
        // The child seeded from the first parent draw is the same whether or
        // not the *other* child drew anything in between.
        let child = |other_draws: usize| {
            let mut root = RngStream::new(17, 0);
            let mut a = root.split(0);
            let mut b = root.split(1);
            for _ in 0..other_draws {
                b.next_u64();
            }
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(child(0), child(100));
        // Distinct tags decorrelate.
        let mut root = RngStream::new(17, 0);
        let mut a = root.split(0);
        let mut root2 = RngStream::new(17, 0);
        let mut b = root2.split(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = RngStream::new(3, 3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = RngStream::new(3, 4);
        for _ in 0..1000 {
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::new(5, 5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = RngStream::new(7, 7);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn geometric_mean_close_to_theory() {
        let mut r = RngStream::new(11, 11);
        let p = 0.5;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        // Theoretical mean (failures before success) = (1-p)/p = 1.0.
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = RngStream::new(13, 13);
        let mut p = r.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn permutation_of_zero_and_one() {
        let mut r = RngStream::new(13, 14);
        assert!(r.permutation(0).is_empty());
        assert_eq!(r.permutation(1), vec![0]);
    }
}
