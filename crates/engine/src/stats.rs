//! Statistics collection: counters, running moments, histograms and
//! confidence intervals.
//!
//! The experiment harness reports per-configuration means with 95% confidence
//! intervals across repeated runs (mirroring the paper's Figure 13 error
//! bars), so this module provides [`Summary`] for cross-run aggregation and
//! [`Running`] for intra-run accumulation.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// Incrementally computed mean/variance/min/max over a stream of samples
/// (Welford's algorithm).
///
/// # Example
///
/// ```
/// use locksim_engine::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.add(x);
/// }
/// assert_eq!(r.count(), 8);
/// assert!((r.mean() - 5.0).abs() < 1e-12);
/// assert!((r.population_stddev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (0 if empty — never leaks the +∞ sentinel into
    /// formatted output).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty — never leaks the -∞ sentinel into
    /// formatted output).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (dividing by n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Unbiased sample variance (dividing by n-1; 0 if fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// normal approximation (adequate for the ≥5 repetitions the harness
    /// runs). Zero for fewer than two samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.sample_stddev() / (self.n as f64).sqrt()
        }
    }

    /// Summarises into a [`Summary`] snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            ci95: self.ci95_half_width(),
            min: if self.n == 0 { 0.0 } else { self.min },
            max: if self.n == 0 { 0.0 } else { self.max },
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Running) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A point-in-time snapshot of a [`Running`] accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// 95% confidence-interval half width.
    pub ci95: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // With fewer than two samples there is no spread estimate: render
        // "n/a" rather than a misleading ±0.0 (or NaN from a degenerate
        // accumulator).
        if self.count < 2 || self.ci95.is_nan() {
            write!(f, "{:.1} ±n/a (n={})", self.mean, self.count)
        } else {
            write!(f, "{:.1} ±{:.1} (n={})", self.mean, self.ci95, self.count)
        }
    }
}

/// A log-scaled histogram for latency-like quantities (cycle counts spanning
/// several orders of magnitude).
///
/// Buckets are powers of two: bucket *k* holds samples in `[2^k, 2^(k+1))`,
/// with bucket 0 also holding zero. Bucket storage is a fixed array so the
/// per-sample cost on hot simulation paths is one shift and one add, with no
/// tree walk or allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            total: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn add(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() - 1
        };
        self.buckets[bucket as usize] += 1;
        self.total += 1;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Iterates `(bucket_low_bound, count)` over non-empty buckets in
    /// increasing order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
    }

    /// Approximate quantile (returns the low bound of the bucket containing
    /// the q-quantile sample). `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (k, c) in self.iter() {
            seen += c;
            if seen >= target {
                return Some(k);
            }
        }
        self.iter().last().map(|(k, _)| k)
    }
}

/// A fast non-cryptographic hasher (the FxHash multiply-rotate scheme) for
/// `&'static str` counter keys. Counter bumps sit on the per-event hot path
/// of the simulator, where SipHash and ordered-map string compares both
/// showed up in the self-profiler.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, b: u8) {
        self.mix(b as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A named bundle of monotonically increasing event counters.
///
/// Components count protocol events (messages sent, retries, grants,
/// overflows, ...) into a `Counters` and the harness folds them into reports.
/// Storage is an unordered fast-hash map (bumps are hot-path); iteration
/// sorts by name so every rendered report stays deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: HashMap<&'static str, u64, FxBuildHasher>,
}

impl Counters {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut entries: Vec<(&'static str, u64)> =
            self.map.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries.into_iter()
    }

    /// Folds another bundle into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (&k, &v) in &other.map {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_empty_is_sane() {
        let r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.sample_variance(), 0.0);
        assert_eq!(r.ci95_half_width(), 0.0);
    }

    #[test]
    fn running_single_sample() {
        let mut r = Running::new();
        r.add(42.0);
        assert_eq!(r.mean(), 42.0);
        assert_eq!(r.min(), 42.0);
        assert_eq!(r.max(), 42.0);
        assert_eq!(r.sample_variance(), 0.0);
    }

    #[test]
    fn running_matches_naive_computation() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64).collect();
        let mut r = Running::new();
        for &x in &xs {
            r.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((r.mean() - mean).abs() < 1e-9);
        assert!((r.sample_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn running_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Running::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Running::new();
        let mut b = Running::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 2 == 0 {
                a.add(x)
            } else {
                b.add(x)
            }
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Running::new();
        a.add(1.0);
        a.add(3.0);
        let before = a.clone();
        a.merge(&Running::new());
        assert_eq!(a, before);
        let mut empty = Running::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Running::new();
        let mut large = Running::new();
        for i in 0..10 {
            small.add((i % 3) as f64);
        }
        for i in 0..1000 {
            large.add((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn summary_display_nonempty() {
        let mut r = Running::new();
        r.add(10.0);
        r.add(20.0);
        let s = format!("{}", r.summary());
        assert!(s.contains("15.0"));
        assert!(!s.contains("n/a"), "two samples have a real CI: {s}");
    }

    #[test]
    fn empty_running_formats_finite() {
        let r = Running::new();
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), 0.0);
        let s = format!("{}", r.summary());
        assert!(
            !s.contains("inf") && !s.contains("NaN"),
            "leaked sentinel: {s}"
        );
        assert!(s.contains("n/a"), "no CI without samples: {s}");
    }

    #[test]
    fn single_sample_summary_renders_na_ci() {
        let mut r = Running::new();
        r.add(42.0);
        let s = format!("{}", r.summary());
        assert!(s.contains("42.0"));
        assert!(s.contains("±n/a"), "n=1 has no spread estimate: {s}");
        assert!(s.contains("(n=1)"));
    }

    #[test]
    fn nan_ci_renders_na() {
        let s = Summary {
            count: 5,
            mean: 1.0,
            ci95: f64::NAN,
            min: 0.0,
            max: 2.0,
        };
        let txt = format!("{s}");
        assert!(!txt.contains("NaN"), "{txt}");
        assert!(txt.contains("±n/a"), "{txt}");
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.add(0);
        h.add(1);
        h.add(2);
        h.add(3);
        h.add(1024);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(1, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.5), Some(1));
        assert_eq!(h.quantile(1.0), Some(512)); // bucket [512, 1024) holds 1000
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.incr("msgs");
        a.add("msgs", 4);
        a.incr("retries");
        let mut b = Counters::new();
        b.add("msgs", 10);
        a.merge(&b);
        assert_eq!(a.get("msgs"), 15);
        assert_eq!(a.get("retries"), 1);
        assert_eq!(a.get("absent"), 0);
        let names: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["msgs", "retries"]);
    }
}
