//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration measured in simulated clock cycles.
pub type Cycles = u64;

/// An absolute point in simulated time, measured in clock cycles since the
/// start of the simulation.
///
/// `Time` is a newtype over [`Cycles`] so that absolute times and durations
/// cannot be confused: `Time + Cycles -> Time` and `Time - Time -> Cycles`
/// are defined, but `Time + Time` is not.
///
/// # Example
///
/// ```
/// use locksim_engine::Time;
///
/// let t = Time::ZERO + 100;
/// assert_eq!(t.cycles(), 100);
/// assert_eq!(t - Time::from_cycles(40), 60);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(Cycles);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Creates a `Time` from an absolute cycle count.
    #[inline]
    pub const fn from_cycles(cycles: Cycles) -> Self {
        Time(cycles)
    }

    /// Returns the absolute cycle count.
    #[inline]
    pub const fn cycles(self) -> Cycles {
        self.0
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Cycles {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }
}

impl Add<Cycles> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Cycles) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<Cycles> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Cycles;

    /// Duration between two absolute times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Cycles {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        self.0 - rhs.0
    }
}

impl Sum<Cycles> for Time {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Time {
        Time(iter.sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Time::default(), Time::ZERO);
        assert_eq!(Time::ZERO.cycles(), 0);
    }

    #[test]
    fn add_and_sub_round_trip() {
        let t = Time::from_cycles(1_000);
        let later = t + 234;
        assert_eq!(later - t, 234);
        assert_eq!(later.cycles(), 1_234);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = Time::ZERO;
        t += 7;
        t += 3;
        assert_eq!(t, Time::from_cycles(10));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time::from_cycles(5);
        let b = Time::from_cycles(9);
        assert_eq!(b.saturating_since(a), 4);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn max_picks_later() {
        let a = Time::from_cycles(5);
        let b = Time::from_cycles(9);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn ordering_follows_cycles() {
        assert!(Time::from_cycles(1) < Time::from_cycles(2));
    }

    #[test]
    fn debug_format_is_nonempty() {
        assert_eq!(format!("{:?}", Time::from_cycles(42)), "42cy");
        assert_eq!(format!("{}", Time::from_cycles(42)), "42");
    }
}
