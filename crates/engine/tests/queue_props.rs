//! Property tests for the deterministic event queue — the safety net any
//! future queue swap (e.g. a timing wheel, ROADMAP item 2) must pass.
//!
//! The contract under test: pops are nondecreasing in time, same-cycle
//! events fire in scheduling order (FIFO), every scheduled event is popped
//! exactly once, and `advance_to` moves the clock without disturbing any
//! of that.

use proptest::prelude::*;

use locksim_engine::{Simulator, Time};

/// Schedules `delays` up front (payload = scheduling index) and drains.
fn run_schedule(delays: &[u64]) -> Vec<(u64, usize)> {
    let mut sim = Simulator::new();
    for (i, &d) in delays.iter().enumerate() {
        sim.schedule_in(d, i);
    }
    let mut popped = Vec::new();
    while let Some((t, i)) = sim.pop() {
        popped.push((t.cycles(), i));
    }
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same-cycle events pop in scheduling order; across cycles, time wins.
    /// Equivalently: the pop order is exactly a stable sort of the schedule
    /// order by fire time.
    #[test]
    fn pop_order_is_stable_sort_by_time(
        delays in proptest::collection::vec(0u64..16, 1..64),
    ) {
        let popped = run_schedule(&delays);
        prop_assert_eq!(popped.len(), delays.len());

        let mut expected: Vec<(u64, usize)> = delays
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        expected.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        prop_assert_eq!(popped, expected);
    }

    /// FIFO stability in the purest form: everything lands on one cycle,
    /// so the pop order must be precisely the scheduling order.
    #[test]
    fn same_cycle_batch_is_fifo(
        n in 1usize..128,
        delay in 0u64..1000,
    ) {
        let popped = run_schedule(&vec![delay; n]);
        let indices: Vec<usize> = popped.iter().map(|&(_, i)| i).collect();
        prop_assert_eq!(indices, (0..n).collect::<Vec<_>>());
        prop_assert!(popped.iter().all(|&(t, _)| t == delay));
    }

    /// Interleaving pops with new (future) schedules keeps times
    /// nondecreasing, delivers every event exactly once, and the
    /// scheduled/processed/pending accounting balances throughout.
    #[test]
    fn interleaved_pops_preserve_order_and_accounting(
        seed_delays in proptest::collection::vec(0u64..32, 1..16),
        respawn in proptest::collection::vec((0u64..32, any::<bool>()), 0..64),
    ) {
        let mut sim = Simulator::new();
        let mut next_id = 0usize;
        for &d in &seed_delays {
            sim.schedule_in(d, next_id);
            next_id += 1;
        }
        let mut respawn = respawn.into_iter();
        let mut last_t = 0u64;
        let mut seen = Vec::new();
        while let Some((t, id)) = sim.pop() {
            prop_assert!(t.cycles() >= last_t, "time went backwards");
            last_t = t.cycles();
            seen.push(id);
            // Consistency between the three counters at every step.
            prop_assert_eq!(
                sim.events_scheduled(),
                sim.events_processed() + sim.pending() as u64
            );
            if let Some((d, twice)) = respawn.next() {
                sim.schedule_in(d, next_id);
                next_id += 1;
                if twice {
                    sim.schedule_in(d, next_id);
                    next_id += 1;
                }
            }
        }
        // Exactly-once delivery of every id.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..next_id).collect::<Vec<_>>());
        prop_assert_eq!(sim.events_processed(), next_id as u64);
        prop_assert!(sim.peak_pending() as u64 <= sim.events_scheduled());
    }

    /// Drain-after-advance: advancing the clock past the drained prefix
    /// never reorders or loses the remaining events, and relative
    /// scheduling is anchored at the advanced clock.
    #[test]
    fn drain_then_advance_keeps_invariants(
        early in proptest::collection::vec(0u64..50, 1..16),
        late_gap in 1u64..100,
        late in proptest::collection::vec(0u64..50, 1..16),
    ) {
        let mut sim = Simulator::new();
        for (i, &d) in early.iter().enumerate() {
            sim.schedule_in(d, i);
        }
        // Drain everything, then advance into the gap beyond the last pop.
        while sim.pop().is_some() {}
        let drained_at = sim.now();
        let target = drained_at + late_gap;
        sim.advance_to(target);
        prop_assert_eq!(sim.now(), target);
        prop_assert_eq!(sim.events_processed(), early.len() as u64);
        prop_assert!(sim.is_empty());

        // advance_to backwards (or to now) is a no-op.
        sim.advance_to(Time::ZERO);
        sim.advance_to(target);
        prop_assert_eq!(sim.now(), target);

        // New relative schedules are anchored at the advanced clock and
        // drain in stable order.
        for (i, &d) in late.iter().enumerate() {
            sim.schedule_in(d, early.len() + i);
        }
        let mut popped = Vec::new();
        while let Some((t, id)) = sim.pop() {
            prop_assert!(t >= target, "event fired before the advanced clock");
            popped.push((t.cycles() - target.cycles(), id - early.len()));
        }
        let mut expected: Vec<(u64, usize)> = late
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        expected.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, expected);
    }

    /// The peak-pending waterline is exactly the maximum backlog over the
    /// run when all events are scheduled up front, and never decreases.
    #[test]
    fn peak_pending_matches_max_backlog(
        delays in proptest::collection::vec(0u64..8, 1..64),
    ) {
        let mut sim = Simulator::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule_in(d, i);
            prop_assert_eq!(sim.peak_pending(), i + 1);
        }
        let peak_before = sim.peak_pending();
        while sim.pop().is_some() {}
        prop_assert_eq!(sim.peak_pending(), peak_before);
        prop_assert_eq!(peak_before, delays.len());
    }
}
