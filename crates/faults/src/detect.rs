//! Quiescence-based deadlock detection for driven chaos runs.
//!
//! A fuzzed plan can wedge a run outright — suspend a lock holder
//! indefinitely and every queued waiter behind it waits forever. Without
//! detection that run burns its whole deadline (or, with no deadline, hangs
//! the process). The driver's detected mode instead watches a **progress
//! stamp** between polls and, once the run has been quiescent for a full
//! window with no injection still able to unwedge it, stops early with a
//! structured [`DeadlockReport`].
//!
//! Raw dispatched-event counts cannot serve as the stamp: scheduler quantum
//! ticks re-arm themselves whenever more threads are alive than cores, and
//! spin/backoff backends keep timers firing in a wedged run. The stamp is
//! therefore *lock-protocol* progress — grants plus trylock failures plus
//! finished threads — which a deadlocked run cannot advance.
//!
//! Declaring a deadlock additionally requires at least one **runnable**
//! pending waiter: a run whose only blocked threads are themselves suspended
//! is an injection-induced idle wedge, reported by the liveness oracle (the
//! suspension is the cause, not a lost grant), not as a deadlock.

use std::fmt::Write as _;

use locksim_machine::{Mach, ThreadId};

/// A structured verdict from the quiescence detector: the run stopped making
/// lock-protocol progress with runnable waiters still blocked and nothing
/// left in the plan that could unwedge them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle the detector declared the deadlock at.
    pub at: u64,
    /// Lock line of the first runnable blocked waiter (thread order).
    pub lock: u64,
    /// Number of runnable waiters pending when progress stopped.
    pub waiters: u32,
    /// Human-readable blocking-chain dump: each wedged lock with its
    /// runnable waiters and current holders (suspension noted).
    pub chain: String,
}

/// The driver's between-polls progress measure: lock-protocol completions
/// plus finished threads. Strictly monotone in a live run, frozen in a
/// wedged one.
pub(crate) fn progress_stamp(m: &Mach) -> (u64, u64) {
    let counters = m.metrics().counters();
    let finished = (0..m.n_threads())
        .filter(|&i| m.is_finished(ThreadId(i as u32)))
        .count() as u64;
    (
        counters.get("locks_granted") + counters.get("locks_failed"),
        finished,
    )
}

/// Whether every unfinished thread is suspended — the idle-wedge case where
/// nothing can ever happen again but no runnable waiter exists.
pub(crate) fn all_unfinished_suspended(m: &Mach) -> bool {
    (0..m.n_threads()).all(|i| {
        let t = ThreadId(i as u32);
        m.is_finished(t) || m.is_suspended(t)
    })
}

/// Snapshots the waiting graph at cycle `at`. Returns a report when at
/// least one runnable (non-suspended) waiter is blocked, `None` otherwise.
pub(crate) fn snapshot(m: &Mach, at: u64) -> Option<DeadlockReport> {
    let waiters = m.pending_waiters();
    let runnable: Vec<_> = waiters.iter().filter(|w| !w.suspended).collect();
    let first = runnable.first()?;

    // One chain line per wedged lock, in first-waiter order.
    let mut chain = String::new();
    let mut seen_locks = Vec::new();
    for w in &runnable {
        if seen_locks.contains(&w.lock) {
            continue;
        }
        seen_locks.push(w.lock);
        if !chain.is_empty() {
            chain.push('\n');
        }
        let _ = write!(chain, "lock {:#x}: waiters", w.lock.0);
        for v in runnable.iter().filter(|v| v.lock == w.lock) {
            let _ = write!(
                chain,
                " t{}({})",
                v.thread.0,
                if v.write { "W" } else { "R" }
            );
        }
        let holders = m.holders_of(w.lock);
        if holders.is_empty() {
            chain.push_str("; no holder (lost grant)");
        } else {
            chain.push_str("; held by");
            for h in holders {
                let _ = write!(chain, " t{}", h.0);
                if m.is_suspended(h) {
                    chain.push_str(" (suspended)");
                }
            }
        }
    }

    Some(DeadlockReport {
        at,
        lock: first.lock.0,
        waiters: runnable.len() as u32,
        chain,
    })
}
