//! The fault driver: steps a [`World`] in fixed polling increments and
//! applies a [`FaultPlan`]'s injections at exact cycles, so a faulted run
//! stays byte-reproducible under a fixed seed.

use std::collections::BTreeMap;

use locksim_machine::{BackendFault, RunExit, ThreadId, TraceEp, TraceEvent, TraceKind, World};

use crate::detect::{self, DeadlockReport};
use crate::plan::{FaultPlan, Inject, Trigger};

/// One injection the driver attempted, in application order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Applied {
    /// Cycle the injection was applied at.
    pub at: u64,
    /// The injection.
    pub inject: Inject,
    /// Whether the world/backend accepted it (an FLT eviction on a backend
    /// without an FLT, or a suspend of a finished thread, is declined).
    pub applied: bool,
}

/// Per-thread suspension intervals, recorded by the driver so the oracles
/// can exempt windows in which a thread could not possibly take a grant.
#[derive(Debug, Clone, Default)]
pub struct SuspensionWindows {
    /// thread → list of `(start, end)` windows; an open window has `end`
    /// `None` (suspended through the end of the run).
    per_thread: BTreeMap<u32, Vec<(u64, Option<u64>)>>,
}

impl SuspensionWindows {
    pub(crate) fn open(&mut self, thread: u32, at: u64) {
        self.per_thread.entry(thread).or_default().push((at, None));
    }

    pub(crate) fn close(&mut self, thread: u32, at: u64) {
        if let Some(ws) = self.per_thread.get_mut(&thread) {
            if let Some(w) = ws.last_mut() {
                if w.1.is_none() {
                    w.1 = Some(at);
                }
            }
        }
    }

    /// Whether `thread` was suspended at `cycle`.
    pub fn suspended_at(&self, thread: u32, cycle: u64) -> bool {
        self.per_thread.get(&thread).is_some_and(|ws| {
            ws.iter()
                .any(|&(s, e)| s <= cycle && e.is_none_or(|e| cycle < e))
        })
    }

    /// Cycles of `[from, to)` during which `thread` was suspended.
    pub fn overlap(&self, thread: u32, from: u64, to: u64) -> u64 {
        let Some(ws) = self.per_thread.get(&thread) else {
            return 0;
        };
        ws.iter()
            .map(|&(s, e)| {
                let e = e.unwrap_or(u64::MAX);
                e.min(to).saturating_sub(s.max(from))
            })
            .sum()
    }

    /// Threads with at least one recorded suspension window.
    pub fn threads(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_thread.keys().copied()
    }
}

/// What a driven run produced: how it ended, where the clock stopped, every
/// injection attempted, and the suspension windows for oracle exemption.
#[derive(Debug, Clone)]
pub struct DriveOutcome {
    /// How the run ended. [`RunExit::TimeLimit`] after the plan deadline
    /// means work was still outstanding — the liveness oracle decides
    /// whether that is a violation.
    pub exit: RunExit,
    /// Simulated cycle the drive stopped at.
    pub end_cycle: u64,
    /// Injections in application order.
    pub applied: Vec<Applied>,
    /// Recorded suspension windows.
    pub windows: SuspensionWindows,
    /// The quiescence detector's verdict, when [`FaultDriver::run_detected`]
    /// cut the run short. Always `None` from [`FaultDriver::run`].
    pub deadlock: Option<DeadlockReport>,
}

impl DriveOutcome {
    /// Number of injections the world/backend actually accepted.
    pub fn injections_applied(&self) -> u64 {
        self.applied.iter().filter(|a| a.applied).count() as u64
    }
}

/// Drives one [`World`] through a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultDriver {
    plan: FaultPlan,
    fired: Vec<bool>,
    /// Scheduled auto-resumes, keyed by due cycle then arming order.
    auto_resumes: BTreeMap<(u64, u64), u32>,
    auto_seq: u64,
}

impl FaultDriver {
    /// Prepares a driver for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let fired = vec![false; plan.events.len()];
        FaultDriver {
            plan,
            fired,
            auto_resumes: BTreeMap::new(),
            auto_seq: 0,
        }
    }

    /// Runs `w` until every thread finishes or the plan deadline passes,
    /// polling every `plan.poll` cycles to apply due injections.
    pub fn run(&mut self, w: &mut World) -> DriveOutcome {
        self.drive(w, 0)
    }

    /// Like [`FaultDriver::run`], but with the quiescence deadlock detector
    /// armed: if lock-protocol progress stalls for `quiesce_cycles` with no
    /// injection still able to unwedge the run, the drive stops early —
    /// with a [`DeadlockReport`] in the outcome when runnable waiters are
    /// blocked, or silently for an injection-induced idle wedge (every
    /// unfinished thread suspended forever; the liveness oracle judges
    /// that). `quiesce_cycles` of 0 disables detection.
    pub fn run_detected(&mut self, w: &mut World, quiesce_cycles: u64) -> DriveOutcome {
        self.drive(w, quiesce_cycles)
    }

    fn drive(&mut self, w: &mut World, quiesce: u64) -> DriveOutcome {
        let _prof = locksim_trace::prof::span("faults/drive");
        let mut out = DriveOutcome {
            exit: RunExit::TimeLimit,
            end_cycle: 0,
            applied: Vec::new(),
            windows: SuspensionWindows::default(),
            deadlock: None,
        };
        let poll = self.plan.poll.max(1);
        let mut c = 0u64;
        // Apply cycle-0 injections (wire faults, initial pressure) before
        // the first event fires.
        self.apply_due(w, 0, &mut out);
        // Injection activity (the applied-record count) is part of the
        // progress stamp: an auto-resume landing in the same poll as the
        // quiescence check must reset the clock, or the just-resumed thread
        // gets flagged before it has run a single cycle.
        let mut stamp = (detect::progress_stamp(w.mach_ref()), out.applied.len());
        let mut stamp_cycle = 0u64;
        while c < self.plan.deadline {
            c = (c + poll).min(self.plan.deadline);
            out.exit = w.run_until_cycle(c);
            if out.exit == RunExit::AllFinished {
                break;
            }
            self.apply_due(w, c, &mut out);
            if quiesce == 0 {
                continue;
            }
            let now_stamp = (detect::progress_stamp(w.mach_ref()), out.applied.len());
            if now_stamp != stamp {
                stamp = now_stamp;
                stamp_cycle = c;
                continue;
            }
            if c - stamp_cycle < quiesce || self.injections_pending(c) {
                continue;
            }
            if let Some(report) = detect::snapshot(w.mach_ref(), c) {
                let (lock, waiters) = (report.lock, report.waiters);
                w.mach().metrics_mut().incr("deadlocks_detected");
                w.mach().lockstat_mut().bump(lock, "deadlock");
                w.mach().trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Global,
                    kind: TraceKind::Deadlock { lock, waiters },
                });
                out.deadlock = Some(report);
                break;
            }
            if detect::all_unfinished_suspended(w.mach_ref()) {
                // Nothing can ever run again; stop burning the deadline.
                break;
            }
        }
        out.end_cycle = w.mach().now().cycles();
        out
    }

    /// Whether any injection might still fire at a cycle past `c`: a
    /// scheduled auto-resume, an unfired event whose trigger window has not
    /// opened, or an unfired explicit resume (which could unwedge the run
    /// whenever its condition is met).
    fn injections_pending(&self, c: u64) -> bool {
        !self.auto_resumes.is_empty()
            || self
                .plan
                .events
                .iter()
                .zip(&self.fired)
                .any(|(ev, &fired)| {
                    !fired
                        && (matches!(ev.inject, Inject::Resume { .. })
                            || match ev.trigger {
                                Trigger::AtCycle(at) => at > c,
                                Trigger::WhenWaiting { after, .. }
                                | Trigger::WhenHolding { after, .. } => after > c,
                            })
                })
    }

    /// Applies auto-resumes and plan events due at polling cycle `c`.
    fn apply_due(&mut self, w: &mut World, c: u64, out: &mut DriveOutcome) {
        let _prof = locksim_trace::prof::span("faults/apply_due");
        let due: Vec<_> = self
            .auto_resumes
            .range(..=(c, u64::MAX))
            .map(|(&k, &t)| (k, t))
            .collect();
        for (k, thread) in due {
            self.auto_resumes.remove(&k);
            self.apply(w, c, Inject::Resume { thread }, out);
        }
        for i in 0..self.plan.events.len() {
            if self.fired[i] {
                continue;
            }
            let ev = self.plan.events[i];
            let due = match ev.trigger {
                Trigger::AtCycle(at) => at <= c,
                Trigger::WhenWaiting { thread, after } => {
                    after <= c
                        && (thread as usize) < w.mach().n_threads()
                        && w.mach().waiting_on(ThreadId(thread)).is_some()
                }
                Trigger::WhenHolding { thread, after } => {
                    after <= c
                        && (thread as usize) < w.mach().n_threads()
                        && w.mach().holding_count(ThreadId(thread)) > 0
                }
            };
            if due {
                self.fired[i] = true;
                self.apply(w, c, ev.inject, out);
            }
        }
    }

    fn apply(&mut self, w: &mut World, c: u64, inject: Inject, out: &mut DriveOutcome) {
        let thread_ok = |w: &mut World, t: u32| (t as usize) < w.mach().n_threads();
        let applied = match inject {
            Inject::Suspend { thread, duration } => {
                let ok = thread_ok(w, thread) && w.suspend(ThreadId(thread));
                if ok {
                    out.windows.open(thread, c);
                    if let Some(d) = duration {
                        self.auto_resumes.insert((c + d, self.auto_seq), thread);
                        self.auto_seq += 1;
                    }
                }
                ok
            }
            Inject::Resume { thread } => {
                let ok = thread_ok(w, thread) && w.resume_thread(ThreadId(thread));
                if ok {
                    out.windows.close(thread, c);
                }
                ok
            }
            Inject::Migrate { thread, to_core } => {
                thread_ok(w, thread)
                    && (to_core as usize) < w.mach().n_cores()
                    && w.force_migrate(ThreadId(thread), to_core as usize)
            }
            Inject::FltEvict { core } => {
                (core as usize) < w.mach().n_cores()
                    && w.inject_backend_fault(BackendFault::FltEvict {
                        core: core as usize,
                    })
            }
            Inject::WireDelay { period, extra } => {
                w.mach().set_wire_fault(period, extra);
                true
            }
            Inject::WireClear => {
                w.mach().clear_wire_fault();
                true
            }
        };
        if applied {
            w.mach().metrics_mut().incr("fault_injections");
            // Mark the injection on the time-series so dashboard timelines
            // can correlate tail spikes with the fault that caused them.
            w.mach().series_mark(match inject {
                Inject::Suspend { .. } => "fault/suspend",
                Inject::Resume { .. } => "fault/resume",
                Inject::Migrate { .. } => "fault/migrate",
                Inject::FltEvict { .. } => "fault/flt_evict",
                Inject::WireDelay { .. } => "fault/wire_delay",
                Inject::WireClear => "fault/wire_clear",
            });
            let (thread, arg) = inject_trace_fields(inject);
            let label = inject.label();
            w.mach().trace(|now| TraceEvent {
                t: now,
                ep: TraceEp::Global,
                kind: TraceKind::FaultInject {
                    fault: label,
                    thread,
                    arg,
                },
            });
        }
        out.applied.push(Applied {
            at: c,
            inject,
            applied,
        });
    }
}

/// Flattens an injection into the `(thread, arg)` fields of a
/// [`TraceKind::FaultInject`] record.
fn inject_trace_fields(inject: Inject) -> (u32, u64) {
    match inject {
        Inject::Suspend { thread, duration } => (thread, duration.unwrap_or(0)),
        Inject::Resume { thread } => (thread, 0),
        Inject::Migrate { thread, to_core } => (thread, u64::from(to_core)),
        Inject::FltEvict { core } => (u32::MAX, u64::from(core)),
        Inject::WireDelay { period, extra } => (u32::MAX, period.saturating_mul(1 << 32) | extra),
        Inject::WireClear => (u32::MAX, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_overlap_and_membership() {
        let mut ws = SuspensionWindows::default();
        ws.open(1, 100);
        ws.close(1, 300);
        ws.open(1, 500);
        assert!(ws.suspended_at(1, 100));
        assert!(ws.suspended_at(1, 299));
        assert!(!ws.suspended_at(1, 300));
        assert!(!ws.suspended_at(1, 400));
        assert!(ws.suspended_at(1, 10_000), "open window never ends");
        assert!(!ws.suspended_at(2, 100));
        assert_eq!(ws.overlap(1, 0, 1_000), 200 + 500);
        assert_eq!(ws.overlap(1, 200, 250), 50);
        assert_eq!(ws.overlap(1, 300, 500), 0);
        assert_eq!(ws.overlap(2, 0, 1_000), 0);
    }

    #[test]
    fn trace_fields_pack_by_fault_class() {
        assert_eq!(
            inject_trace_fields(Inject::Suspend {
                thread: 3,
                duration: Some(77),
            }),
            (3, 77)
        );
        assert_eq!(
            inject_trace_fields(Inject::Migrate {
                thread: 2,
                to_core: 5,
            }),
            (2, 5)
        );
        assert_eq!(
            inject_trace_fields(Inject::FltEvict { core: 4 }),
            (u32::MAX, 4)
        );
    }
}
