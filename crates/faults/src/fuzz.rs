//! Seeded fault-plan fuzzer: random but *valid* chaos cases.
//!
//! [`generate`] maps `(seed, config)` to a [`ChaosCase`] — a workload shape
//! plus a [`FaultPlan`] — deterministically. Two RNG disciplines make the
//! corpus durable:
//!
//! * **Split streams.** The master stream is forked once per concern
//!   ([`RngStream::split`]): plan generation draws from one child, workload
//!   perturbation from another. Adding a draw to the plan generator can
//!   never shift the workload a seed produces (and vice versa), so corpus
//!   seed lines keep reproducing the same case across generator tweaks that
//!   only extend one side.
//! * **Generation invariants.** Every generated plan satisfies
//!   [`FaultPlan::validate`] by construction: thread/core ids are drawn
//!   below the case's own counts, `wire-delay` periods are ≥ 1, a `resume`
//!   is only emitted for a thread with a preceding *indefinite* suspend
//!   (and, for exact-cycle pairs, never earlier than it), and every exact
//!   trigger fires before the deadline, and workloads are compatible with
//!   their backend (writer-only locks never see read-mode acquires). The
//!   fuzzer explores schedules, not the parser's error paths — those have
//!   their own tests.

use crate::plan::{FaultPlan, Inject, Trigger};
use locksim_engine::RngStream;

/// Stream id under which all chaos randomness lives, so chaos draws are
/// decorrelated from the simulation's own per-thread streams even when the
/// same master seed is reused as a world seed.
pub const CHAOS_STREAM: u64 = 0xC4A05;

/// Tag of the plan-generation child stream.
const PLAN_SPLIT: u64 = 0;
/// Tag of the workload-perturbation child stream.
const WORKLOAD_SPLIT: u64 = 1;

/// Knobs bounding what the fuzzer may generate.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// Backend labels to draw from (harness labels: "lcu", "mcs", ...).
    pub backends: Vec<&'static str>,
    /// Inclusive thread-count range.
    pub threads: (u32, u32),
    /// Machine core count the plans must stay within.
    pub n_cores: u32,
    /// Inclusive per-run total-iteration range (split across threads).
    pub iters: (u32, u32),
    /// Maximum number of fault events per plan (at least 1 is generated).
    pub max_events: usize,
    /// Hard run deadline for generated plans, in cycles.
    pub deadline: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            backends: vec!["lcu", "lcu+flt", "ssb", "mcs", "mrsw", "bravo", "fissile"],
            threads: (2, 6),
            n_cores: 4,
            iters: (60, 240),
            max_events: 6,
            deadline: 2_000_000,
        }
    }
}

/// The workload shape a chaos case runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosWorkload {
    /// Thread count.
    pub threads: u32,
    /// Total iterations shared across threads.
    pub iters: u32,
    /// Extra compute cycles inside each critical section.
    pub cs_compute: u64,
    /// Percentage of acquisitions in write mode.
    pub write_pct: u32,
    /// Whether to shrink the directory lock-reservation table to 2 entries
    /// (forces LRT eviction/retry paths under multi-lock pressure).
    pub lrt_pressure: bool,
}

/// One fully-specified chaos run: backend, workload, seed and fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCase {
    /// The fuzz seed that produced (and reproduces) this case.
    pub seed: u64,
    /// Harness backend label.
    pub backend: &'static str,
    /// Workload shape.
    pub workload: ChaosWorkload,
    /// The generated fault plan.
    pub plan: FaultPlan,
}

/// Deterministically generates the chaos case for `seed` under `cfg`.
pub fn generate(seed: u64, cfg: &FuzzConfig) -> ChaosCase {
    let mut root = RngStream::new(seed, CHAOS_STREAM);
    let mut plan_rng = root.split(PLAN_SPLIT);
    let mut wl_rng = root.split(WORKLOAD_SPLIT);

    let backend = cfg.backends[wl_rng.below(cfg.backends.len() as u64) as usize];
    let mut workload = gen_workload(&mut wl_rng, cfg);
    if backend == "mcs" {
        // MCS is a writer-only queue lock; read-mode acquires assert. Clamp
        // rather than redraw so the draw count per seed stays fixed.
        workload.write_pct = 100;
    }
    let plan = gen_plan(&mut plan_rng, cfg, workload.threads);

    debug_assert_eq!(plan.validate(workload.threads, cfg.n_cores), Ok(()));
    ChaosCase {
        seed,
        backend,
        workload,
        plan,
    }
}

fn gen_workload(rng: &mut RngStream, cfg: &FuzzConfig) -> ChaosWorkload {
    let (t_lo, t_hi) = cfg.threads;
    let (i_lo, i_hi) = cfg.iters;
    ChaosWorkload {
        threads: rng.range(t_lo as u64, t_hi as u64 + 1) as u32,
        iters: rng.range(i_lo as u64, i_hi as u64 + 1) as u32,
        cs_compute: *pick(rng, &[0, 50, 200, 800]),
        write_pct: *pick(rng, &[0, 10, 50, 100]),
        lrt_pressure: rng.chance(0.25),
    }
}

fn gen_plan(rng: &mut RngStream, cfg: &FuzzConfig, n_threads: u32) -> FaultPlan {
    let deadline = cfg.deadline;
    let mut plan = FaultPlan::new()
        .horizon(rng.range(30_000, 120_001))
        .fairness_k(rng.range(2, 17))
        .poll(rng.range(200, 1_001))
        .deadline(deadline);

    let n_events = rng.range(1, cfg.max_events as u64 + 1) as usize;
    // Threads with a preceding indefinite suspend and the exact cycle it
    // fires at (None for conditional triggers): the only legal resume
    // targets, per the validation rules.
    let mut resumable: Vec<(u32, Option<u64>)> = Vec::new();
    // Exact triggers stay in the first three quarters of the run so the
    // injection has room to matter before the deadline cuts it off.
    let trigger_cap = deadline * 3 / 4;
    let mut wire_installed = false;

    for _ in 0..n_events {
        // Weighted kind choice; resume/wire-clear only when armed.
        let kind = loop {
            match rng.below(10) {
                0..=2 => break "suspend",
                3 => {
                    if !resumable.is_empty() {
                        break "resume";
                    }
                }
                4..=5 => break "migrate",
                6 => break "flt-evict",
                7..=8 => break "wire-delay",
                _ => {
                    if wire_installed {
                        break "wire-clear";
                    }
                }
            }
        };
        let thread = rng.below(n_threads as u64) as u32;
        let trigger = |rng: &mut RngStream, thread: u32| match rng.below(4) {
            0 => Trigger::WhenWaiting {
                thread,
                after: rng.below(deadline / 4),
            },
            1 => Trigger::WhenHolding {
                thread,
                after: rng.below(deadline / 4),
            },
            _ => Trigger::AtCycle(rng.below(trigger_cap)),
        };
        let ev = match kind {
            "suspend" => {
                let trig = trigger(rng, thread);
                let duration = if rng.chance(0.3) {
                    // Indefinite: arms a later resume (or a wedge, if none
                    // follows and the queue depends on this thread).
                    resumable.push((
                        thread,
                        match trig {
                            Trigger::AtCycle(c) => Some(c),
                            _ => None,
                        },
                    ));
                    None
                } else {
                    Some(rng.range(10_000, 200_001))
                };
                (trig, Inject::Suspend { thread, duration })
            }
            "resume" => {
                let (t, susp_at) = resumable[rng.below(resumable.len() as u64) as usize];
                // Never earlier than an exact-cycle suspend partner.
                let lo = susp_at.unwrap_or(0);
                let at = lo + rng.below(trigger_cap.saturating_sub(lo).max(1));
                (Trigger::AtCycle(at), Inject::Resume { thread: t })
            }
            "migrate" => (
                trigger(rng, thread),
                Inject::Migrate {
                    thread,
                    to_core: rng.below(cfg.n_cores as u64) as u32,
                },
            ),
            "flt-evict" => (
                Trigger::AtCycle(rng.below(trigger_cap)),
                Inject::FltEvict {
                    core: rng.below(cfg.n_cores as u64) as u32,
                },
            ),
            "wire-delay" => {
                wire_installed = true;
                (
                    Trigger::AtCycle(rng.below(trigger_cap / 2)),
                    Inject::WireDelay {
                        period: rng.range(2, 9),
                        extra: rng.range(100, 1_001),
                    },
                )
            }
            _ => (Trigger::AtCycle(rng.below(trigger_cap)), Inject::WireClear),
        };
        plan = plan.event(ev.0, ev.1);
    }
    plan
}

fn pick<'a, T>(rng: &mut RngStream, choices: &'a [T]) -> &'a T {
    &choices[rng.below(choices.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FuzzConfig::default();
        assert_eq!(generate(42, &cfg), generate(42, &cfg));
        assert_ne!(generate(42, &cfg), generate(43, &cfg));
    }

    #[test]
    fn generated_plans_always_validate() {
        let cfg = FuzzConfig::default();
        for seed in 0..512 {
            let case = generate(seed, &cfg);
            assert!(
                (cfg.threads.0..=cfg.threads.1).contains(&case.workload.threads),
                "seed {seed}"
            );
            assert!(!case.plan.events.is_empty(), "seed {seed}");
            assert!(case.plan.events.len() <= cfg.max_events, "seed {seed}");
            case.plan
                .validate(case.workload.threads, cfg.n_cores)
                .unwrap_or_else(|e| panic!("seed {seed}: generated invalid plan: {e}"));
            if case.backend == "mcs" {
                assert_eq!(case.workload.write_pct, 100, "seed {seed}: mcs reads");
            }
        }
    }

    #[test]
    fn plan_stream_is_isolated_from_workload_stream() {
        // A config change that only alters workload bounds must leave the
        // generated *plan* untouched for the same seed (split streams).
        let a = FuzzConfig::default();
        let b = FuzzConfig {
            iters: (500, 900),
            ..FuzzConfig::default()
        };
        for seed in 0..64 {
            let ca = generate(seed, &a);
            let cb = generate(seed, &b);
            assert_eq!(ca.plan, cb.plan, "seed {seed}: plan shifted");
            // Thread counts share bounds, so plans target valid ids in both.
            assert_eq!(ca.workload.threads, cb.workload.threads);
        }
    }

    #[test]
    fn fuzzer_reaches_every_event_kind() {
        let cfg = FuzzConfig::default();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..512 {
            for ev in &generate(seed, &cfg).plan.events {
                seen.insert(ev.inject.label());
            }
        }
        for kind in [
            "suspend",
            "resume",
            "migrate",
            "flt_evict",
            "wire_delay",
            "wire_clear",
        ] {
            assert!(seen.contains(kind), "fuzzer never generated {kind}");
        }
    }
}
