//! # locksim-faults — deterministic fault injection & adversarial schedules
//!
//! The MICRO 2010 Lock Control Unit's central robustness claim is that a
//! hardware lock queue survives the schedules that break software queue
//! locks: a queued MCS waiter that gets descheduled stalls every successor,
//! while the LCU detects the unscheduled requester, passes the grant
//! through, and reissues the request when the thread lands on a new core.
//! This crate turns that claim into a checkable experiment:
//!
//! * [`plan`] — [`FaultPlan`]: a scenario model (programmatic builder plus
//!   a line-oriented text format) describing *what* to inject and *when* —
//!   thread suspension/resumption, forced cross-core migration, FLT entry
//!   eviction, deterministic wire delay — at absolute cycles or when a
//!   thread enters a waiting/holding protocol state.
//! * [`driver`] — [`FaultDriver`]: steps a [`World`] in fixed polling
//!   increments via `run_until_cycle`, applying due injections at exact
//!   cycles so a faulted run is byte-reproducible under a fixed seed, and
//!   recording per-thread suspension windows for the oracles.
//! * [`oracle`] — post-hoc liveness / fairness / exclusion checkers over
//!   the structured trace ring, exempting injected suspension windows, and
//!   reporting violations back through the trace ring and lockstat.
//! * [`report`] — the backend × fault-class matrix with verdicts, rendered
//!   as deterministic CSV and self-contained HTML.
//!
//! The `faultsim` harness binary drives the full matrix.
//!
//! [`World`]: locksim_machine::World

#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod plan;
pub mod report;

pub use driver::{Applied, DriveOutcome, FaultDriver, SuspensionWindows};
pub use oracle::{check_exclusion, check_fairness, check_liveness, check_world, Violation};
pub use plan::{FaultEvent, FaultPlan, Inject, Trigger};
pub use report::{csv, html, MatrixCell};
