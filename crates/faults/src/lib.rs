//! # locksim-faults — deterministic fault injection & adversarial schedules
//!
//! The MICRO 2010 Lock Control Unit's central robustness claim is that a
//! hardware lock queue survives the schedules that break software queue
//! locks: a queued MCS waiter that gets descheduled stalls every successor,
//! while the LCU detects the unscheduled requester, passes the grant
//! through, and reissues the request when the thread lands on a new core.
//! This crate turns that claim into a checkable experiment:
//!
//! * [`plan`] — [`FaultPlan`]: a scenario model (programmatic builder plus
//!   a line-oriented text format) describing *what* to inject and *when* —
//!   thread suspension/resumption, forced cross-core migration, FLT entry
//!   eviction, deterministic wire delay — at absolute cycles or when a
//!   thread enters a waiting/holding protocol state.
//! * [`driver`] — [`FaultDriver`]: steps a [`World`] in fixed polling
//!   increments via `run_until_cycle`, applying due injections at exact
//!   cycles so a faulted run is byte-reproducible under a fixed seed, and
//!   recording per-thread suspension windows for the oracles.
//! * [`oracle`] — post-hoc liveness / fairness / exclusion checkers over
//!   the structured trace ring, exempting injected suspension windows, and
//!   reporting violations back through the trace ring and lockstat.
//! * [`report`] — the backend × fault-class matrix with verdicts, rendered
//!   as deterministic CSV and self-contained HTML.
//!
//! On top of the injection machinery sits the **chaos engine**:
//!
//! * [`fuzz`] — a seeded generator of random but valid chaos cases
//!   (workload shape + fault plan), with split RNG streams so plan
//!   generation and workload perturbation never perturb each other;
//! * [`detect`] — quiescence-based deadlock detection: a driven run whose
//!   lock-protocol progress freezes with runnable waiters blocked and no
//!   injection left to unwedge it ends in a structured [`DeadlockReport`]
//!   (with a blocking-chain dump) instead of burning its deadline;
//! * [`shrink`] — a delta-debugging shrinker reducing a violating plan to
//!   a locally-minimal one (no removable event, no halvable parameter);
//! * [`scenario`] — the self-contained replay format (backend + seed +
//!   workload + plan + expected verdict) the `tests/corpus/` suite stores.
//!
//! The `faultsim` harness binary drives the full matrix; `chaossim` runs
//! the fuzz/soak/shrink loop.
//!
//! [`World`]: locksim_machine::World

#![warn(missing_docs)]

pub mod detect;
pub mod driver;
pub mod fuzz;
pub mod oracle;
pub mod plan;
pub mod report;
pub mod scenario;
pub mod shrink;

pub use detect::DeadlockReport;
pub use driver::{Applied, DriveOutcome, FaultDriver, SuspensionWindows};
pub use fuzz::{generate, ChaosCase, ChaosWorkload, FuzzConfig};
pub use oracle::{check_exclusion, check_fairness, check_liveness, check_world, Violation};
pub use plan::{FaultEvent, FaultPlan, Inject, PlanError, Trigger};
pub use report::{chaos_csv, chaos_html, csv, html, ChaosRow, MatrixCell};
pub use scenario::ChaosScenario;
pub use shrink::{shrink, ShrinkResult};
