//! Post-hoc liveness / fairness / exclusion oracles.
//!
//! The oracles replay the structured trace ring after a driven run and check
//! three properties:
//!
//! * **liveness** — every lock request is granted (or resolved as a trylock
//!   failure) within the plan's horizon of *effective* wait, where cycles the
//!   waiter spent suspended by fault injection are exempt;
//! * **fairness** — no waiter is overtaken by more than `fairness_k`
//!   later-requesting grants while runnable (overtaking a *suspended* waiter
//!   is by design — the LCU passes grants through a descheduled thread);
//! * **exclusion** — no grant interleaving ever puts two writers, or a
//!   writer and a reader, inside the same lock at once.
//!
//! Checkers are pure functions over an event slice so they can be unit
//! tested on synthetic histories; [`check_world`] wires them to a live
//! [`World`] and writes violations back as [`TraceKind::OracleViolation`]
//! records plus per-lock `oracle_violation` lockstat bumps.

use std::collections::BTreeMap;

use locksim_machine::{TraceEp, TraceEvent, TraceKind, World};

use crate::driver::SuspensionWindows;
use crate::plan::FaultPlan;

/// One oracle violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired: "liveness", "fairness", or "exclusion".
    pub oracle: &'static str,
    /// Lock line address the violation concerns.
    pub lock: u64,
    /// The wronged thread.
    pub thread: u32,
    /// Magnitude: effective cycles waited (liveness), overtake count
    /// (fairness), or the conflicting thread (exclusion).
    pub value: u64,
    /// Cycle the violation was established at.
    pub at: u64,
}

/// Checks that every request resolves within `horizon` effective wait
/// cycles. A request still pending when the run ended at `end_cycle` is
/// charged the wait up to that point.
pub fn check_liveness(
    events: &[TraceEvent],
    horizon: u64,
    windows: &SuspensionWindows,
    end_cycle: u64,
) -> Vec<Violation> {
    let mut pending: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let now = e.t.cycles();
        match e.kind {
            TraceKind::LockRequest { lock, thread, .. } => {
                pending.entry((lock, thread)).or_insert(now);
            }
            TraceKind::LockGrant { lock, thread, .. } => {
                if let Some(req) = pending.remove(&(lock, thread)) {
                    let eff = (now - req).saturating_sub(windows.overlap(thread, req, now));
                    if eff > horizon {
                        out.push(Violation {
                            oracle: "liveness",
                            lock,
                            thread,
                            value: eff,
                            at: now,
                        });
                    }
                }
            }
            TraceKind::LockFail { lock, thread } => {
                // A resolved trylock is not a liveness failure.
                pending.remove(&(lock, thread));
            }
            _ => {}
        }
    }
    for (&(lock, thread), &req) in &pending {
        let eff = end_cycle
            .saturating_sub(req)
            .saturating_sub(windows.overlap(thread, req, end_cycle));
        if eff > horizon {
            out.push(Violation {
                oracle: "liveness",
                lock,
                thread,
                value: eff,
                at: end_cycle,
            });
        }
    }
    out
}

/// Checks that no runnable waiter is overtaken more than `k` times: each
/// grant to a thread that requested *later* than a still-pending waiter
/// counts one overtake against that waiter. Two classes of overtake are
/// exempt because no protocol could have granted the waiter instead:
///
/// * the waiter was suspended by fault injection, or off-core (preempted
///   or mid-migration — a context switch costs cycles, and grants pass
///   through an absent requester by design);
/// * the waiter migrated cores mid-queue, which re-baselines it at the
///   migration cycle — the LCU deliberately reissues a migrated request
///   at the queue tail, so overtakes of its *old* position are expected.
///
/// A violation is reported once, when a waiter's count first exceeds `k`.
pub fn check_fairness(
    events: &[TraceEvent],
    k: u64,
    windows: &SuspensionWindows,
) -> Vec<Violation> {
    // lock → waiter thread → (request cycle, overtakes so far)
    let mut waiting: BTreeMap<u64, BTreeMap<u32, (u64, u64)>> = BTreeMap::new();
    // thread → currently installed on a core (unknown threads count as on).
    let mut off_core: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for e in events {
        let now = e.t.cycles();
        match e.kind {
            TraceKind::LockRequest { lock, thread, .. } => {
                waiting
                    .entry(lock)
                    .or_default()
                    .entry(thread)
                    .or_insert((now, 0));
            }
            TraceKind::LockGrant { lock, thread, .. } => {
                let Some(ws) = waiting.get_mut(&lock) else {
                    continue;
                };
                let Some((granted_req, _)) = ws.remove(&thread) else {
                    continue;
                };
                for (&other, (other_req, overtakes)) in ws.iter_mut() {
                    if *other_req < granted_req
                        && !windows.suspended_at(other, now)
                        && !off_core.contains(&other)
                    {
                        *overtakes += 1;
                        if *overtakes == k + 1 {
                            out.push(Violation {
                                oracle: "fairness",
                                lock,
                                thread: other,
                                value: *overtakes,
                                at: now,
                            });
                        }
                    }
                }
            }
            TraceKind::LockFail { lock, thread } => {
                if let Some(ws) = waiting.get_mut(&lock) {
                    ws.remove(&thread);
                }
            }
            TraceKind::SchedRun { thread, .. } => {
                off_core.remove(&thread);
            }
            TraceKind::SchedPreempt { thread, .. } => {
                off_core.insert(thread);
            }
            TraceKind::SchedMigrate { thread, .. } => {
                off_core.insert(thread);
                for ws in waiting.values_mut() {
                    if let Some(slot) = ws.get_mut(&thread) {
                        *slot = (now, 0);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Checks reader/writer exclusion over the grant/release history: a write
/// grant while any holder exists, or a read grant while a writer holds, is
/// a violation naming the conflicting holder in `value`.
pub fn check_exclusion(events: &[TraceEvent]) -> Vec<Violation> {
    // lock → holder thread → write?
    let mut holders: BTreeMap<u64, BTreeMap<u32, bool>> = BTreeMap::new();
    let mut out = Vec::new();
    for e in events {
        let now = e.t.cycles();
        match e.kind {
            TraceKind::LockGrant {
                lock,
                thread,
                write,
                ..
            } => {
                let hs = holders.entry(lock).or_default();
                let conflict = hs
                    .iter()
                    .find(|&(&h, &hw)| h != thread && (write || hw))
                    .map(|(&h, _)| h);
                if let Some(h) = conflict {
                    out.push(Violation {
                        oracle: "exclusion",
                        lock,
                        thread,
                        value: u64::from(h),
                        at: now,
                    });
                }
                hs.insert(thread, write);
            }
            TraceKind::LockRelease { lock, thread, .. } => {
                if let Some(hs) = holders.get_mut(&lock) {
                    hs.remove(&thread);
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs every oracle against `w`'s trace ring, records each violation back
/// into the ring as an [`TraceKind::OracleViolation`] (plus a per-lock
/// `oracle_violation` lockstat bump and the machine-wide `oracle_violations`
/// counter), and returns them.
pub fn check_world(
    w: &mut World,
    plan: &FaultPlan,
    windows: &SuspensionWindows,
    end_cycle: u64,
) -> Vec<Violation> {
    let events: Vec<TraceEvent> = w.mach().tracer().events().copied().collect();
    let mut violations = check_exclusion(&events);
    violations.extend(check_liveness(&events, plan.horizon, windows, end_cycle));
    violations.extend(check_fairness(&events, plan.fairness_k, windows));
    let m = w.mach();
    for v in &violations {
        m.metrics_mut().incr("oracle_violations");
        m.lockstat_mut().bump(v.lock, "oracle_violation");
        let v = *v;
        m.trace(|now| TraceEvent {
            t: now,
            ep: TraceEp::Thread(v.thread),
            kind: TraceKind::OracleViolation {
                oracle: v.oracle,
                lock: v.lock,
                thread: v.thread,
                value: v.value,
            },
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use locksim_engine::Time;

    fn ev(at: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            t: Time::from_cycles(at),
            ep: TraceEp::Global,
            kind,
        }
    }

    fn req(at: u64, lock: u64, thread: u32) -> TraceEvent {
        ev(
            at,
            TraceKind::LockRequest {
                lock,
                thread,
                write: true,
            },
        )
    }

    fn grant(at: u64, lock: u64, thread: u32, write: bool) -> TraceEvent {
        ev(
            at,
            TraceKind::LockGrant {
                lock,
                thread,
                write,
                wait: 0,
            },
        )
    }

    fn release(at: u64, lock: u64, thread: u32) -> TraceEvent {
        ev(
            at,
            TraceKind::LockRelease {
                lock,
                thread,
                write: true,
            },
        )
    }

    #[test]
    fn liveness_flags_slow_grant_and_pending_request() {
        let events = vec![
            req(0, 0x40, 1),
            grant(5_000, 0x40, 1, true),
            req(100, 0x40, 2),
        ];
        let ws = SuspensionWindows::default();
        let v = check_liveness(&events, 1_000, &ws, 9_000);
        assert_eq!(v.len(), 2);
        assert_eq!((v[0].thread, v[0].value, v[0].at), (1, 5_000, 5_000));
        assert_eq!((v[1].thread, v[1].value, v[1].at), (2, 8_900, 9_000));
    }

    #[test]
    fn liveness_exempts_suspension_windows() {
        let mut ws = SuspensionWindows::default();
        // Thread 1 suspended for 4 800 of its 5 000-cycle wait.
        ws.open(1, 100);
        ws.close(1, 4_900);
        let events = vec![req(0, 0x40, 1), grant(5_000, 0x40, 1, true)];
        assert!(check_liveness(&events, 1_000, &ws, 5_000).is_empty());
        // Without the exemption the same history violates.
        let none = SuspensionWindows::default();
        assert_eq!(check_liveness(&events, 1_000, &none, 5_000).len(), 1);
    }

    #[test]
    fn liveness_ignores_resolved_trylock() {
        let events = vec![
            req(0, 0x40, 1),
            ev(
                50,
                TraceKind::LockFail {
                    lock: 0x40,
                    thread: 1,
                },
            ),
        ];
        let ws = SuspensionWindows::default();
        assert!(check_liveness(&events, 1_000, &ws, 100_000).is_empty());
    }

    #[test]
    fn fairness_flags_waiter_overtaken_past_k() {
        // Thread 9 requests first, then threads 1..=3 each request later and
        // get granted twice; 6 overtakes > k=5 → one violation at the 6th.
        let mut events = vec![req(0, 0x40, 9)];
        let mut at = 10;
        for round in 0..2 {
            for t in 1..=3u32 {
                events.push(req(at, 0x40, t));
                events.push(grant(at + 1, 0x40, t, true));
                events.push(release(at + 2, 0x40, t));
                at += 10;
                let _ = round;
            }
        }
        let ws = SuspensionWindows::default();
        let v = check_fairness(&events, 5, &ws);
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].oracle, v[0].thread, v[0].value), ("fairness", 9, 6));
        // k=8 tolerates the same history.
        assert!(check_fairness(&events, 8, &ws).is_empty());
    }

    #[test]
    fn fairness_exempts_suspended_waiter() {
        let mut events = vec![req(0, 0x40, 9)];
        let mut at = 10;
        for t in 1..=6u32 {
            events.push(req(at, 0x40, t));
            events.push(grant(at + 1, 0x40, t, true));
            events.push(release(at + 2, 0x40, t));
            at += 10;
        }
        let mut ws = SuspensionWindows::default();
        ws.open(9, 5);
        assert!(
            check_fairness(&events, 2, &ws).is_empty(),
            "overtaking a suspended waiter is not a fairness violation"
        );
        let none = SuspensionWindows::default();
        assert_eq!(check_fairness(&events, 2, &none).len(), 1);
    }

    #[test]
    fn fairness_rebaselines_migrated_waiter() {
        // Thread 9 waits, migrates mid-queue (reissuing at the tail), then
        // is overtaken twice more: only post-migration overtakes count.
        let mut events = vec![req(0, 0x40, 9)];
        let mut at = 10;
        for t in 1..=4u32 {
            events.push(req(at, 0x40, t));
            events.push(grant(at + 1, 0x40, t, true));
            events.push(release(at + 2, 0x40, t));
            at += 10;
        }
        events.push(ev(
            at,
            TraceKind::SchedMigrate {
                thread: 9,
                from: 0,
                to: 3,
            },
        ));
        // Transit completes: thread 9 lands on its new core.
        events.push(ev(at, TraceKind::SchedRun { thread: 9, core: 3 }));
        for t in 5..=6u32 {
            events.push(req(at + 1, 0x40, t));
            events.push(grant(at + 2, 0x40, t, true));
            events.push(release(at + 3, 0x40, t));
            at += 10;
        }
        let ws = SuspensionWindows::default();
        assert!(
            check_fairness(&events, 4, &ws).is_empty(),
            "6 total overtakes, but the migration resets after 4; neither \
             queue position exceeds k=4"
        );
        // With k=1 each queue position violates independently.
        assert_eq!(check_fairness(&events, 1, &ws).len(), 2);
    }

    #[test]
    fn fairness_exempts_off_core_waiter() {
        // Thread 9 waits, is preempted off its core, and is lapped while
        // absent; grants cannot reach an off-core thread, so those
        // overtakes don't count until it runs again.
        let mut events = vec![
            req(0, 0x40, 9),
            ev(5, TraceKind::SchedPreempt { thread: 9, core: 0 }),
        ];
        let mut at = 10;
        for t in 1..=4u32 {
            events.push(req(at, 0x40, t));
            events.push(grant(at + 1, 0x40, t, true));
            events.push(release(at + 2, 0x40, t));
            at += 10;
        }
        let ws = SuspensionWindows::default();
        assert!(check_fairness(&events, 1, &ws).is_empty());
        // Once rescheduled, overtakes count again.
        events.push(ev(at, TraceKind::SchedRun { thread: 9, core: 1 }));
        for t in 5..=6u32 {
            events.push(req(at + 1, 0x40, t));
            events.push(grant(at + 2, 0x40, t, true));
            events.push(release(at + 3, 0x40, t));
            at += 10;
        }
        assert_eq!(check_fairness(&events, 1, &ws).len(), 1);
    }

    #[test]
    fn exclusion_flags_writer_overlap_but_allows_readers() {
        let shared_readers = vec![
            grant(10, 0x40, 1, false),
            grant(11, 0x40, 2, false),
            release(20, 0x40, 1),
            release(21, 0x40, 2),
        ];
        assert!(check_exclusion(&shared_readers).is_empty());
        let writer_overlap = vec![grant(10, 0x40, 1, true), grant(11, 0x40, 2, false)];
        let v = check_exclusion(&writer_overlap);
        assert_eq!(v.len(), 1);
        assert_eq!(
            (v[0].oracle, v[0].thread, v[0].value, v[0].at),
            ("exclusion", 2, 1, 11)
        );
    }

    #[test]
    fn exclusion_clears_on_release() {
        let events = vec![
            grant(10, 0x40, 1, true),
            release(20, 0x40, 1),
            grant(30, 0x40, 2, true),
        ];
        assert!(check_exclusion(&events).is_empty());
    }
}
