//! The fault scenario model: what to inject, when, and which guarantees to
//! check afterwards.
//!
//! A [`FaultPlan`] is built programmatically (builder methods) or parsed
//! from a small line-oriented text format (see [`FaultPlan::parse`]) so
//! scenarios can live in files and CI configs:
//!
//! ```text
//! # one directive per line; '#' starts a comment
//! horizon 150000
//! fairness-k 4
//! poll 500
//! deadline 600000
//! at 20000 suspend 1 for 80000
//! at 30000 migrate 2 to 3
//! when-waiting 1 after 5000 suspend 1 for 50000
//! at 10000 flt-evict 0
//! at 0 wire-delay every 3 extra 400
//! ```

use std::fmt;

/// A structural defect in a [`FaultPlan`], caught by [`FaultPlan::validate`]
/// at load time rather than surfacing as a silently-declined injection (or a
/// panic) mid-run. Each variant names the offending event index (0-based,
/// plan order) so scenario files can be fixed by line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// An event references a thread id `>= n_threads`.
    ThreadOutOfRange {
        /// Index of the offending event in plan order.
        event: usize,
        /// The out-of-range thread id.
        thread: u32,
        /// The workload's thread count.
        n_threads: u32,
    },
    /// An event references a core id `>= n_cores`.
    CoreOutOfRange {
        /// Index of the offending event in plan order.
        event: usize,
        /// The out-of-range core id.
        core: u32,
        /// The machine's core count.
        n_cores: u32,
    },
    /// A `resume` has no preceding `suspend` of the same thread (or, with
    /// exact-cycle triggers, would fire before it), so it could never apply.
    ResumeBeforeSuspend {
        /// Index of the offending resume event in plan order.
        event: usize,
        /// The thread the resume targets.
        thread: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PlanError::ThreadOutOfRange {
                event,
                thread,
                n_threads,
            } => write!(
                f,
                "event {event}: thread {thread} out of range (workload has {n_threads} threads)"
            ),
            PlanError::CoreOutOfRange {
                event,
                core,
                n_cores,
            } => write!(
                f,
                "event {event}: core {core} out of range (machine has {n_cores} cores)"
            ),
            PlanError::ResumeBeforeSuspend { event, thread } => write!(
                f,
                "event {event}: resume of thread {thread} precedes any suspend of it"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// When an injection fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// At an exact simulated cycle.
    AtCycle(u64),
    /// At the first driver poll at or after `after` cycles where `thread`
    /// has an acquire outstanding (protocol-state trigger: mid-queue).
    WhenWaiting {
        /// The observed thread.
        thread: u32,
        /// Earliest cycle the condition is polled.
        after: u64,
    },
    /// At the first driver poll at or after `after` cycles where `thread`
    /// holds at least one lock (protocol-state trigger: mid-critical-section).
    WhenHolding {
        /// The observed thread.
        thread: u32,
        /// Earliest cycle the condition is polled.
        after: u64,
    },
}

/// What to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Suspend a thread (off-core, not runnable). `duration` of `Some(d)`
    /// auto-resumes it `d` cycles later; `None` waits for an explicit
    /// [`Inject::Resume`].
    Suspend {
        /// The suspended thread.
        thread: u32,
        /// Auto-resume delay in cycles, if any.
        duration: Option<u64>,
    },
    /// Resume a suspended thread.
    Resume {
        /// The resumed thread.
        thread: u32,
    },
    /// Forcibly migrate a thread to a core (evicting any occupant).
    Migrate {
        /// The migrated thread.
        thread: u32,
        /// Destination core.
        to_core: u32,
    },
    /// Force-evict a parked free-lock-table entry on a core (LCU only;
    /// backends without an FLT report the fault unapplied).
    FltEvict {
        /// The pressured core.
        core: u32,
    },
    /// Install a deterministic wire-delay fault: every `period`-th network
    /// message is delayed `extra` cycles.
    WireDelay {
        /// Delay every `period`-th message.
        period: u64,
        /// Extra delay in cycles.
        extra: u64,
    },
    /// Remove the wire-delay fault.
    WireClear,
}

impl Inject {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Inject::Suspend { .. } => "suspend",
            Inject::Resume { .. } => "resume",
            Inject::Migrate { .. } => "migrate",
            Inject::FltEvict { .. } => "flt_evict",
            Inject::WireDelay { .. } => "wire_delay",
            Inject::WireClear => "wire_clear",
        }
    }
}

/// One planned injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When it fires.
    pub trigger: Trigger,
    /// What it does.
    pub inject: Inject,
}

/// A complete fault scenario plus the oracle thresholds to judge it by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Planned injections, applied in plan order when due.
    pub events: Vec<FaultEvent>,
    /// Liveness horizon: a requester left waiting more than this many
    /// non-suspended cycles is a liveness violation.
    pub horizon: u64,
    /// Fairness bound: a waiter overtaken by more than `k` later requesters
    /// is a fairness violation.
    pub fairness_k: u64,
    /// Driver polling interval for conditional triggers (and the stepping
    /// granularity for exact-cycle ones).
    pub poll: u64,
    /// Hard cap on the driven run length, in cycles.
    pub deadline: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            horizon: 150_000,
            fairness_k: 8,
            poll: 500,
            deadline: 1_000_000,
        }
    }
}

impl FaultPlan {
    /// An empty plan with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the liveness horizon.
    pub fn horizon(mut self, cycles: u64) -> Self {
        self.horizon = cycles;
        self
    }

    /// Sets the fairness overtake bound.
    pub fn fairness_k(mut self, k: u64) -> Self {
        self.fairness_k = k;
        self
    }

    /// Sets the polling/stepping interval.
    pub fn poll(mut self, cycles: u64) -> Self {
        self.poll = cycles.max(1);
        self
    }

    /// Sets the hard run deadline.
    pub fn deadline(mut self, cycles: u64) -> Self {
        self.deadline = cycles;
        self
    }

    /// Adds an injection with an explicit trigger.
    pub fn event(mut self, trigger: Trigger, inject: Inject) -> Self {
        self.events.push(FaultEvent { trigger, inject });
        self
    }

    /// Suspends `thread` at `cycle` for `duration` cycles.
    pub fn suspend_at(self, cycle: u64, thread: u32, duration: u64) -> Self {
        self.event(
            Trigger::AtCycle(cycle),
            Inject::Suspend {
                thread,
                duration: Some(duration),
            },
        )
    }

    /// Suspends `thread` for `duration` cycles once it is waiting on a lock
    /// (polled from `after` cycles on).
    pub fn suspend_when_waiting(self, thread: u32, after: u64, duration: u64) -> Self {
        self.event(
            Trigger::WhenWaiting { thread, after },
            Inject::Suspend {
                thread,
                duration: Some(duration),
            },
        )
    }

    /// Suspends `thread` for `duration` cycles once it holds a lock (polled
    /// from `after` cycles on).
    pub fn suspend_when_holding(self, thread: u32, after: u64, duration: u64) -> Self {
        self.event(
            Trigger::WhenHolding { thread, after },
            Inject::Suspend {
                thread,
                duration: Some(duration),
            },
        )
    }

    /// Migrates `thread` to `to_core` at `cycle`.
    pub fn migrate_at(self, cycle: u64, thread: u32, to_core: u32) -> Self {
        self.event(Trigger::AtCycle(cycle), Inject::Migrate { thread, to_core })
    }

    /// Migrates `thread` to `to_core` once it is waiting on a lock.
    pub fn migrate_when_waiting(self, thread: u32, after: u64, to_core: u32) -> Self {
        self.event(
            Trigger::WhenWaiting { thread, after },
            Inject::Migrate { thread, to_core },
        )
    }

    /// Force-evicts an FLT entry on `core` at `cycle`.
    pub fn flt_evict_at(self, cycle: u64, core: u32) -> Self {
        self.event(Trigger::AtCycle(cycle), Inject::FltEvict { core })
    }

    /// Installs a wire-delay fault at `cycle`.
    pub fn wire_delay_at(self, cycle: u64, period: u64, extra: u64) -> Self {
        self.event(Trigger::AtCycle(cycle), Inject::WireDelay { period, extra })
    }

    /// Checks the plan against a concrete machine shape: every referenced
    /// thread id must be `< n_threads`, every core id `< n_cores`, and every
    /// `resume` must be preceded (in plan order — the order injections are
    /// applied) by a `suspend` of the same thread; when both carry exact
    /// cycle triggers the resume must not fire strictly earlier. The first
    /// defect found is returned.
    pub fn validate(&self, n_threads: u32, n_cores: u32) -> Result<(), PlanError> {
        // Latest preceding suspend per thread: Some(cycle) for an exact
        // trigger, None for a conditional one (cycle unknowable statically).
        let mut suspended_at: std::collections::BTreeMap<u32, Option<u64>> =
            std::collections::BTreeMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            let thread_ok = |thread: u32| {
                if thread >= n_threads {
                    Err(PlanError::ThreadOutOfRange {
                        event: i,
                        thread,
                        n_threads,
                    })
                } else {
                    Ok(())
                }
            };
            let core_ok = |core: u32| {
                if core >= n_cores {
                    Err(PlanError::CoreOutOfRange {
                        event: i,
                        core,
                        n_cores,
                    })
                } else {
                    Ok(())
                }
            };
            match ev.trigger {
                Trigger::AtCycle(_) => {}
                Trigger::WhenWaiting { thread, .. } | Trigger::WhenHolding { thread, .. } => {
                    thread_ok(thread)?;
                }
            }
            match ev.inject {
                Inject::Suspend { thread, .. } => {
                    thread_ok(thread)?;
                    let at = match ev.trigger {
                        Trigger::AtCycle(c) => Some(c),
                        _ => None,
                    };
                    suspended_at.insert(thread, at);
                }
                Inject::Resume { thread } => {
                    thread_ok(thread)?;
                    let err = PlanError::ResumeBeforeSuspend { event: i, thread };
                    match suspended_at.get(&thread) {
                        None => return Err(err),
                        Some(&Some(susp_cycle)) => {
                            if let Trigger::AtCycle(c) = ev.trigger {
                                if c < susp_cycle {
                                    return Err(err);
                                }
                            }
                        }
                        Some(&None) => {}
                    }
                }
                Inject::Migrate { thread, to_core } => {
                    thread_ok(thread)?;
                    core_ok(to_core)?;
                }
                Inject::FltEvict { core } => core_ok(core)?,
                Inject::WireDelay { .. } | Inject::WireClear => {}
            }
        }
        Ok(())
    }

    /// Renders the plan in the line-oriented scenario format, canonically:
    /// the four threshold directives first, then events in plan order. The
    /// output round-trips — `FaultPlan::parse(plan.format())` reproduces the
    /// plan exactly (for any plan with `poll >= 1`, which the builder and
    /// parser both guarantee).
    pub fn format(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "horizon {}", self.horizon);
        let _ = writeln!(out, "fairness-k {}", self.fairness_k);
        let _ = writeln!(out, "poll {}", self.poll);
        let _ = writeln!(out, "deadline {}", self.deadline);
        for ev in &self.events {
            match ev.trigger {
                Trigger::AtCycle(c) => {
                    let _ = write!(out, "at {c}");
                }
                Trigger::WhenWaiting { thread, after } => {
                    let _ = write!(out, "when-waiting {thread} after {after}");
                }
                Trigger::WhenHolding { thread, after } => {
                    let _ = write!(out, "when-holding {thread} after {after}");
                }
            }
            match ev.inject {
                Inject::Suspend {
                    thread,
                    duration: Some(d),
                } => {
                    let _ = writeln!(out, " suspend {thread} for {d}");
                }
                Inject::Suspend {
                    thread,
                    duration: None,
                } => {
                    let _ = writeln!(out, " suspend {thread}");
                }
                Inject::Resume { thread } => {
                    let _ = writeln!(out, " resume {thread}");
                }
                Inject::Migrate { thread, to_core } => {
                    let _ = writeln!(out, " migrate {thread} to {to_core}");
                }
                Inject::FltEvict { core } => {
                    let _ = writeln!(out, " flt-evict {core}");
                }
                Inject::WireDelay { period, extra } => {
                    let _ = writeln!(out, " wire-delay every {period} extra {extra}");
                }
                Inject::WireClear => {
                    let _ = writeln!(out, " wire-clear");
                }
            }
        }
        out
    }

    /// Parses the line-oriented scenario format (see the module docs).
    /// Unknown directives, missing fields and malformed numbers are
    /// rejected with the offending line number.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            plan = plan
                .parse_line(line)
                .map_err(|e| format!("scenario line {}: {e} (in {line:?})", i + 1))?;
        }
        Ok(plan)
    }

    pub(crate) fn parse_line(mut self, line: &str) -> Result<Self, String> {
        let toks = &mut line.split_whitespace();
        let head = toks.next().expect("caller skips empty lines");
        match head {
            "horizon" => self.horizon = num(toks, "cycle count")?,
            "fairness-k" => self.fairness_k = num(toks, "overtake bound")?,
            "poll" => self.poll = num(toks, "cycle count")?.max(1),
            "deadline" => self.deadline = num(toks, "cycle count")?,
            "at" | "when-waiting" | "when-holding" => {
                let trigger = match head {
                    "at" => Trigger::AtCycle(num(toks, "cycle")?),
                    cond => {
                        let thread = num(toks, "thread id")? as u32;
                        keyword(toks, "after")?;
                        let after = num(toks, "cycle")?;
                        if cond == "when-waiting" {
                            Trigger::WhenWaiting { thread, after }
                        } else {
                            Trigger::WhenHolding { thread, after }
                        }
                    }
                };
                let verb = toks
                    .next()
                    .ok_or_else(|| "missing injection verb after trigger".to_string())?;
                let inject = match verb {
                    "suspend" => {
                        let thread = num(toks, "thread id")? as u32;
                        let duration = match toks.next() {
                            None => None,
                            Some("for") => Some(num(toks, "duration")?),
                            Some(other) => {
                                return Err(format!("expected \"for\", found {other:?}"));
                            }
                        };
                        Inject::Suspend { thread, duration }
                    }
                    "resume" => Inject::Resume {
                        thread: num(toks, "thread id")? as u32,
                    },
                    "migrate" => {
                        let thread = num(toks, "thread id")? as u32;
                        keyword(toks, "to")?;
                        Inject::Migrate {
                            thread,
                            to_core: num(toks, "core id")? as u32,
                        }
                    }
                    "flt-evict" => Inject::FltEvict {
                        core: num(toks, "core id")? as u32,
                    },
                    "wire-delay" => {
                        keyword(toks, "every")?;
                        let period = num(toks, "period")?;
                        if period == 0 {
                            return Err("wire-delay period must be positive".to_string());
                        }
                        keyword(toks, "extra")?;
                        Inject::WireDelay {
                            period,
                            extra: num(toks, "extra cycles")?,
                        }
                    }
                    "wire-clear" => Inject::WireClear,
                    other => return Err(format!("unknown injection verb {other:?}")),
                };
                self.events.push(FaultEvent { trigger, inject });
            }
            other => return Err(format!("unknown directive {other:?}")),
        }
        if let Some(extra) = toks.next() {
            return Err(format!("trailing token {extra:?}"));
        }
        Ok(self)
    }
}

/// Consumes the next token as a number, naming `what` on failure.
pub(crate) fn num(toks: &mut std::str::SplitWhitespace<'_>, what: &str) -> Result<u64, String> {
    let tok = toks.next().ok_or_else(|| format!("missing {what}"))?;
    tok.parse::<u64>()
        .map_err(|_| format!("bad {what} {tok:?} (expected a number)"))
}

/// Consumes the next token, requiring it to be exactly `kw`.
fn keyword(toks: &mut std::str::SplitWhitespace<'_>, kw: &str) -> Result<(), String> {
    match toks.next() {
        Some(t) if t == kw => Ok(()),
        other => Err(format!("expected {kw:?}, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let p = FaultPlan::new()
            .horizon(10_000)
            .fairness_k(3)
            .poll(100)
            .deadline(50_000)
            .suspend_at(1_000, 2, 5_000)
            .migrate_at(2_000, 1, 3);
        assert_eq!(p.horizon, 10_000);
        assert_eq!(p.fairness_k, 3);
        assert_eq!(p.events.len(), 2);
        assert_eq!(p.events[0].inject.label(), "suspend");
        assert_eq!(p.events[1].inject.label(), "migrate");
    }

    #[test]
    fn parse_full_scenario() {
        let text = "\
# adversarial schedule
horizon 150000
fairness-k 4
poll 500          # trailing comment
deadline 600000
at 20000 suspend 1 for 80000
at 120000 resume 1
at 30000 migrate 2 to 3
when-waiting 1 after 5000 suspend 1 for 50000
when-holding 0 after 1000 suspend 0
at 10000 flt-evict 0
at 0 wire-delay every 3 extra 400
at 50000 wire-clear
";
        let p = FaultPlan::parse(text).expect("valid scenario");
        assert_eq!(p.horizon, 150_000);
        assert_eq!(p.fairness_k, 4);
        assert_eq!(p.poll, 500);
        assert_eq!(p.deadline, 600_000);
        assert_eq!(p.events.len(), 8);
        assert_eq!(
            p.events[0],
            FaultEvent {
                trigger: Trigger::AtCycle(20_000),
                inject: Inject::Suspend {
                    thread: 1,
                    duration: Some(80_000),
                },
            }
        );
        assert_eq!(
            p.events[3].trigger,
            Trigger::WhenWaiting {
                thread: 1,
                after: 5_000,
            }
        );
        assert_eq!(
            p.events[4].inject,
            Inject::Suspend {
                thread: 0,
                duration: None,
            }
        );
        assert_eq!(p.events[6].inject.label(), "wire_delay");
        assert_eq!(p.events[7].inject, Inject::WireClear);
    }

    #[test]
    fn parse_round_trips_through_builder_equivalent() {
        let parsed = FaultPlan::parse("at 100 suspend 0 for 50\n").unwrap();
        let built = FaultPlan::new().suspend_at(100, 0, 50);
        assert_eq!(parsed, built);
    }

    #[test]
    fn parse_errors_name_the_line_and_problem() {
        for (text, needle) in [
            ("frobnicate 3", "unknown directive"),
            ("at x suspend 0", "bad cycle"),
            ("at 10 explode 0", "unknown injection verb"),
            ("at 10 migrate 0 3", "expected \"to\""),
            ("at 10 suspend 0 for", "missing duration"),
            ("at 10 wire-delay every 0 extra 5", "must be positive"),
            ("horizon 5 extra", "trailing token"),
            ("when-waiting 1 5000 suspend 1", "expected \"after\""),
        ] {
            let err = FaultPlan::parse(text).expect_err(text);
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn poll_zero_is_clamped() {
        let p = FaultPlan::parse("poll 0").unwrap();
        assert_eq!(p.poll, 1);
    }

    #[test]
    fn validate_accepts_in_range_plan() {
        let p = FaultPlan::new()
            .suspend_at(100, 3, 50)
            .migrate_at(200, 0, 3)
            .flt_evict_at(300, 2)
            .wire_delay_at(0, 3, 400);
        assert_eq!(p.validate(4, 4), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_thread() {
        let p = FaultPlan::new().suspend_at(100, 4, 50);
        assert_eq!(
            p.validate(4, 4),
            Err(PlanError::ThreadOutOfRange {
                event: 0,
                thread: 4,
                n_threads: 4,
            })
        );
        // Conditional triggers are checked too.
        let p = FaultPlan::new().suspend_when_waiting(7, 0, 10);
        assert!(matches!(
            p.validate(4, 4),
            Err(PlanError::ThreadOutOfRange { thread: 7, .. })
        ));
    }

    #[test]
    fn validate_rejects_out_of_range_core() {
        let p = FaultPlan::new().suspend_at(0, 1, 10).migrate_at(50, 1, 9);
        assert_eq!(
            p.validate(4, 4),
            Err(PlanError::CoreOutOfRange {
                event: 1,
                core: 9,
                n_cores: 4,
            })
        );
        let p = FaultPlan::new().flt_evict_at(0, 4);
        assert!(matches!(
            p.validate(4, 4),
            Err(PlanError::CoreOutOfRange { core: 4, .. })
        ));
    }

    #[test]
    fn validate_rejects_resume_before_suspend() {
        // No suspend at all.
        let p = FaultPlan::new().event(Trigger::AtCycle(100), Inject::Resume { thread: 1 });
        assert_eq!(
            p.validate(4, 4),
            Err(PlanError::ResumeBeforeSuspend {
                event: 0,
                thread: 1,
            })
        );
        // Exact-cycle resume strictly before its exact-cycle suspend.
        let p = FaultPlan::new()
            .suspend_at(500, 1, 0)
            .event(Trigger::AtCycle(100), Inject::Resume { thread: 1 });
        assert!(matches!(
            p.validate(4, 4),
            Err(PlanError::ResumeBeforeSuspend { event: 1, .. })
        ));
        // Properly ordered pair is fine.
        let p = FaultPlan::new()
            .event(
                Trigger::AtCycle(100),
                Inject::Suspend {
                    thread: 1,
                    duration: None,
                },
            )
            .event(Trigger::AtCycle(500), Inject::Resume { thread: 1 });
        assert_eq!(p.validate(4, 4), Ok(()));
        // Conditional suspend has no statically known cycle — any later
        // resume of that thread passes.
        let p = FaultPlan::new()
            .suspend_when_waiting(1, 200, 10)
            .event(Trigger::AtCycle(1), Inject::Resume { thread: 1 });
        assert_eq!(p.validate(4, 4), Ok(()));
    }

    #[test]
    fn plan_error_display_names_the_defect() {
        let e = PlanError::ThreadOutOfRange {
            event: 2,
            thread: 9,
            n_threads: 4,
        };
        assert!(e.to_string().contains("thread 9 out of range"));
        let e = PlanError::ResumeBeforeSuspend {
            event: 0,
            thread: 3,
        };
        assert!(e.to_string().contains("resume of thread 3"));
    }

    #[test]
    fn format_round_trips_every_event_kind() {
        let p = FaultPlan::new()
            .horizon(77_000)
            .fairness_k(5)
            .poll(250)
            .deadline(900_000)
            .suspend_at(20_000, 1, 80_000)
            .event(
                Trigger::AtCycle(30_000),
                Inject::Suspend {
                    thread: 2,
                    duration: None,
                },
            )
            .event(Trigger::AtCycle(40_000), Inject::Resume { thread: 2 })
            .migrate_at(50_000, 0, 3)
            .migrate_when_waiting(3, 1_000, 2)
            .suspend_when_holding(0, 2_000, 9_000)
            .flt_evict_at(60_000, 1)
            .wire_delay_at(0, 7, 350)
            .event(Trigger::AtCycle(70_000), Inject::WireClear);
        let text = p.format();
        let back = FaultPlan::parse(&text).expect("formatted plan parses");
        assert_eq!(back, p);
    }
}
