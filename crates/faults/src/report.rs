//! Pass/fail reporting: verdict computation, deterministic CSV, and
//! self-contained HTML artifacts — for the backend × fault-class matrix
//! ([`MatrixCell`]) and for chaos soak sweeps ([`ChaosRow`]).

use std::fmt::Write as _;

use crate::driver::DriveOutcome;
use crate::oracle::Violation;

/// One cell of the backend × fault-class matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Backend label (e.g. "lcu", "mcs").
    pub backend: String,
    /// Fault-class label (e.g. "none", "suspend", "migrate").
    pub fault: String,
    /// Verdict string: "pass", "LIVENESS", "FAIRNESS", "EXCLUSION", or
    /// "n/a" for combinations the backend does not support.
    pub verdict: String,
    /// Liveness violation count.
    pub liveness: usize,
    /// Fairness violation count.
    pub fairness: usize,
    /// Exclusion violation count.
    pub exclusion: usize,
    /// Injections the machine/backend accepted.
    pub injections: u64,
    /// Cycle the run stopped at.
    pub end_cycle: u64,
    /// Whether every thread ran to completion.
    pub finished: bool,
}

impl MatrixCell {
    /// Builds a cell from a driven run and its oracle verdicts. The verdict
    /// names the most severe violated oracle (exclusion > liveness >
    /// fairness) or "pass" when none fired.
    pub fn from_run(
        backend: &str,
        fault: &str,
        outcome: &DriveOutcome,
        violations: &[Violation],
        finished: bool,
    ) -> Self {
        let count = |o: &str| violations.iter().filter(|v| v.oracle == o).count();
        let (liveness, fairness, exclusion) =
            (count("liveness"), count("fairness"), count("exclusion"));
        let verdict = if exclusion > 0 {
            "EXCLUSION"
        } else if liveness > 0 {
            "LIVENESS"
        } else if fairness > 0 {
            "FAIRNESS"
        } else {
            "pass"
        };
        MatrixCell {
            backend: backend.to_string(),
            fault: fault.to_string(),
            verdict: verdict.to_string(),
            liveness,
            fairness,
            exclusion,
            injections: outcome.injections_applied(),
            end_cycle: outcome.end_cycle,
            finished,
        }
    }

    /// Builds an "n/a" cell for a combination the backend does not support
    /// (e.g. FLT eviction on a software lock).
    pub fn not_applicable(backend: &str, fault: &str) -> Self {
        MatrixCell {
            backend: backend.to_string(),
            fault: fault.to_string(),
            verdict: "n/a".to_string(),
            liveness: 0,
            fairness: 0,
            exclusion: 0,
            injections: 0,
            end_cycle: 0,
            finished: false,
        }
    }

    /// Whether this cell passed (or was not applicable).
    pub fn ok(&self) -> bool {
        self.verdict == "pass" || self.verdict == "n/a"
    }
}

/// One row of a chaos soak sweep: a fuzz seed, the case it generated, and
/// the verdict its run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRow {
    /// The fuzz seed.
    pub seed: u64,
    /// Backend label the fuzzer picked for this seed.
    pub backend: String,
    /// Verdict: "pass", "DEADLOCK", "LIVENESS", "FAIRNESS" or "EXCLUSION".
    pub verdict: String,
    /// Liveness violation count.
    pub liveness: usize,
    /// Fairness violation count.
    pub fairness: usize,
    /// Exclusion violation count.
    pub exclusion: usize,
    /// Whether the quiescence detector fired.
    pub deadlock: bool,
    /// Fault events in the generated plan.
    pub events: usize,
    /// Fault events after shrinking (equals `events` for passing rows).
    pub shrunk_events: usize,
    /// Cycle the run stopped at.
    pub end_cycle: u64,
    /// Whether every thread ran to completion.
    pub finished: bool,
}

impl ChaosRow {
    /// The chaos verdict for a driven run: the most severe failure wins —
    /// exclusion > deadlock > liveness > fairness — else "pass". A deadlock
    /// outranks the liveness violations it inevitably also produces because
    /// it is the stronger statement (no possible progress, not just a
    /// too-long wait).
    pub fn verdict_of(outcome: &DriveOutcome, violations: &[Violation]) -> &'static str {
        let count = |o: &str| violations.iter().filter(|v| v.oracle == o).count();
        if count("exclusion") > 0 {
            "EXCLUSION"
        } else if outcome.deadlock.is_some() {
            "DEADLOCK"
        } else if count("liveness") > 0 {
            "LIVENESS"
        } else if count("fairness") > 0 {
            "FAIRNESS"
        } else {
            "pass"
        }
    }

    /// Builds a row from a driven run and its oracle verdicts.
    pub fn from_run(
        seed: u64,
        backend: &str,
        outcome: &DriveOutcome,
        violations: &[Violation],
        finished: bool,
        events: usize,
    ) -> Self {
        let count = |o: &str| violations.iter().filter(|v| v.oracle == o).count();
        ChaosRow {
            seed,
            backend: backend.to_string(),
            verdict: Self::verdict_of(outcome, violations).to_string(),
            liveness: count("liveness"),
            fairness: count("fairness"),
            exclusion: count("exclusion"),
            deadlock: outcome.deadlock.is_some(),
            events,
            shrunk_events: events,
            end_cycle: outcome.end_cycle,
            finished,
        }
    }

    /// Whether this seed's run passed.
    pub fn ok(&self) -> bool {
        self.verdict == "pass"
    }
}

/// Renders a chaos sweep as CSV; byte-deterministic for the same rows.
pub fn chaos_csv(rows: &[ChaosRow]) -> String {
    let mut s = String::from(
        "seed,backend,verdict,liveness,fairness,exclusion,deadlock,events,\
         shrunk_events,end_cycle,finished\n",
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{}",
            r.seed,
            r.backend,
            r.verdict,
            r.liveness,
            r.fairness,
            r.exclusion,
            r.deadlock,
            r.events,
            r.shrunk_events,
            r.end_cycle,
            r.finished
        );
    }
    s
}

/// Renders a chaos sweep as a self-contained HTML page.
pub fn chaos_html(rows: &[ChaosRow], title: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font-family:sans-serif;margin:2em;}}\
         table{{border-collapse:collapse;}}\
         th,td{{border:1px solid #999;padding:0.3em 0.8em;text-align:right;}}\
         th{{background:#eee;}}td.l{{text-align:left;}}\
         .pass{{background:#cfc;}}.fail{{background:#fcc;font-weight:bold;}}\
         </style></head><body><h1>{title}</h1>\n<table>\n\
         <tr><th>seed</th><th>backend</th><th>verdict</th>\
         <th>liveness</th><th>fairness</th><th>exclusion</th><th>deadlock</th>\
         <th>events</th><th>shrunk</th><th>end cycle</th><th>finished</th></tr>\n"
    );
    for r in rows {
        let class = if r.ok() { "pass" } else { "fail" };
        let _ = writeln!(
            s,
            "<tr><td>{}</td><td class=\"l\">{}</td>\
             <td class=\"{}\">{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            r.seed,
            r.backend,
            class,
            r.verdict,
            r.liveness,
            r.fairness,
            r.exclusion,
            r.deadlock,
            r.events,
            r.shrunk_events,
            r.end_cycle,
            r.finished
        );
    }
    s.push_str("</table>\n</body></html>\n");
    s
}

/// Renders the matrix as CSV. Output is a pure function of the cells, so
/// two same-seed runs produce byte-identical files.
pub fn csv(cells: &[MatrixCell]) -> String {
    let mut s = String::from(
        "backend,fault,verdict,liveness,fairness,exclusion,injections,end_cycle,finished\n",
    );
    for c in cells {
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{}",
            c.backend,
            c.fault,
            c.verdict,
            c.liveness,
            c.fairness,
            c.exclusion,
            c.injections,
            c.end_cycle,
            c.finished
        );
    }
    s
}

/// Renders the matrix as a self-contained HTML page (inline CSS, no
/// external assets), with one table row per cell and verdict colouring.
pub fn html(cells: &[MatrixCell], title: &str) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>{title}</title><style>\
         body{{font-family:sans-serif;margin:2em;}}\
         table{{border-collapse:collapse;}}\
         th,td{{border:1px solid #999;padding:0.3em 0.8em;text-align:right;}}\
         th{{background:#eee;}}td.l{{text-align:left;}}\
         .pass{{background:#cfc;}}.fail{{background:#fcc;font-weight:bold;}}\
         .na{{background:#f4f4f4;color:#888;}}\
         </style></head><body><h1>{title}</h1>\n<table>\n\
         <tr><th>backend</th><th>fault</th><th>verdict</th>\
         <th>liveness</th><th>fairness</th><th>exclusion</th>\
         <th>injections</th><th>end cycle</th><th>finished</th></tr>\n"
    );
    for c in cells {
        let class = match c.verdict.as_str() {
            "pass" => "pass",
            "n/a" => "na",
            _ => "fail",
        };
        let _ = writeln!(
            s,
            "<tr><td class=\"l\">{}</td><td class=\"l\">{}</td>\
             <td class=\"{}\">{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td></tr>",
            c.backend,
            c.fault,
            class,
            c.verdict,
            c.liveness,
            c.fairness,
            c.exclusion,
            c.injections,
            c.end_cycle,
            c.finished
        );
    }
    s.push_str("</table>\n</body></html>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SuspensionWindows;
    use locksim_machine::RunExit;

    fn outcome(end_cycle: u64) -> DriveOutcome {
        DriveOutcome {
            exit: RunExit::TimeLimit,
            end_cycle,
            applied: Vec::new(),
            windows: SuspensionWindows::default(),
            deadlock: None,
        }
    }

    fn violation(oracle: &'static str) -> Violation {
        Violation {
            oracle,
            lock: 0x40,
            thread: 1,
            value: 2,
            at: 3,
        }
    }

    #[test]
    fn verdict_ranks_exclusion_over_liveness_over_fairness() {
        let o = outcome(100);
        let all = [
            violation("fairness"),
            violation("liveness"),
            violation("exclusion"),
        ];
        assert_eq!(
            MatrixCell::from_run("b", "f", &o, &all, false).verdict,
            "EXCLUSION"
        );
        assert_eq!(
            MatrixCell::from_run("b", "f", &o, &all[..2], false).verdict,
            "LIVENESS"
        );
        assert_eq!(
            MatrixCell::from_run("b", "f", &o, &all[..1], false).verdict,
            "FAIRNESS"
        );
        let clean = MatrixCell::from_run("b", "f", &o, &[], true);
        assert_eq!(clean.verdict, "pass");
        assert!(clean.ok());
        assert!(MatrixCell::not_applicable("b", "f").ok());
    }

    #[test]
    fn csv_is_deterministic_and_greppable() {
        let cells = vec![
            MatrixCell::from_run("lcu", "suspend", &outcome(500), &[], true),
            MatrixCell::from_run(
                "mcs",
                "suspend",
                &outcome(900),
                &[violation("liveness")],
                false,
            ),
            MatrixCell::not_applicable("mcs", "flt-evict"),
        ];
        let a = csv(&cells);
        let b = csv(&cells);
        assert_eq!(a, b);
        assert!(a.starts_with("backend,fault,verdict,"));
        assert!(a.contains("lcu,suspend,pass,0,0,0,0,500,true\n"));
        assert!(a.contains("mcs,suspend,LIVENESS,1,0,0,0,900,false\n"));
        assert!(a.contains("mcs,flt-evict,n/a,"));
    }

    #[test]
    fn chaos_verdict_ranks_deadlock_between_exclusion_and_liveness() {
        let mut dead = outcome(100);
        dead.deadlock = Some(crate::detect::DeadlockReport {
            at: 100,
            lock: 0x40,
            waiters: 1,
            chain: "lock 0x40: waiters t1(W); held by t0 (suspended)".to_string(),
        });
        let live = [violation("liveness")];
        let excl = [violation("exclusion"), violation("liveness")];
        assert_eq!(ChaosRow::verdict_of(&dead, &live), "DEADLOCK");
        assert_eq!(ChaosRow::verdict_of(&dead, &excl), "EXCLUSION");
        assert_eq!(ChaosRow::verdict_of(&outcome(100), &live), "LIVENESS");
        assert_eq!(
            ChaosRow::verdict_of(&outcome(100), &[violation("fairness")]),
            "FAIRNESS"
        );
        assert_eq!(ChaosRow::verdict_of(&outcome(100), &[]), "pass");
    }

    #[test]
    fn chaos_csv_is_deterministic_and_greppable() {
        let mut dead = outcome(7_000);
        dead.deadlock = Some(crate::detect::DeadlockReport {
            at: 7_000,
            lock: 0x40,
            waiters: 2,
            chain: String::new(),
        });
        let mut rows = vec![
            ChaosRow::from_run(3, "lcu", &outcome(500), &[], true, 4),
            ChaosRow::from_run(4, "mcs", &dead, &[violation("liveness")], false, 5),
        ];
        rows[1].shrunk_events = 1;
        let a = chaos_csv(&rows);
        assert_eq!(a, chaos_csv(&rows));
        assert!(a.starts_with("seed,backend,verdict,"));
        assert!(a.contains("3,lcu,pass,0,0,0,false,4,4,500,true\n"));
        assert!(a.contains("4,mcs,DEADLOCK,1,0,0,true,5,1,7000,false\n"));
        let page = chaos_html(&rows, "chaossim");
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.contains("<td class=\"fail\">DEADLOCK</td>"));
    }

    #[test]
    fn html_is_self_contained() {
        let cells = vec![MatrixCell::from_run("lcu", "none", &outcome(1), &[], true)];
        let page = html(&cells, "faultsim");
        assert!(page.starts_with("<!DOCTYPE html>"));
        assert!(page.ends_with("</html>\n"));
        assert!(page.contains("<td class=\"pass\">pass</td>"));
        assert!(!page.contains("http"), "no external assets");
    }
}
