//! Self-contained chaos scenarios: workload + backend + fault plan + the
//! expected verdict, in one replayable text file.
//!
//! The corpus under `tests/corpus/` stores shrunk violations in this format
//! so tier-1 `cargo test` replays them byte-deterministically. The format
//! is a superset of the [`FaultPlan`] text format: scenario directives
//! (`backend`, `seed`, `threads`, ...) are handled here, every other line
//! is a plan line:
//!
//! ```text
//! backend mcs
//! seed 17
//! threads 4
//! iters 120
//! cs-compute 200
//! write-pct 100
//! lrt-pressure off
//! expect deadlock
//! horizon 60000
//! when-holding 0 after 200 suspend 0
//! ```

use crate::fuzz::{ChaosCase, ChaosWorkload};
use crate::plan::{num, FaultPlan};

/// One fully-specified, replayable chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    /// Harness backend label ("lcu", "lcu+flt", "ssb", "mcs", "mrsw", ...).
    pub backend: String,
    /// World seed (also the fuzz seed for generated cases).
    pub seed: u64,
    /// Workload shape.
    pub workload: ChaosWorkload,
    /// The fault plan.
    pub plan: FaultPlan,
    /// Expected verdict on replay: "liveness", "fairness", "exclusion",
    /// "deadlock" or "none".
    pub expect: String,
}

impl Default for ChaosScenario {
    fn default() -> Self {
        ChaosScenario {
            backend: "lcu".to_string(),
            seed: 1,
            workload: ChaosWorkload {
                threads: 4,
                iters: 120,
                cs_compute: 0,
                write_pct: 100,
                lrt_pressure: false,
            },
            plan: FaultPlan::new(),
            expect: "none".to_string(),
        }
    }
}

impl ChaosScenario {
    /// Wraps a fuzzer case (no verdict yet).
    pub fn from_case(case: &ChaosCase) -> Self {
        ChaosScenario {
            backend: case.backend.to_string(),
            seed: case.seed,
            workload: case.workload,
            plan: case.plan.clone(),
            expect: "none".to_string(),
        }
    }

    /// Parses the scenario text format. Unknown directives are rejected
    /// with the offending line number (plan lines included).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut sc = ChaosScenario::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            sc = sc
                .parse_line(line)
                .map_err(|e| format!("scenario line {}: {e} (in {line:?})", i + 1))?;
        }
        Ok(sc)
    }

    fn parse_line(mut self, line: &str) -> Result<Self, String> {
        let toks = &mut line.split_whitespace();
        let head = toks.next().expect("caller skips empty lines");
        match head {
            "backend" | "expect" => {
                let val = toks
                    .next()
                    .ok_or_else(|| format!("missing value after {head:?}"))?
                    .to_string();
                if head == "backend" {
                    self.backend = val;
                } else {
                    self.expect = val;
                }
            }
            "seed" => self.seed = num(toks, "seed")?,
            "threads" => self.workload.threads = num(toks, "thread count")? as u32,
            "iters" => self.workload.iters = num(toks, "iteration count")? as u32,
            "cs-compute" => self.workload.cs_compute = num(toks, "cycle count")?,
            "write-pct" => self.workload.write_pct = num(toks, "percentage")? as u32,
            "lrt-pressure" => {
                self.workload.lrt_pressure = match toks.next() {
                    Some("on") => true,
                    Some("off") => false,
                    other => return Err(format!("expected \"on\" or \"off\", found {other:?}")),
                };
            }
            _ => return self.plan_line(line),
        }
        if let Some(extra) = toks.next() {
            return Err(format!("trailing token {extra:?}"));
        }
        Ok(self)
    }

    fn plan_line(mut self, line: &str) -> Result<Self, String> {
        self.plan = self.plan.parse_line(line)?;
        Ok(self)
    }

    /// Renders the scenario canonically; `parse(format())` round-trips.
    pub fn format(&self) -> String {
        let w = &self.workload;
        format!(
            "backend {}\nseed {}\nthreads {}\niters {}\ncs-compute {}\nwrite-pct {}\n\
             lrt-pressure {}\nexpect {}\n{}",
            self.backend,
            self.seed,
            w.threads,
            w.iters,
            w.cs_compute,
            w.write_pct,
            if w.lrt_pressure { "on" } else { "off" },
            self.expect,
            self.plan.format(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{generate, FuzzConfig};
    use crate::plan::{Inject, Trigger};

    #[test]
    fn parse_full_scenario() {
        let text = "\
# wedged holder
backend mcs
seed 17
threads 2
iters 40
cs-compute 200
write-pct 100
lrt-pressure off
expect deadlock
horizon 60000
deadline 500000
when-holding 0 after 200 suspend 0
";
        let sc = ChaosScenario::parse(text).expect("valid scenario");
        assert_eq!(sc.backend, "mcs");
        assert_eq!(sc.seed, 17);
        assert_eq!(sc.workload.threads, 2);
        assert_eq!(sc.workload.cs_compute, 200);
        assert!(!sc.workload.lrt_pressure);
        assert_eq!(sc.expect, "deadlock");
        assert_eq!(sc.plan.horizon, 60_000);
        assert_eq!(sc.plan.events.len(), 1);
        assert_eq!(
            sc.plan.events[0].trigger,
            Trigger::WhenHolding {
                thread: 0,
                after: 200,
            }
        );
        assert_eq!(
            sc.plan.events[0].inject,
            Inject::Suspend {
                thread: 0,
                duration: None,
            }
        );
    }

    #[test]
    fn format_round_trips() {
        let mut sc = ChaosScenario::from_case(&generate(99, &FuzzConfig::default()));
        sc.expect = "liveness".to_string();
        let back = ChaosScenario::parse(&sc.format()).expect("formatted scenario parses");
        assert_eq!(back, sc);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = ChaosScenario::parse("backend mcs\nfrobnicate 3\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("unknown directive"), "{err}");
        let err = ChaosScenario::parse("lrt-pressure maybe\n").unwrap_err();
        assert!(err.contains("expected \"on\" or \"off\""), "{err}");
    }
}
