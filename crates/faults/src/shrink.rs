//! Delta-debugging plan shrinker.
//!
//! A fuzzed violation usually drags irrelevant events along — the suspend
//! that wedged the queue plus a migration and two wire faults that changed
//! nothing. [`shrink`] reduces a violating [`FaultPlan`] to a **locally
//! minimal** one: no single remaining event can be removed, and no single
//! halving of a numeric parameter (trigger cycle, duration, wire period /
//! extra, deadline) still reproduces the violation. It is plain ddmin —
//! complement removal at geometrically shrinking chunk sizes, then
//! parameter halving toward zero, repeated to a fixpoint.
//!
//! The caller supplies the oracle as a closure that re-runs the scenario
//! from scratch on a candidate plan and reports whether the *original*
//! violation still trips (same oracle kind, typically same lock). The
//! closure must be deterministic — in this codebase every run is — and must
//! return `false` for candidates it cannot run (e.g. a removal that
//! orphaned a `resume`), which the shrinker then simply keeps out of the
//! result. Shrinking is itself deterministic: same plan, same closure, same
//! budget ⇒ same minimal plan.

use crate::plan::{FaultPlan, Inject, Trigger};

/// What [`shrink`] produced.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The locally-minimal plan (equals the input if it never failed).
    pub plan: FaultPlan,
    /// Candidate re-runs spent (each one a full scenario execution).
    pub runs: u64,
    /// Events removed from the input plan.
    pub removed_events: usize,
}

struct Budget {
    spent: u64,
    max: u64,
}

impl Budget {
    fn run<F: FnMut(&FaultPlan) -> bool>(&mut self, fails: &mut F, cand: &FaultPlan) -> bool {
        if self.spent >= self.max {
            return false;
        }
        self.spent += 1;
        fails(cand)
    }
}

/// Shrinks `plan` against `fails`, spending at most `max_runs` candidate
/// executions. `fails(candidate)` re-runs the scenario and reports whether
/// the original violation still reproduces.
pub fn shrink<F: FnMut(&FaultPlan) -> bool>(
    plan: &FaultPlan,
    mut fails: F,
    max_runs: u64,
) -> ShrinkResult {
    let mut budget = Budget {
        spent: 0,
        max: max_runs,
    };
    let original_events = plan.events.len();
    let mut best = plan.clone();
    if !budget.run(&mut fails, &best) {
        // The input does not violate (or the budget is 0): nothing to do.
        return ShrinkResult {
            plan: best,
            runs: budget.spent,
            removed_events: 0,
        };
    }
    loop {
        let removed = removal_pass(&mut best, &mut fails, &mut budget);
        let halved = param_pass(&mut best, &mut fails, &mut budget);
        if (!removed && !halved) || budget.spent >= budget.max {
            break;
        }
    }
    ShrinkResult {
        removed_events: original_events - best.events.len(),
        runs: budget.spent,
        plan: best,
    }
}

/// Complement-removal ddmin over the event list: try dropping chunks of
/// geometrically shrinking size, keeping any drop that still fails. After
/// the chunk-size-1 sweep no single event is removable.
fn removal_pass<F: FnMut(&FaultPlan) -> bool>(
    plan: &mut FaultPlan,
    fails: &mut F,
    budget: &mut Budget,
) -> bool {
    let mut improved = false;
    let mut chunk = (plan.events.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < plan.events.len() && budget.spent < budget.max {
            let mut cand = plan.clone();
            let hi = (i + chunk).min(cand.events.len());
            cand.events.drain(i..hi);
            if budget.run(fails, &cand) {
                *plan = cand;
                improved = true;
                // Retry the same index: the next chunk slid into place.
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            return improved;
        }
        chunk = (chunk / 2).max(1);
    }
}

/// Parameter halving to a fixpoint: while any single halving of a numeric
/// field (or of the plan deadline) still fails, apply it.
fn param_pass<F: FnMut(&FaultPlan) -> bool>(
    plan: &mut FaultPlan,
    fails: &mut F,
    budget: &mut Budget,
) -> bool {
    let mut improved = false;
    loop {
        let mut stepped = false;
        for cand in one_step_candidates(plan) {
            if budget.run(fails, &cand) {
                *plan = cand;
                stepped = true;
                break;
            }
        }
        if !stepped || budget.spent >= budget.max {
            return improved;
        }
        improved = true;
    }
}

/// Every plan one halving-step smaller than `plan`, in deterministic order.
fn one_step_candidates(plan: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    if plan.deadline > 1 {
        let mut c = plan.clone();
        c.deadline /= 2;
        out.push(c);
    }
    for i in 0..plan.events.len() {
        let ev = plan.events[i];
        let mut push = |trigger: Trigger, inject: Inject| {
            let mut c = plan.clone();
            c.events[i].trigger = trigger;
            c.events[i].inject = inject;
            if c.events[i] != plan.events[i] {
                out.push(c);
            }
        };
        match ev.trigger {
            Trigger::AtCycle(at) if at > 0 => push(Trigger::AtCycle(at / 2), ev.inject),
            Trigger::WhenWaiting { thread, after } if after > 0 => push(
                Trigger::WhenWaiting {
                    thread,
                    after: after / 2,
                },
                ev.inject,
            ),
            Trigger::WhenHolding { thread, after } if after > 0 => push(
                Trigger::WhenHolding {
                    thread,
                    after: after / 2,
                },
                ev.inject,
            ),
            _ => {}
        }
        match ev.inject {
            Inject::Suspend {
                thread,
                duration: Some(d),
            } if d > 0 => push(
                ev.trigger,
                Inject::Suspend {
                    thread,
                    duration: Some(d / 2),
                },
            ),
            Inject::WireDelay { period, extra } => {
                if period > 1 {
                    push(
                        ev.trigger,
                        Inject::WireDelay {
                            period: period / 2,
                            extra,
                        },
                    );
                }
                if extra > 0 {
                    push(
                        ev.trigger,
                        Inject::WireDelay {
                            period,
                            extra: extra / 2,
                        },
                    );
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic oracle: "fails" iff some event suspends thread 1 with a
    /// duration of at least 1000 cycles.
    fn trips(plan: &FaultPlan) -> bool {
        plan.events.iter().any(|e| {
            matches!(
                e.inject,
                Inject::Suspend {
                    thread: 1,
                    duration: Some(d),
                } if d >= 1_000
            )
        })
    }

    fn noisy_plan() -> FaultPlan {
        FaultPlan::new()
            .deadline(1_000_000)
            .wire_delay_at(0, 3, 400)
            .migrate_at(5_000, 2, 1)
            .suspend_at(20_000, 1, 64_000)
            .flt_evict_at(30_000, 0)
            .suspend_at(40_000, 0, 9_000)
            .migrate_when_waiting(3, 2_000, 0)
    }

    #[test]
    fn shrinks_to_single_relevant_event() {
        let r = shrink(&noisy_plan(), trips, 10_000);
        assert_eq!(r.plan.events.len(), 1, "kept: {:?}", r.plan.events);
        assert_eq!(r.removed_events, 5);
        assert!(trips(&r.plan));
        // Parameter halving drove the trigger to 0 and the duration to the
        // smallest power-of-two-halving still >= the threshold.
        assert_eq!(r.plan.events[0].trigger, Trigger::AtCycle(0));
        assert_eq!(
            r.plan.events[0].inject,
            Inject::Suspend {
                thread: 1,
                duration: Some(1_000),
            }
        );
        assert_eq!(r.plan.deadline, 1, "deadline halved to the floor");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink(&noisy_plan(), trips, 10_000);
        let b = shrink(&noisy_plan(), trips, 10_000);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let p = FaultPlan::new().migrate_at(100, 0, 1);
        let r = shrink(&p, trips, 10_000);
        assert_eq!(r.plan, p);
        assert_eq!(r.runs, 1);
        assert_eq!(r.removed_events, 0);
    }

    #[test]
    fn budget_bounds_candidate_runs() {
        let r = shrink(&noisy_plan(), trips, 5);
        assert!(r.runs <= 5, "runs = {}", r.runs);
        // Whatever it managed within budget must still trip.
        assert!(trips(&r.plan));
    }

    #[test]
    fn result_is_locally_minimal() {
        let r = shrink(&noisy_plan(), trips, 10_000);
        // No single event can be removed...
        for i in 0..r.plan.events.len() {
            let mut c = r.plan.clone();
            c.events.remove(i);
            assert!(!trips(&c), "event {i} was removable");
        }
        // ...and no single halving still trips.
        for c in one_step_candidates(&r.plan) {
            assert!(!trips(&c), "a halving step still trips: {c:?}");
        }
    }
}
