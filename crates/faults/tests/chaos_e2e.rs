//! End-to-end chaos tests: the quiescence detector turns a wedged run into
//! a structured deadlock verdict (with a blocking chain) instead of a hung
//! or deadline-exhausted process, does not false-positive on healthy
//! congestion or timed suspensions, and the shrinker reduces a fuzzed
//! violation to a tiny plan that still trips the same oracle.

use locksim_core::LcuBackend;
use locksim_faults::fuzz::{generate, FuzzConfig};
use locksim_faults::{
    check_world, shrink, ChaosRow, ChaosWorkload, FaultDriver, FaultPlan, Inject, Trigger,
};
use locksim_machine::{LockBackend, MachineConfig, RunExit, World};
use locksim_swlocks::{SwAlg, SwLockBackend};
use locksim_workloads::{CsThread, IterPool};

const QUIESCE: u64 = 40_000;

fn build_world(backend: &str, wl: &ChaosWorkload, seed: u64) -> World {
    let b: Box<dyn LockBackend> = match backend {
        "lcu" => Box::new(LcuBackend::new()),
        "mcs" => Box::new(SwLockBackend::new(SwAlg::Mcs)),
        "mrsw" => Box::new(SwLockBackend::new(SwAlg::Mrsw)),
        other => panic!("unsupported backend {other}"),
    };
    let mut w = World::new(MachineConfig::model_a(4), b, seed);
    w.mach().tracer_mut().enable(1 << 20);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(u64::from(wl.iters));
    for _ in 0..wl.threads {
        w.spawn(Box::new(
            CsThread::new(lock, data, pool.clone(), wl.write_pct).with_cs_compute(wl.cs_compute),
        ));
    }
    w
}

fn workload(threads: u32, iters: u32, cs_compute: u64) -> ChaosWorkload {
    ChaosWorkload {
        threads,
        iters,
        cs_compute,
        write_pct: 100,
        lrt_pressure: false,
    }
}

/// Runs `plan` on the given case and returns the chaos verdict.
fn verdict(backend: &str, wl: &ChaosWorkload, seed: u64, plan: &FaultPlan) -> String {
    if plan.validate(wl.threads, 4).is_err() {
        return "invalid".to_string();
    }
    let mut w = build_world(backend, wl, seed);
    let out = FaultDriver::new(plan.clone()).run_detected(&mut w, QUIESCE);
    let violations = check_world(&mut w, plan, &out.windows, out.end_cycle);
    ChaosRow::verdict_of(&out, &violations).to_string()
}

/// Two MCS threads; suspend the holder indefinitely mid-critical-section.
/// The waiter can never proceed and nothing in the plan can unwedge it.
fn wedge_plan() -> FaultPlan {
    FaultPlan::new().horizon(60_000).deadline(2_000_000).event(
        Trigger::WhenHolding {
            thread: 0,
            after: 200,
        },
        Inject::Suspend {
            thread: 0,
            duration: None,
        },
    )
}

#[test]
fn wedged_holder_yields_structured_deadlock_verdict() {
    let wl = workload(2, 40, 200);
    let mut w = build_world("mcs", &wl, 5);
    let plan = wedge_plan();
    let out = FaultDriver::new(plan.clone()).run_detected(&mut w, QUIESCE);

    let report = out.deadlock.as_ref().expect("detector must fire");
    assert!(report.waiters >= 1, "report: {report:?}");
    assert!(!report.chain.is_empty(), "blocking chain must be dumped");
    assert!(
        report.chain.contains("suspended"),
        "chain must show the suspended holder: {}",
        report.chain
    );
    assert!(
        out.end_cycle < plan.deadline,
        "detector must cut the run short of the deadline (ended {})",
        out.end_cycle
    );

    // The structured verdict outranks the liveness fallout it implies.
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    assert_eq!(ChaosRow::verdict_of(&out, &violations), "DEADLOCK");

    // Downstream visibility: trace record and metrics counter.
    assert_eq!(
        w.mach()
            .tracer()
            .events()
            .filter(|e| e.kind.name() == "deadlock")
            .count(),
        1
    );
    assert_eq!(
        w.mach_ref().metrics().counters().get("deadlocks_detected"),
        1
    );
}

#[test]
fn wedged_runs_are_byte_deterministic() {
    let run = || {
        let wl = workload(2, 40, 200);
        let mut w = build_world("mcs", &wl, 5);
        let out = FaultDriver::new(wedge_plan()).run_detected(&mut w, QUIESCE);
        let r = out.deadlock.expect("detector must fire");
        (out.end_cycle, r.at, r.chain, w.mach().tracer().len())
    };
    assert_eq!(run(), run());
}

#[test]
fn healthy_congested_run_is_not_flagged() {
    // Four LCU threads hammering one lock with long critical sections:
    // heavily contended, but grants keep flowing — the detector must stay
    // silent and the run must finish.
    let wl = workload(4, 160, 800);
    let mut w = build_world("lcu", &wl, 7);
    let plan = FaultPlan::new().horizon(30_000).deadline(6_000_000);
    let out = FaultDriver::new(plan.clone()).run_detected(&mut w, QUIESCE);
    assert!(out.deadlock.is_none(), "false positive: {:?}", out.deadlock);
    assert_eq!(out.exit, RunExit::AllFinished);
}

#[test]
fn timed_suspension_is_not_mistaken_for_deadlock() {
    // An MCS waiter suspended for 120k cycles freezes lock progress far
    // longer than the quiescence window; only the pending auto-resume
    // tells the detector this wedge will clear itself. The run must end in
    // a liveness verdict (successors stalled past the horizon), not a
    // deadlock one.
    let wl = workload(4, 120, 0);
    let mut w = build_world("mcs", &wl, 7);
    let plan = FaultPlan::new()
        .horizon(30_000)
        .deadline(6_000_000)
        .suspend_when_waiting(1, 200, 120_000);
    let out = FaultDriver::new(plan.clone()).run_detected(&mut w, QUIESCE);
    assert!(
        out.deadlock.is_none(),
        "auto-resume pending — not a deadlock: {:?}",
        out.deadlock
    );
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    assert_eq!(ChaosRow::verdict_of(&out, &violations), "LIVENESS");
}

#[test]
fn shrinker_reduces_fuzzed_violation_to_at_most_four_events() {
    // Deterministic search: the first violating fuzz seed is the same on
    // every run, so this pins a concrete seeded case without hardcoding
    // generator internals.
    let cfg = FuzzConfig {
        backends: vec!["lcu", "mcs", "mrsw"],
        iters: (40, 100),
        deadline: 400_000,
        ..FuzzConfig::default()
    };
    let mut found = None;
    for seed in 0..64 {
        let case = generate(seed, &cfg);
        let v = verdict(case.backend, &case.workload, seed, &case.plan);
        if v != "pass" {
            found = Some((case, v));
            break;
        }
    }
    let (case, original) = found.expect("some fuzz seed in 0..64 must violate");
    let events_before = case.plan.events.len();
    let wl = case.workload;
    let backend = case.backend;
    let seed = case.seed;

    let result = shrink(
        &case.plan,
        |p| verdict(backend, &wl, seed, p) == original,
        120,
    );
    assert!(
        result.plan.events.len() <= 4,
        "shrunk {} -> {} events (verdict {original}): {:?}",
        events_before,
        result.plan.events.len(),
        result.plan.events
    );
    // The minimal plan still trips the same oracle, deterministically.
    assert_eq!(verdict(backend, &wl, seed, &result.plan), original);
    assert_eq!(verdict(backend, &wl, seed, &result.plan), original);
}
