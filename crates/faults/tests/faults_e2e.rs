//! End-to-end fault-injection tests: the LCU survives the adversarial
//! schedules (suspension, forced migration) that stall a software MCS
//! queue, and driven runs are deterministic under a fixed seed.

use locksim_core::LcuBackend;
use locksim_faults::{check_world, csv, FaultDriver, FaultPlan, MatrixCell};
use locksim_machine::{LockBackend, MachineConfig, RunExit, World};
use locksim_swlocks::{SwAlg, SwLockBackend};
use locksim_workloads::{CsThread, IterPool};

const THREADS: usize = 4;
const ITERS: u64 = 120;

/// Builds a small model-A world with `THREADS` threads hammering one lock
/// in write mode, trace ring armed wide enough to keep every event.
fn world(backend: Box<dyn LockBackend>, seed: u64) -> World {
    let mut w = World::new(MachineConfig::model_a(4), backend, seed);
    w.mach().tracer_mut().enable(1 << 20);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(ITERS);
    for _ in 0..THREADS {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), 100)));
    }
    w
}

/// Suspends thread 1 for 60k cycles once it is queued on the lock.
fn suspend_plan() -> FaultPlan {
    FaultPlan::new()
        .horizon(30_000)
        .deadline(2_000_000)
        .suspend_when_waiting(1, 200, 60_000)
}

#[test]
fn lcu_survives_waiter_suspension() {
    let mut w = world(Box::new(LcuBackend::new()), 7);
    let plan = suspend_plan();
    let out = FaultDriver::new(plan.clone()).run(&mut w);
    assert_eq!(out.exit, RunExit::AllFinished, "LCU run must complete");
    assert!(out.injections_applied() >= 1, "suspension must have fired");
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    assert!(
        violations.is_empty(),
        "LCU passes grants around a suspended waiter: {violations:?}"
    );
}

#[test]
fn lcu_survives_forced_migration() {
    let mut w = world(Box::new(LcuBackend::new()), 7);
    // Bounce thread 1 across cores while it is waiting; core 0 is occupied,
    // so each migration also evicts a victim.
    let plan = FaultPlan::new()
        .horizon(30_000)
        .deadline(2_000_000)
        .migrate_when_waiting(1, 200, 3)
        .migrate_at(2_000, 1, 0)
        .migrate_at(4_000, 1, 2);
    let out = FaultDriver::new(plan.clone()).run(&mut w);
    assert_eq!(out.exit, RunExit::AllFinished, "LCU run must complete");
    assert!(out.injections_applied() >= 2);
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    assert!(
        violations.is_empty(),
        "LCU reissues requests after migration: {violations:?}"
    );
}

#[test]
fn mcs_stalls_behind_suspended_waiter() {
    let mut w = world(Box::new(SwLockBackend::new(SwAlg::Mcs)), 7);
    let plan = suspend_plan();
    let out = FaultDriver::new(plan.clone()).run(&mut w);
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    let liveness: Vec<_> = violations
        .iter()
        .filter(|v| v.oracle == "liveness")
        .collect();
    assert!(
        !liveness.is_empty(),
        "MCS successors must stall past the horizon behind a suspended \
         queue node (exit {:?}, end {})",
        out.exit,
        out.end_cycle
    );
    // The suspended thread itself is exempt — the violations must name a
    // runnable successor.
    assert!(
        liveness.iter().any(|v| v.thread != 1),
        "stall must be charged to a runnable successor: {liveness:?}"
    );
    // Violations are visible downstream: trace ring and counters.
    let recorded = w
        .mach()
        .tracer()
        .events()
        .filter(|e| e.kind.name() == "oracle_violation")
        .count();
    assert_eq!(recorded, violations.len());
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let run = || {
        let mut w = world(Box::new(LcuBackend::new()), 11);
        let plan = suspend_plan();
        let out = FaultDriver::new(plan.clone()).run(&mut w);
        let finished = out.exit == RunExit::AllFinished;
        let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
        let cell = MatrixCell::from_run("lcu", "suspend", &out, &violations, finished);
        (
            csv(&[cell]),
            w.mach().now().cycles(),
            w.mach().tracer().len(),
        )
    };
    let (csv_a, end_a, trace_a) = run();
    let (csv_b, end_b, trace_b) = run();
    assert_eq!(csv_a, csv_b, "same seed must produce byte-identical CSV");
    assert_eq!(end_a, end_b);
    assert_eq!(trace_a, trace_b);
}

#[test]
fn scenario_text_round_trip_drives_a_run() {
    let text = "\
# suspend a queued waiter, then bound the run
horizon 30000
deadline 2000000
when-waiting 1 after 200 suspend 1 for 60000
";
    let plan = FaultPlan::parse(text).expect("scenario parses");
    let mut w = world(Box::new(LcuBackend::new()), 7);
    let out = FaultDriver::new(plan.clone()).run(&mut w);
    assert_eq!(out.exit, RunExit::AllFinished);
    assert!(check_world(&mut w, &plan, &out.windows, out.end_cycle).is_empty());
}
