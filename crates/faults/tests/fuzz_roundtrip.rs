//! Property test: the plan/scenario text formats round-trip —
//! `parse(format(x)) == x` — under the chaos fuzzer's own generator, plus
//! explicit boundary cases the generator is unlikely to hit.

use locksim_faults::fuzz::{generate, FuzzConfig};
use locksim_faults::{ChaosScenario, FaultPlan, Inject, Trigger};

#[test]
fn plan_format_round_trips_under_the_fuzzers_generator() {
    let cfg = FuzzConfig::default();
    for seed in 0..256 {
        let case = generate(seed, &cfg);
        let text = case.plan.format();
        let back = FaultPlan::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: formatted plan fails to parse: {e}\n{text}"));
        assert_eq!(back, case.plan, "seed {seed} round-trip mismatch:\n{text}");
    }
}

#[test]
fn scenario_format_round_trips_under_the_fuzzers_generator() {
    let cfg = FuzzConfig::default();
    for seed in 0..256 {
        let mut sc = ChaosScenario::from_case(&generate(seed, &cfg));
        // Exercise every expect value the soak runner can emit.
        sc.expect = ["none", "liveness", "fairness", "exclusion", "deadlock"][seed as usize % 5]
            .to_string();
        let text = sc.format();
        let back = ChaosScenario::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: formatted scenario fails parse: {e}"));
        assert_eq!(back, sc, "seed {seed} round-trip mismatch:\n{text}");
    }
}

#[test]
fn boundary_cycles_and_every_event_kind_round_trip() {
    // Cycle 0, u64::MAX triggers/durations/thresholds, indefinite suspend,
    // and one of every injection kind — beyond what the fuzzer generates.
    let plan = FaultPlan::new()
        .horizon(0)
        .fairness_k(u64::MAX)
        .poll(1)
        .deadline(u64::MAX)
        .event(
            Trigger::AtCycle(0),
            Inject::Suspend {
                thread: 0,
                duration: Some(0),
            },
        )
        .event(
            Trigger::AtCycle(u64::MAX),
            Inject::Suspend {
                thread: u32::MAX,
                duration: Some(u64::MAX),
            },
        )
        .event(
            Trigger::WhenWaiting {
                thread: 0,
                after: 0,
            },
            Inject::Suspend {
                thread: 0,
                duration: None,
            },
        )
        .event(
            Trigger::WhenHolding {
                thread: u32::MAX,
                after: u64::MAX,
            },
            Inject::Resume { thread: u32::MAX },
        )
        .event(
            Trigger::AtCycle(1),
            Inject::Migrate {
                thread: 0,
                to_core: u32::MAX,
            },
        )
        .event(Trigger::AtCycle(2), Inject::FltEvict { core: 0 })
        .event(
            Trigger::AtCycle(3),
            Inject::WireDelay {
                period: 1,
                extra: 0,
            },
        )
        .event(
            Trigger::AtCycle(4),
            Inject::WireDelay {
                period: u64::MAX,
                extra: u64::MAX,
            },
        )
        .event(Trigger::AtCycle(5), Inject::WireClear);
    let text = plan.format();
    let back = FaultPlan::parse(&text).expect("boundary plan parses");
    assert_eq!(back, plan, "boundary round-trip mismatch:\n{text}");
}

#[test]
fn generated_plans_stay_within_generator_invariants() {
    // The documented generator invariants, re-checked from the outside:
    // ids in range, wire-delay period >= 1, exact triggers before the
    // deadline, and validate() passing for the case's own shape.
    let cfg = FuzzConfig::default();
    for seed in 0..256 {
        let case = generate(seed, &cfg);
        assert!(case
            .plan
            .validate(case.workload.threads, cfg.n_cores)
            .is_ok());
        for ev in &case.plan.events {
            if let Trigger::AtCycle(at) = ev.trigger {
                assert!(
                    at < case.plan.deadline,
                    "seed {seed}: trigger past deadline"
                );
            }
            if let Inject::WireDelay { period, .. } = ev.inject {
                assert!(period >= 1, "seed {seed}: zero wire period");
            }
        }
    }
}
