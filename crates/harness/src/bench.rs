//! The `benchsim` bin's workload: a fixed, standardized scenario suite
//! measured on the host (wall time, simulated-cycles/sec, events/sec,
//! event-queue waterlines, allocation churn), emitted as machine-readable
//! `BENCH_NNNN.json` and compared against a checked-in baseline.
//!
//! This seeds the performance trajectory ROADMAP item 2 is judged
//! against: every optimization PR records a new `BENCH_NNNN.json` at the
//! repo root, and CI runs the comparator against the latest checked-in
//! baseline so a wall-time or allocation regression fails the gate.
//!
//! The suite mixes the three simulator workload families:
//! representative figure-panel microbenchmarks (`micro/*`), two faultsim
//! matrix cells (`faultsim/*` — including the MCS suspend cell that runs
//! to its liveness deadline), and two chaos fuzz seeds (`chaos/*`).
//! Scenario sizes are fixed constants — deliberately independent of
//! `LOCKSIM_QUICK` — so any two runs of the same suite are comparable;
//! `--quick` selects a smaller suite (named `quick`) for local iteration,
//! and the comparator refuses to compare reports from different suites.
//!
//! Simulation-derived fields (`sim_cycles`, `events`, `peak_queue`) are
//! deterministic for a given suite, so the comparator requires them to
//! match the baseline *exactly* — a mismatch means the simulation itself
//! changed and a new baseline must be recorded, not that the machine was
//! slow. Host-derived fields (wall time, allocations) are compared with a
//! multiplicative tolerance.

use std::path::PathBuf;
use std::time::Instant;

use locksim_faults::{generate, FuzzConfig};
use locksim_machine::MetricsSnapshot;
use locksim_report::json;
use locksim_swlocks::SwAlg;
use locksim_trace::alloc;

use crate::chaos::{run_chaos, DEFAULT_QUIESCE};
use crate::faultsim::{run_cell_observed, FaultClass, FaultsimCfg};
use crate::run::{run_microbench, BackendKind, ModelSel};
use crate::table::Table;
use crate::{finish_bin, obs};

/// Schema tag written to (and required of) every bench report.
pub const SCHEMA: &str = "locksim-bench-v1";

/// Default multiplicative tolerance for host-derived comparisons.
pub const DEFAULT_TOLERANCE: f64 = 2.0;

/// Simulation-side outputs of one scenario (deterministic per suite).
#[derive(Debug, Clone, Copy)]
struct SimStats {
    sim_cycles: u64,
    events: u64,
    peak_queue: u64,
}

impl SimStats {
    /// Pulls the event-queue telemetry out of an end-of-run snapshot.
    fn from_snapshot(end_cycle: u64, snap: &MetricsSnapshot) -> SimStats {
        SimStats {
            sim_cycles: end_cycle,
            events: snap.counters.get("evq_events"),
            peak_queue: snap.counters.get("evq_peak_pending"),
        }
    }
}

/// One measured scenario: the simulation-derived fields plus the host-side
/// wall time and allocation churn.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name (`family/variant/...`), the comparator's join key.
    pub name: String,
    /// Host wall time of the scenario, in milliseconds.
    pub wall_ms: f64,
    /// Simulated cycles the scenario covered.
    pub sim_cycles: u64,
    /// Simulation events dispatched.
    pub events: u64,
    /// Event-queue occupancy high-water mark.
    pub peak_queue: u64,
    /// Heap allocations during the scenario (0 when not counting).
    pub allocs: u64,
    /// Bytes allocated during the scenario.
    pub alloc_bytes: u64,
    /// Peak live heap bytes during the scenario.
    pub peak_bytes: u64,
}

impl ScenarioResult {
    /// Simulated events per host second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.events as f64 / (self.wall_ms / 1_000.0)
        }
    }

    /// Simulated megacycles per host second.
    pub fn mcycles_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / 1e6 / (self.wall_ms / 1_000.0)
        }
    }
}

/// A full bench run: which suite ran, whether the counting allocator was
/// installed (the `benchsim` bin installs it; library/test callers don't),
/// and the per-scenario measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (`standard` or `quick`).
    pub suite: String,
    /// Whether allocation counters were live (comparing allocation fields
    /// is only meaningful when both reports counted).
    pub alloc_counting: bool,
    /// Per-scenario measurements, in suite order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Runs one scenario body under the measurement bracket: wall clock plus
/// allocation deltas, with the peak-live waterline reset so `peak_bytes`
/// is per-phase.
///
/// Wall clock covers the whole body, but the allocation numbers come from
/// the run-phase window the simulator's event loop brackets itself with
/// ([`alloc::take_run_phase`]): world construction, metrics snapshotting
/// and report assembly are excluded, so the counters measure per-event
/// churn only.
fn measure(name: &str, body: impl FnOnce() -> SimStats) -> ScenarioResult {
    alloc::reset_peak();
    let _ = alloc::take_run_phase();
    let t0 = Instant::now();
    let sim = body();
    let wall_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    let after = alloc::take_run_phase().unwrap_or_default();
    ScenarioResult {
        name: name.to_string(),
        wall_ms,
        sim_cycles: sim.sim_cycles,
        events: sim.events,
        peak_queue: sim.peak_queue,
        allocs: after.allocs,
        alloc_bytes: after.bytes_allocated,
        peak_bytes: after.peak_bytes,
    }
}

fn micro_stats(
    model: ModelSel,
    backend: BackendKind,
    threads: usize,
    write_pct: u32,
    iters: u64,
) -> SimStats {
    let r = run_microbench(model, backend, threads, write_pct, iters, 42);
    SimStats {
        sim_cycles: r.total_cycles,
        events: r.metrics.counters.get("evq_events"),
        peak_queue: r.metrics.counters.get("evq_peak_pending"),
    }
}

fn faultsim_stats(backend: BackendKind, class: FaultClass, iters: u64) -> SimStats {
    // Fixed sizes (not `scaled`): suite results must not depend on
    // LOCKSIM_QUICK.
    let cfg = FaultsimCfg {
        threads: 4,
        iters,
        seed: 42,
        horizon: 30_000,
    };
    let (cell, snap) = run_cell_observed(backend, class, &cfg);
    SimStats::from_snapshot(cell.end_cycle, &snap)
}

fn chaos_stats(seed: u64) -> SimStats {
    let case = generate(seed, &FuzzConfig::default());
    let run = run_chaos(
        case.backend,
        &case.workload,
        seed,
        &case.plan,
        DEFAULT_QUIESCE,
    )
    .unwrap_or_else(|e| panic!("chaos seed {seed} generated an unrunnable case: {e}"));
    SimStats::from_snapshot(run.outcome.end_cycle, &run.metrics)
}

/// Runs the suite and collects the report. `quick` selects the smaller
/// `quick` suite; otherwise the `standard` suite that baselines are
/// recorded on.
pub fn run_suite(quick: bool) -> BenchReport {
    let micro_iters: u64 = if quick { 1_000 } else { 6_000 };
    let fault_iters: u64 = if quick { 100 } else { 400 };
    let mut scenarios = Vec::new();
    let micro = |name: &str, model, backend, threads, wp| {
        eprintln!("benchsim: running {name} ...");
        measure(name, || {
            micro_stats(model, backend, threads, wp, micro_iters)
        })
    };
    scenarios.push(micro(
        "micro/lcu/a16w100",
        ModelSel::A,
        BackendKind::Lcu,
        16,
        100,
    ));
    scenarios.push(micro(
        "micro/lcu+flt/a16w100",
        ModelSel::A,
        BackendKind::LcuFlt,
        16,
        100,
    ));
    scenarios.push(micro(
        "micro/ssb/a16w100",
        ModelSel::A,
        BackendKind::Ssb,
        16,
        100,
    ));
    scenarios.push(micro(
        "micro/mcs/a16w100",
        ModelSel::A,
        BackendKind::Sw(SwAlg::Mcs),
        16,
        100,
    ));
    scenarios.push(micro(
        "micro/bravo/a16w10",
        ModelSel::A,
        BackendKind::Sw(SwAlg::Bravo),
        16,
        10,
    ));
    scenarios.push(micro(
        "micro/fissile/a16w10",
        ModelSel::A,
        BackendKind::Sw(SwAlg::Fissile),
        16,
        10,
    ));
    scenarios.push(micro(
        "micro/lcu/a32w50",
        ModelSel::A,
        BackendKind::Lcu,
        32,
        50,
    ));
    for (name, backend) in [
        ("faultsim/lcu/suspend", BackendKind::Lcu),
        ("faultsim/mcs/suspend", BackendKind::Sw(SwAlg::Mcs)),
    ] {
        eprintln!("benchsim: running {name} ...");
        scenarios.push(measure(name, || {
            faultsim_stats(backend, FaultClass::Suspend, fault_iters)
        }));
    }
    let chaos_seeds: &[u64] = if quick { &[0] } else { &[0, 8] };
    for &seed in chaos_seeds {
        let name = format!("chaos/s{seed}");
        eprintln!("benchsim: running {name} ...");
        scenarios.push(measure(&name, || chaos_stats(seed)));
    }
    BenchReport {
        suite: if quick { "quick" } else { "standard" }.to_string(),
        alloc_counting: alloc::snapshot().installed,
        scenarios,
    }
}

// ---------------------------------------------------------------------------
// JSON emit / parse (hand-rolled: the workspace deliberately has no serde)
// ---------------------------------------------------------------------------

impl BenchReport {
    /// Serializes in a fixed key order, so reports diff cleanly.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"suite\": \"{}\",\n", self.suite));
        s.push_str(&format!("  \"alloc_counting\": {},\n", self.alloc_counting));
        s.push_str("  \"scenarios\": [\n");
        for (i, sc) in self.scenarios.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"sim_cycles\": {}, \
                 \"events\": {}, \"events_per_sec\": {:.0}, \"mcycles_per_sec\": {:.2}, \
                 \"peak_queue\": {}, \"allocs\": {}, \"alloc_bytes\": {}, \"peak_bytes\": {}}}{}\n",
                sc.name,
                sc.wall_ms,
                sc.sim_cycles,
                sc.events,
                sc.events_per_sec(),
                sc.mcycles_per_sec(),
                sc.peak_queue,
                sc.allocs,
                sc.alloc_bytes,
                sc.peak_bytes,
                if i + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a report produced by [`BenchReport::to_json`] (or any JSON
    /// with the same shape).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong `schema` tag, or a
    /// missing required field.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text)?;
        let schema = v.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let suite = v.get_str("suite")?.to_string();
        let alloc_counting = v.get_bool("alloc_counting")?;
        let mut scenarios = Vec::new();
        for item in v.get_arr("scenarios")? {
            scenarios.push(ScenarioResult {
                name: item.get_str("name")?.to_string(),
                wall_ms: item.get_num("wall_ms")?,
                sim_cycles: item.get_num("sim_cycles")? as u64,
                events: item.get_num("events")? as u64,
                peak_queue: item.get_num("peak_queue")? as u64,
                allocs: item.get_num("allocs")? as u64,
                alloc_bytes: item.get_num("alloc_bytes")? as u64,
                peak_bytes: item.get_num("peak_bytes")? as u64,
            });
        }
        Ok(BenchReport {
            suite,
            alloc_counting,
            scenarios,
        })
    }
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

/// The comparator's verdict: the regression table plus pass/fail.
#[derive(Debug)]
pub struct Comparison {
    /// One row per compared metric.
    pub table: Table,
    /// Human-readable failure reasons (empty when the gate passes).
    pub failures: Vec<String>,
}

impl Comparison {
    /// Whether the current report passes against the baseline.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn ratio(cur: f64, base: f64) -> f64 {
    if base <= 0.0 {
        if cur <= 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        cur / base
    }
}

/// Compares `cur` against `base` with multiplicative tolerance `tol` on
/// the host-derived fields. Deterministic simulation fields must match
/// exactly; host fields fail only on *regression* (`cur > base * tol`) so
/// a faster run always passes.
///
/// # Errors
///
/// Returns a message when the reports are not comparable (different
/// suites).
pub fn compare(base: &BenchReport, cur: &BenchReport, tol: f64) -> Result<Comparison, String> {
    if base.suite != cur.suite {
        return Err(format!(
            "suite mismatch: baseline is {:?}, current is {:?} — record a baseline with the \
             same suite",
            base.suite, cur.suite
        ));
    }
    let mut table = Table::new(
        format!(
            "benchsim — current vs baseline ({} suite, tolerance {tol}x on host metrics)",
            cur.suite
        ),
        &["scenario", "metric", "baseline", "current", "ratio", "gate"],
    );
    let mut failures = Vec::new();
    let check_alloc = base.alloc_counting && cur.alloc_counting;
    for b in &base.scenarios {
        let Some(c) = cur.scenarios.iter().find(|c| c.name == b.name) else {
            failures.push(format!("scenario {} missing from current run", b.name));
            continue;
        };
        // Deterministic fields: exact match or the simulation changed.
        for (metric, bv, cv) in [
            ("sim_cycles", b.sim_cycles, c.sim_cycles),
            ("events", b.events, c.events),
            ("peak_queue", b.peak_queue, c.peak_queue),
        ] {
            let ok = bv == cv;
            table.push(vec![
                b.name.clone(),
                metric.to_string(),
                bv.to_string(),
                cv.to_string(),
                format!("{:.3}", ratio(cv as f64, bv as f64)),
                if ok { "ok (exact)" } else { "SIM DRIFT" }.to_string(),
            ]);
            if !ok {
                failures.push(format!(
                    "{}: {metric} drifted {bv} -> {cv} (simulation changed; record a new \
                     BENCH_NNNN.json baseline)",
                    b.name
                ));
            }
        }
        // Host fields: one-sided tolerance.
        let mut host = vec![("wall_ms", b.wall_ms, c.wall_ms)];
        if check_alloc {
            host.push(("allocs", b.allocs as f64, c.allocs as f64));
            host.push(("alloc_bytes", b.alloc_bytes as f64, c.alloc_bytes as f64));
            host.push(("peak_bytes", b.peak_bytes as f64, c.peak_bytes as f64));
        }
        for (metric, bv, cv) in host {
            let r = ratio(cv, bv);
            let ok = r <= tol;
            table.push(vec![
                b.name.clone(),
                metric.to_string(),
                format!("{bv:.3}"),
                format!("{cv:.3}"),
                format!("{r:.3}"),
                if ok { "ok" } else { "REGRESSION" }.to_string(),
            ]);
            if !ok {
                failures.push(format!(
                    "{}: {metric} regressed {r:.2}x (baseline {bv:.3}, current {cv:.3}, \
                     tolerance {tol}x)",
                    b.name
                ));
            }
        }
    }
    for c in &cur.scenarios {
        if !base.scenarios.iter().any(|b| b.name == c.name) {
            // New scenarios are informational, not failures: baselines
            // only gate what they recorded.
            table.push(vec![
                c.name.clone(),
                "(new scenario)".to_string(),
                "-".to_string(),
                format!("{:.3}", c.wall_ms),
                "-".to_string(),
                "ok (unguarded)".to_string(),
            ]);
        }
    }
    Ok(Comparison { table, failures })
}

/// Renders the wall-time / sim-cycle trajectory across a list of baseline
/// reports plus the current run: one column per baseline (in the given
/// order — chronological when the `BENCH_NNNN.json` naming is followed)
/// and a final `current` column. Scenarios absent from a report render as
/// `-`.
pub fn trend_table(history: &[(String, BenchReport)], cur: &BenchReport) -> Table {
    let mut header: Vec<String> = vec!["scenario".to_string(), "metric".to_string()];
    header.extend(history.iter().map(|(name, _)| name.clone()));
    header.push("current".to_string());
    let cols: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "benchsim — trajectory across {} baseline(s) ({} suite)",
            history.len(),
            cur.suite
        ),
        &cols,
    );
    let cell = |r: &BenchReport, name: &str, wall: bool| -> String {
        r.scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| {
                if wall {
                    format!("{:.1}", s.wall_ms)
                } else {
                    s.sim_cycles.to_string()
                }
            })
            .unwrap_or_else(|| "-".to_string())
    };
    for s in &cur.scenarios {
        for (metric, wall) in [("wall_ms", true), ("sim_cycles", false)] {
            let mut row = vec![s.name.clone(), metric.to_string()];
            for (_, b) in history {
                row.push(cell(b, &s.name, wall));
            }
            row.push(cell(cur, &s.name, wall));
            t.push(row);
        }
    }
    t
}

/// Finds the latest checked-in trajectory baseline (`BENCH_<digits>.json`)
/// in `dir`, skipping non-numbered files such as `BENCH_current.json` so a
/// previous uncommitted run never becomes the gate.
pub fn latest_numbered_baseline(dir: &std::path::Path) -> Option<PathBuf> {
    locksim_report::discover_benches(dir)
        .into_iter()
        .rfind(|p| {
            p.file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.strip_prefix("BENCH_"))
                .is_some_and(|n| !n.is_empty() && n.bytes().all(|b| b.is_ascii_digit()))
        })
}

/// Renders the measured suite as the bin's stdout table.
pub fn report_table(r: &BenchReport) -> Table {
    let mut t = Table::new(
        format!(
            "benchsim — {} suite (alloc counting {})",
            r.suite,
            if r.alloc_counting { "on" } else { "off" }
        ),
        &[
            "scenario",
            "wall ms",
            "sim cycles",
            "events",
            "events/s",
            "Mcyc/s",
            "peak queue",
            "allocs",
            "alloc MB",
            "peak MB",
        ],
    );
    for s in &r.scenarios {
        t.push(vec![
            s.name.clone(),
            format!("{:.1}", s.wall_ms),
            s.sim_cycles.to_string(),
            s.events.to_string(),
            format!("{:.0}", s.events_per_sec()),
            format!("{:.2}", s.mcycles_per_sec()),
            s.peak_queue.to_string(),
            s.allocs.to_string(),
            format!("{:.2}", s.alloc_bytes as f64 / 1e6),
            format!("{:.2}", s.peak_bytes as f64 / 1e6),
        ]);
    }
    t
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: benchsim [--quick] [--out <path>] [--baseline <BENCH_NNNN.json>]... \
         [--no-baseline] [--tolerance <x>] \
         [shared flags: --trace/--lockstat/--self-profile ...]\n\
         \n\
         With no --baseline, the latest checked-in BENCH_<digits>.json in the\n\
         current directory gates the run; --baseline may repeat — the gate\n\
         compares against the last one and the full list renders as a\n\
         trajectory table. --no-baseline skips the gate entirely."
    );
    std::process::exit(2);
}

/// Entry point of the `benchsim` bin (shared by the root-package shim):
/// runs the suite, writes the JSON report, prints the regression table
/// against the baseline(s), and exits non-zero past the tolerance.
///
/// Baseline selection: every `--baseline` (repeatable, in order) joins the
/// trajectory table and the *last* one is the gate; with none given, the
/// latest checked-in `BENCH_<digits>.json` in the current directory is
/// auto-discovered, and `--no-baseline` disables gating.
pub fn cli_main() {
    // `--baseline` repeats, which the uniform flag parser's map cannot
    // hold — strip its occurrences first, in order.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut baselines: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--baseline" {
            if i + 1 >= args.len() {
                usage_exit("--baseline requires a value");
            }
            baselines.push(PathBuf::from(args.remove(i + 1)));
            args.remove(i);
        } else {
            i += 1;
        }
    }
    let flags = [
        obs::BinFlag {
            name: "--quick",
            takes_value: false,
        },
        obs::BinFlag {
            name: "--no-baseline",
            takes_value: false,
        },
        obs::BinFlag {
            name: "--out",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--tolerance",
            takes_value: true,
        },
    ];
    let (opts, extras) = match obs::parse_bin_cli(&args, &flags) {
        Ok(x) => x,
        Err(msg) => usage_exit(&msg),
    };
    obs::apply_opts(&opts);
    let quick = extras.contains_key("--quick");
    let out_path = extras
        .get("--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_current.json"));
    let tolerance = match extras.get("--tolerance") {
        None => DEFAULT_TOLERANCE,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t >= 1.0 => t,
            _ => usage_exit(&format!(
                "--tolerance: invalid factor {v:?} (must be >= 1.0)"
            )),
        },
    };
    let mut auto_discovered = false;
    if baselines.is_empty() && !extras.contains_key("--no-baseline") {
        match latest_numbered_baseline(std::path::Path::new(".")) {
            Some(p) => {
                eprintln!("benchsim: auto-discovered baseline {}", p.display());
                baselines.push(p);
                auto_discovered = true;
            }
            None => eprintln!("benchsim: no BENCH_<digits>.json baseline found — running ungated"),
        }
    }

    let report = run_suite(quick);
    println!("{}", report_table(&report).markdown());
    if let Some(dir) = out_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create bench output dir");
    }
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("write bench report {}: {e}", out_path.display()));
    eprintln!("benchsim: wrote {}", out_path.display());

    let history: Vec<(String, BenchReport)> = baselines
        .iter()
        .map(|bp| {
            let text = std::fs::read_to_string(bp)
                .unwrap_or_else(|e| usage_exit(&format!("read baseline {}: {e}", bp.display())));
            let base = BenchReport::from_json(&text)
                .unwrap_or_else(|e| usage_exit(&format!("parse baseline {}: {e}", bp.display())));
            let name = bp
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| bp.display().to_string());
            (name, base)
        })
        .collect();
    // The full history (even one entry) renders the trajectory; only
    // same-suite baselines join it — the gate still rejects a mismatch.
    let same_suite: Vec<(String, BenchReport)> = history
        .iter()
        .filter(|(_, b)| b.suite == report.suite)
        .cloned()
        .collect();
    if !same_suite.is_empty() {
        println!("{}", trend_table(&same_suite, &report).markdown());
    }

    let mut failed = false;
    let mut gate_verdicts: Vec<(String, String)> = Vec::new();
    if let Some((name, base)) = history.last() {
        match compare(base, &report, tolerance) {
            Ok(cmp) => {
                println!("{}", cmp.table.markdown());
                if cmp.ok() {
                    eprintln!("benchsim: PASS against {name}");
                } else {
                    for f in &cmp.failures {
                        eprintln!("benchsim: FAIL {f}");
                    }
                    failed = true;
                }
                gate_verdicts.push((
                    "gate".to_string(),
                    if cmp.ok() { "pass" } else { "fail" }.to_string(),
                ));
                gate_verdicts.push(("baseline".to_string(), name.clone()));
            }
            // An auto-discovered baseline of a different suite (e.g. a
            // --quick run next to the checked-in standard trajectory) is
            // not an error — the gate just doesn't apply.
            Err(msg) if auto_discovered => {
                eprintln!("benchsim: skipping gate — {msg}");
                gate_verdicts.push(("gate".to_string(), "skipped".to_string()));
            }
            Err(msg) => usage_exit(&msg),
        }
    }
    write_gate_manifest(&report, &gate_verdicts);
    finish_bin("benchsim");
    if failed {
        std::process::exit(1);
    }
}

/// Writes the comparator's own ledger manifest (bin `benchsim`, label
/// `gate`): the suite name as config, the summed simulated cycles, and the
/// gate verdicts — so the dashboard's verdict matrix shows the perf gate
/// next to the oracle verdicts. Ungated runs record `gate: ungated`.
fn write_gate_manifest(report: &BenchReport, gate_verdicts: &[(String, String)]) {
    let empty = MetricsSnapshot {
        counters: Default::default(),
        hists: Vec::new(),
        sketches: Vec::new(),
    };
    let mut verdicts: Vec<locksim_report::Verdict> = gate_verdicts
        .iter()
        .map(|(name, verdict)| locksim_report::Verdict {
            name: name.clone(),
            verdict: verdict.clone(),
        })
        .collect();
    if verdicts.is_empty() {
        verdicts.push(locksim_report::Verdict {
            name: "gate".to_string(),
            verdict: "ungated".to_string(),
        });
    }
    let total_cycles: u64 = report.scenarios.iter().map(|s| s.sim_cycles).sum();
    let m = locksim_report::RunManifest::from_snapshot(
        "benchsim",
        "gate",
        &report.suite,
        0,
        total_cycles,
        verdicts,
        &empty,
        None,
    );
    let dir = std::path::Path::new("results/runs");
    locksim_report::write_manifest(dir, &m)
        .unwrap_or_else(|e| panic!("write gate manifest to {}: {e}", dir.display()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(suite: &str, wall: f64, cycles: u64, allocs: u64) -> BenchReport {
        BenchReport {
            suite: suite.to_string(),
            alloc_counting: true,
            scenarios: vec![ScenarioResult {
                name: "micro/x".to_string(),
                wall_ms: wall,
                sim_cycles: cycles,
                events: 10 * cycles,
                peak_queue: 7,
                allocs,
                alloc_bytes: allocs * 64,
                peak_bytes: 4096,
            }],
        }
    }

    #[test]
    fn json_roundtrips() {
        let r = report("standard", 12.345, 1_000_000, 5_000);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.suite, "standard");
        assert!(parsed.alloc_counting);
        assert_eq!(parsed.scenarios.len(), 1);
        let s = &parsed.scenarios[0];
        assert_eq!(s.name, "micro/x");
        assert_eq!(s.sim_cycles, 1_000_000);
        assert_eq!(s.events, 10_000_000);
        assert_eq!(s.peak_queue, 7);
        assert_eq!(s.allocs, 5_000);
        assert!((s.wall_ms - 12.345).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_garbage_and_wrong_schema() {
        assert!(BenchReport::from_json("not json").is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json(
            "{\"schema\": \"other-v9\", \"suite\": \"s\", \"alloc_counting\": false, \
             \"scenarios\": []}"
        )
        .is_err());
        // Trailing junk is an error, not silently ignored.
        let r = report("standard", 1.0, 10, 1);
        let mut text = r.to_json();
        text.push_str("trailing");
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn identical_reports_pass() {
        let r = report("standard", 10.0, 500, 100);
        let cmp = compare(&r, &r.clone(), 1.0).unwrap();
        assert!(cmp.ok(), "{:?}", cmp.failures);
    }

    #[test]
    fn faster_run_passes_slower_fails() {
        let base = report("standard", 10.0, 500, 100);
        let fast = report("standard", 2.0, 500, 100);
        assert!(compare(&base, &fast, 2.0).unwrap().ok());
        let slow = report("standard", 25.0, 500, 100);
        let cmp = compare(&base, &slow, 2.0).unwrap();
        assert!(!cmp.ok());
        assert!(cmp.failures[0].contains("wall_ms"), "{:?}", cmp.failures);
        // Within tolerance is fine.
        let mild = report("standard", 19.0, 500, 100);
        assert!(compare(&base, &mild, 2.0).unwrap().ok());
    }

    #[test]
    fn sim_drift_fails_regardless_of_tolerance() {
        let base = report("standard", 10.0, 500, 100);
        let drift = report("standard", 10.0, 501, 100);
        let cmp = compare(&base, &drift, 1_000.0).unwrap();
        assert!(!cmp.ok());
        assert!(
            cmp.failures.iter().any(|f| f.contains("sim_cycles")),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn alloc_regression_fails_only_when_both_counted() {
        let base = report("standard", 10.0, 500, 100);
        let bloated = report("standard", 10.0, 500, 10_000);
        assert!(!compare(&base, &bloated, 2.0).unwrap().ok());
        let mut base_nc = base.clone();
        base_nc.alloc_counting = false;
        assert!(
            compare(&base_nc, &bloated, 2.0).unwrap().ok(),
            "alloc fields are not compared when the baseline did not count"
        );
    }

    #[test]
    fn suite_mismatch_is_an_error_not_a_pass() {
        let base = report("standard", 10.0, 500, 100);
        let cur = report("quick", 10.0, 500, 100);
        assert!(compare(&base, &cur, 2.0).is_err());
    }

    #[test]
    fn missing_scenario_fails_new_scenario_passes() {
        let base = report("standard", 10.0, 500, 100);
        let mut cur = base.clone();
        cur.scenarios[0].name = "micro/renamed".to_string();
        let cmp = compare(&base, &cur, 2.0).unwrap();
        assert!(!cmp.ok(), "baseline scenario vanished");
        assert!(cmp.failures[0].contains("missing"), "{:?}", cmp.failures);

        let mut grown = base.clone();
        grown.scenarios.push(ScenarioResult {
            name: "micro/extra".to_string(),
            ..base.scenarios[0].clone()
        });
        assert!(compare(&base, &grown, 2.0).unwrap().ok());
    }

    #[test]
    fn derived_rates_handle_zero_wall() {
        let mut s = report("standard", 0.0, 500, 1).scenarios.remove(0);
        assert_eq!(s.events_per_sec(), 0.0);
        s.wall_ms = 1_000.0;
        assert!((s.events_per_sec() - 5_000.0).abs() < 1e-9);
        assert!((s.mcycles_per_sec() - 0.0005).abs() < 1e-12);
    }
}
