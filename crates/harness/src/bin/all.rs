//! Regenerates every figure and table. `--jobs <n>` runs figures on
//! worker threads (0 = one per host core); outputs stay byte-identical.
use locksim_harness::obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = [
        obs::BinFlag {
            name: "--quick",
            takes_value: false,
        },
        obs::BinFlag {
            name: "--jobs",
            takes_value: true,
        },
    ];
    let (opts, extras) = match obs::parse_bin_cli(&args, &flags) {
        Ok(parsed) => parsed,
        Err(msg) => usage_exit(&msg),
    };
    if extras.contains_key("--quick") {
        std::env::set_var("LOCKSIM_QUICK", "1");
    }
    obs::apply_opts(&opts);
    let jobs = extras
        .get("--jobs")
        .map(|v| locksim_harness::sweep::parse_jobs(v).unwrap_or_else(|e| usage_exit(&e)))
        .unwrap_or(1);
    locksim_harness::run_all(jobs);
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: all [--quick] [--jobs <n|0=cores>] [--trace <path>] \
         [--trace-cap <records>] [--lockstat <path>] [--watchdog-cycles <n>] \
         [--self-profile <path>]"
    );
    std::process::exit(2);
}
