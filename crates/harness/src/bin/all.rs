//! Regenerates every figure and table.
type Fig = fn() -> Vec<locksim_harness::Table>;

fn main() {
    let figs: &[(&str, Fig)] = &[
        ("fig1", locksim_harness::figs::fig1),
        ("fig8", locksim_harness::figs::fig8),
        ("fig9", locksim_harness::figs::fig9),
        ("fig10", locksim_harness::figs::fig10),
        ("fig11", locksim_harness::figs::fig11),
        ("fig12", locksim_harness::figs::fig12),
        ("fig13", locksim_harness::figs::fig13),
        ("fairness", locksim_harness::figs::fairness),
        ("messages", locksim_harness::figs::messages),
        ("summary", locksim_harness::figs::summary),
    ];
    for (name, f) in figs {
        eprintln!("== regenerating {name} ==");
        locksim_harness::run_bin(name, f);
    }
}
