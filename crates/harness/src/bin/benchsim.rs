//! Self-profiling perf-regression harness: runs the standardized scenario
//! suite (figure-panel microbenchmarks, faultsim cells, chaos seeds),
//! writes a machine-readable `BENCH_current.json` (wall time,
//! simulated-cycles/sec, events/sec, peak event-queue depth, allocation
//! churn per scenario), and optionally gates against a checked-in
//! baseline.
//!
//! ```text
//! cargo run --release --bin benchsim
//! cargo run --release --bin benchsim -- --baseline BENCH_0001.json --tolerance 3.0
//! cargo run --release --bin benchsim -- --quick --self-profile prof.collapsed
//! ```

// The counting allocator is installed only in the benchsim bins, so the
// figure binaries and tests pay nothing; `mark_installed` is what flips
// `alloc_counting` to true in the emitted report.
#[global_allocator]
static ALLOC: locksim_trace::alloc::CountingAlloc = locksim_trace::alloc::CountingAlloc;

fn main() {
    locksim_trace::alloc::mark_installed();
    locksim_harness::bench::cli_main();
}
