//! Chaos soak runner: sweep fuzz seeds through randomized fault plans with
//! the quiescence deadlock detector armed, shrink every violating plan to
//! a locally-minimal repro, and write `results/chaossim.csv` /
//! `results/chaossim.html` (plus corpus entries with `--corpus-out`).
//!
//! ```text
//! cargo run --release --bin chaossim -- --quick
//! cargo run --release --bin chaossim -- --seed-start 0 --seeds 100
//! cargo run --release --bin chaossim -- --seeds 48 --corpus-out tests/corpus
//! ```

fn main() {
    locksim_harness::chaos::cli_main();
}
