//! Regenerates the fairness analysis table.
fn main() {
    locksim_harness::emit("fairness", &locksim_harness::figs::fairness());
}
