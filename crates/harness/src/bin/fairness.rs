//! Regenerates the fairness analysis table.
fn main() {
    locksim_harness::run_bin("fairness", locksim_harness::figs::fairness);
}
