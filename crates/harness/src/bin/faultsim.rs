//! Fault-injection matrix: every lock backend × every fault class
//! (suspension, migration, FLT eviction, LRT pressure, wire delay), each
//! cell judged by the liveness/fairness/exclusion oracles. Writes a
//! pass/fail table to stdout plus `results/faultsim.csv` and
//! `results/faultsim.html`.
//!
//! ```text
//! cargo run --release --bin faultsim -- --quick
//! cargo run --release --bin faultsim -- --seed 42 --csv results/faultsim.csv
//! ```

fn main() {
    locksim_harness::faultsim::cli_main();
}
