//! Regenerates the paper's fig1 results.
fn main() {
    locksim_harness::run_bin("fig1", locksim_harness::figs::fig1);
}
