//! Regenerates the paper's fig10 results.
fn main() {
    locksim_harness::run_bin("fig10", locksim_harness::figs::fig10);
}
