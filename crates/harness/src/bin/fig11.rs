//! Regenerates the paper's fig11 results.
fn main() {
    locksim_harness::run_bin("fig11", locksim_harness::figs::fig11);
}
