//! Regenerates the paper's fig11 results.
fn main() {
    locksim_harness::emit("fig11", &locksim_harness::figs::fig11());
}
