//! Regenerates the paper's fig12 results.
fn main() {
    locksim_harness::run_bin("fig12", locksim_harness::figs::fig12);
}
