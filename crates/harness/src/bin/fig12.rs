//! Regenerates the paper's fig12 results.
fn main() {
    locksim_harness::emit("fig12", &locksim_harness::figs::fig12());
}
