//! Regenerates the paper's fig13 results.
fn main() {
    locksim_harness::run_bin("fig13", locksim_harness::figs::fig13);
}
