//! Regenerates the paper's fig8 results.
fn main() {
    locksim_harness::run_bin("fig8", locksim_harness::figs::fig8);
}
