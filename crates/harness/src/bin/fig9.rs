//! Regenerates the paper's fig9 results.
fn main() {
    locksim_harness::emit("fig9", &locksim_harness::figs::fig9());
}
