//! Regenerates the paper's fig9 results.
fn main() {
    locksim_harness::run_bin("fig9", locksim_harness::figs::fig9);
}
