//! Per-lock contention profile of the SSB-vs-LCU writer-starvation
//! contrast: per-lock stats tables, the starvation-watchdog verdict, the
//! longest blocking chains, and a self-contained HTML report.
//!
//! ```text
//! cargo run --release --bin lockstat -- --quick
//! cargo run --release --bin lockstat -- --lockstat results/lockstat.html \
//!     --watchdog-cycles 30000
//! ```

fn main() {
    locksim_harness::lockstat::cli_main();
}
