//! Regenerates the per-CS message-cost table (Figure 1's "transfer
//! messages" column, measured) from the metrics registry.
fn main() {
    locksim_harness::run_bin("messages", locksim_harness::figs::messages);
}
