//! Regenerates the per-CS message-cost table (Figure 1's "transfer
//! messages" column, measured).
fn main() {
    locksim_harness::emit("messages", &locksim_harness::figs::messages());
}
