//! Regenerates the paper's summary results.
fn main() {
    locksim_harness::run_bin("summary", locksim_harness::figs::summary);
}
