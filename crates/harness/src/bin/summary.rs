//! Regenerates the paper's summary results.
fn main() {
    locksim_harness::emit("summary", &locksim_harness::figs::summary());
}
