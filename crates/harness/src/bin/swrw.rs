//! Regenerates the modern-software-RW-locks-vs-LCU comparison tables.
fn main() {
    locksim_harness::run_bin("swrw", locksim_harness::figs::swrw);
}
