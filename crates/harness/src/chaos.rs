//! The `chaossim` bin's engine: fuzz → soak → detect → shrink → corpus.
//!
//! Each seed maps deterministically to a [`ChaosCase`] — a backend, a
//! workload shape, and a fuzzed [`FaultPlan`] — via the split-stream
//! generator in `locksim-faults`. The soak runner executes each case with
//! the quiescence deadlock detector armed, so a plan that wedges the run
//! (suspend a holder forever) ends in a structured `DEADLOCK` verdict with
//! a blocking-chain dump instead of burning its deadline or hanging the
//! process. Violating cases are then delta-debug shrunk to a locally
//! minimal plan and emitted as replayable [`ChaosScenario`] text — the
//! format the `tests/corpus/` suite replays in tier-1.
//!
//! Budgets are **simulated-cycle** budgets, not wall-clock: the sweep
//! stops once the cumulative simulated cycles (soak runs plus shrink
//! re-runs) cross the cap, which keeps two same-flag invocations
//! byte-identical — wall-clock safety in CI comes from an outer `timeout`.

use std::path::{Path, PathBuf};

use locksim_faults::{
    chaos_csv, chaos_html, check_world, generate, shrink, ChaosRow, ChaosScenario, ChaosWorkload,
    DriveOutcome, FaultDriver, FaultPlan, FuzzConfig, Violation,
};
use locksim_machine::{MachineConfig, RunExit, World};
use locksim_swlocks::SwAlg;
use locksim_workloads::{CsThread, IterPool};

use crate::run::{scaled, BackendKind};
use crate::table::Table;
use crate::{emit, finish_bin, obs};

/// Trace-ring capacity: the oracles replay the ring, so it must keep every
/// lock event of a run.
const TRACE_CAP: usize = 1 << 20;

/// Default quiescence window for the deadlock detector, in cycles: long
/// enough that a congested-but-live run always produces a grant inside it,
/// short enough that a wedged run is cut off well before its deadline.
pub const DEFAULT_QUIESCE: u64 = 50_000;

/// Chaos worlds always run the 4-core model-A machine.
const N_CORES: u32 = 4;

/// Resolves a harness backend label ("lcu", "lcu+flt", "ssb", "mcs",
/// "mrsw", "bravo", "fissile", "ideal") to its [`BackendKind`].
pub fn backend_by_label(label: &str) -> Option<BackendKind> {
    Some(match label {
        "lcu" => BackendKind::Lcu,
        "lcu+flt" => BackendKind::LcuFlt,
        "ssb" => BackendKind::Ssb,
        "mcs" => BackendKind::Sw(SwAlg::Mcs),
        "mrsw" => BackendKind::Sw(SwAlg::Mrsw),
        "bravo" => BackendKind::Sw(SwAlg::Bravo),
        "fissile" => BackendKind::Sw(SwAlg::Fissile),
        "ideal" => BackendKind::Ideal,
        _ => return None,
    })
}

/// Maps a chaos verdict to the corpus `expect` directive value.
pub fn expect_label(verdict: &str) -> String {
    if verdict == "pass" {
        "none".to_string()
    } else {
        verdict.to_ascii_lowercase()
    }
}

/// One executed chaos run, with everything the reporters need.
#[derive(Debug)]
pub struct ChaosRun {
    /// The driver outcome (deadlock report included when detected).
    pub outcome: DriveOutcome,
    /// Post-hoc oracle violations.
    pub violations: Vec<Violation>,
    /// Whether every thread ran to completion.
    pub finished: bool,
    /// The chaos verdict ("pass", "DEADLOCK", "LIVENESS", ...).
    pub verdict: String,
    /// End-of-run metrics snapshot (event-queue telemetry included), for
    /// callers that measure the run itself (`benchsim`).
    pub metrics: locksim_machine::MetricsSnapshot,
}

/// Runs one chaos case: builds the world for `backend`/`workload`/`seed`,
/// drives `plan` with the quiescence detector armed, and judges the result.
/// Fails (without running) on an unknown backend label or a plan that does
/// not validate against the workload/machine shape.
pub fn run_chaos(
    backend_label: &str,
    workload: &ChaosWorkload,
    seed: u64,
    plan: &FaultPlan,
    quiesce: u64,
) -> Result<ChaosRun, String> {
    let backend = backend_by_label(backend_label)
        .ok_or_else(|| format!("unknown backend label {backend_label:?}"))?;
    plan.validate(workload.threads, N_CORES)
        .map_err(|e| format!("invalid plan: {e}"))?;
    let mut mach_cfg = MachineConfig::model_a(N_CORES as usize);
    if backend == BackendKind::LcuFlt {
        mach_cfg.flt_entries = 4;
    }
    if workload.lrt_pressure {
        // Same squeeze as faultsim's lrt-pressure class: one direct-mapped
        // pair of entries, so extra lock lines overflow and retry.
        mach_cfg.lrt_entries = 2;
        mach_cfg.lrt_assoc = 2;
    }
    let mut w = World::new(mach_cfg, backend.build(), seed);
    obs::arm(&mut w);
    if !w.mach_ref().tracer().is_enabled() {
        w.enable_trace(TRACE_CAP);
    }
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(u64::from(workload.iters));
    for _ in 0..workload.threads {
        w.spawn(Box::new(
            CsThread::new(lock, data, pool.clone(), workload.write_pct)
                .with_cs_compute(workload.cs_compute),
        ));
    }
    let out = FaultDriver::new(plan.clone()).run_detected(&mut w, quiesce);
    let finished = out.exit == RunExit::AllFinished;
    let violations = check_world(&mut w, plan, &out.windows, out.end_cycle);
    obs::observe(&format!("chaos/{backend_label}/s{seed}"), &w);
    let verdict = ChaosRow::verdict_of(&out, &violations).to_string();
    let metrics = w.metrics_snapshot();
    Ok(ChaosRun {
        outcome: out,
        violations,
        finished,
        verdict,
        metrics,
    })
}

/// Replays a scenario file's run exactly.
pub fn replay(sc: &ChaosScenario, quiesce: u64) -> Result<ChaosRun, String> {
    run_chaos(&sc.backend, &sc.workload, sc.seed, &sc.plan, quiesce)
}

/// Parameters of one soak sweep.
#[derive(Debug, Clone)]
pub struct ChaosCfg {
    /// First fuzz seed.
    pub seed_start: u64,
    /// Number of consecutive seeds to sweep.
    pub seeds: u64,
    /// Quiescence window for the deadlock detector.
    pub quiesce: u64,
    /// Maximum candidate re-runs per shrink.
    pub shrink_budget: u64,
    /// Simulated-cycle cap on the whole sweep (soak + shrink re-runs).
    pub cycle_budget: u64,
    /// Generator bounds.
    pub fuzz: FuzzConfig,
}

impl ChaosCfg {
    /// The default configuration (scaled down under `LOCKSIM_QUICK`).
    pub fn default_scaled() -> Self {
        ChaosCfg {
            seed_start: 0,
            seeds: scaled(48, 12),
            quiesce: DEFAULT_QUIESCE,
            shrink_budget: scaled(160, 60),
            cycle_budget: scaled(600_000_000, 120_000_000),
            fuzz: FuzzConfig::default(),
        }
    }
}

/// What a soak sweep produced.
#[derive(Debug)]
pub struct SoakReport {
    /// One row per executed seed, in seed order.
    pub rows: Vec<ChaosRow>,
    /// Shrunk replayable scenarios, one per violating seed.
    pub shrunk: Vec<ChaosScenario>,
    /// Simulated cycles spent (soak runs plus shrink re-runs).
    pub cycles: u64,
    /// Seeds actually executed (may stop short on the cycle budget).
    pub seeds_run: u64,
}

/// Everything one fuzz seed produced: its verdict row, the simulated
/// cycles it cost (soak run plus shrink re-runs), and the shrunk repro
/// when the seed violated. A pure function of the seed and `cfg`, which is
/// what lets the sweep runner execute seeds on any thread in any order.
struct SeedOutcome {
    row: ChaosRow,
    cycles: u64,
    shrunk: Option<ChaosScenario>,
}

/// Runs one fuzz seed end to end: generate, run with detection armed, and
/// — on a violation — delta-debug shrink to a locally-minimal repro.
fn soak_seed(cfg: &ChaosCfg, seed: u64) -> SeedOutcome {
    let case = generate(seed, &cfg.fuzz);
    let run = run_chaos(case.backend, &case.workload, seed, &case.plan, cfg.quiesce)
        .unwrap_or_else(|e| panic!("fuzz seed {seed} generated an unrunnable case: {e}"));
    let mut cycles = run.outcome.end_cycle;
    let mut row = ChaosRow::from_run(
        seed,
        case.backend,
        &run.outcome,
        &run.violations,
        run.finished,
        case.plan.events.len(),
    );
    let mut shrunk = None;
    if !row.ok() {
        let target = row.verdict.clone();
        let workload = case.workload;
        let mut shrink_cycles = 0u64;
        let res = shrink(
            &case.plan,
            |p| match run_chaos(case.backend, &workload, seed, p, cfg.quiesce) {
                Ok(r) => {
                    shrink_cycles += r.outcome.end_cycle;
                    r.verdict == target
                }
                // A removal that orphaned a resume etc. — not a repro.
                Err(_) => false,
            },
            cfg.shrink_budget,
        );
        cycles += shrink_cycles;
        row.shrunk_events = res.plan.events.len();
        let mut sc = ChaosScenario::from_case(&case);
        sc.plan = res.plan;
        sc.expect = expect_label(&target);
        shrunk = Some(sc);
    }
    SeedOutcome {
        row,
        cycles,
        shrunk,
    }
}

/// Sweeps `cfg.seeds` consecutive fuzz seeds: run each generated case with
/// detection armed, shrink every violating plan to a locally-minimal one,
/// and collect verdict rows plus replayable shrunk scenarios.
///
/// With `jobs > 1` the seeds run on worker threads via [`crate::sweep`];
/// the report is still byte-identical to `jobs == 1` because each seed is
/// an isolated deterministic run and the cycle-budget cutoff is applied
/// afterwards as a seed-order walk: seed `k`'s results (rows, repros,
/// observability) are included iff the cumulative cycles of the included
/// seeds before it are under the budget — exactly the sequential loop's
/// "check budget before each seed, stop at the first overrun" rule.
/// Seeds past the cutoff cost wall-clock but leave no trace in the output.
pub fn soak(cfg: &ChaosCfg, jobs: usize) -> SoakReport {
    let last = cfg.seed_start.saturating_add(cfg.seeds);
    let n = usize::try_from(last - cfg.seed_start).expect("seed count fits in usize");
    let mut report = SoakReport {
        rows: Vec::new(),
        shrunk: Vec::new(),
        cycles: 0,
        seeds_run: 0,
    };
    let fold = |report: &mut SoakReport, so: SeedOutcome| {
        report.seeds_run += 1;
        report.cycles += so.cycles;
        if let Some(sc) = so.shrunk {
            report.shrunk.push(sc);
        }
        report.rows.push(so.row);
    };
    if crate::sweep::effective_jobs(jobs, n) <= 1 {
        // Sequentially the budget check can cut the sweep short before
        // spending the cycles, not just before reporting them.
        for i in 0..n {
            if report.cycles >= cfg.cycle_budget {
                break;
            }
            let so = soak_seed(cfg, cfg.seed_start + i as u64);
            fold(&mut report, so);
        }
        return report;
    }
    let outs = crate::sweep::run_jobs(jobs, n, |i| soak_seed(cfg, cfg.seed_start + i as u64));
    for out in outs {
        if report.cycles >= cfg.cycle_budget {
            break;
        }
        let so = crate::sweep::include(out);
        fold(&mut report, so);
    }
    report
}

/// Writes each shrunk scenario as a corpus entry under `dir`, named
/// `s<seed>_<backend>_<expect>.txt`, and returns the paths written.
pub fn write_corpus(dir: &Path, scenarios: &[ChaosScenario]) -> Vec<PathBuf> {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("create corpus dir {}: {e}", dir.display()));
    let mut paths = Vec::new();
    for sc in scenarios {
        let name = format!(
            "s{:05}_{}_{}.txt",
            sc.seed,
            sc.backend.replace('+', ""),
            sc.expect
        );
        let path = dir.join(name);
        let body = format!(
            "# chaossim shrunk violation — replayed by the tests/corpus suite.\n\
             # Regenerate: cargo run --release --bin chaossim -- --seed-start {} --seeds 1\n{}",
            sc.seed,
            sc.format()
        );
        std::fs::write(&path, body)
            .unwrap_or_else(|e| panic!("write corpus entry {}: {e}", path.display()));
        paths.push(path);
    }
    paths
}

/// Renders the sweep as the bin's stdout table.
pub fn verdict_table(cfg: &ChaosCfg, report: &SoakReport) -> Table {
    let mut t = Table::new(
        format!(
            "Chaos soak — seeds {}..{} ({} run), quiesce {} cycles, {} cycles spent",
            cfg.seed_start,
            cfg.seed_start + cfg.seeds,
            report.seeds_run,
            cfg.quiesce,
            report.cycles
        ),
        &[
            "seed",
            "backend",
            "verdict",
            "liveness",
            "fairness",
            "exclusion",
            "deadlock",
            "events",
            "shrunk",
            "end cycle",
            "finished",
        ],
    );
    for r in &report.rows {
        t.push(vec![
            r.seed.to_string(),
            r.backend.clone(),
            r.verdict.clone(),
            r.liveness.to_string(),
            r.fairness.to_string(),
            r.exclusion.to_string(),
            r.deadlock.to_string(),
            r.events.to_string(),
            r.shrunk_events.to_string(),
            r.end_cycle.to_string(),
            r.finished.to_string(),
        ]);
    }
    t
}

/// Entry point of the `chaossim` bin (shared by the root-package shim).
pub fn cli_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = [
        obs::BinFlag {
            name: "--quick",
            takes_value: false,
        },
        obs::BinFlag {
            name: "--seed-start",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--seeds",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--quiesce",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--shrink-budget",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--cycle-budget",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--jobs",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--corpus-out",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--csv",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--html",
            takes_value: true,
        },
    ];
    let (opts, extras) = match obs::parse_bin_cli(&args, &flags) {
        Ok(parsed) => parsed,
        Err(msg) => usage_exit(&msg),
    };
    obs::apply_opts(&opts);
    if extras.contains_key("--quick") {
        std::env::set_var("LOCKSIM_QUICK", "1");
    }
    let mut cfg = ChaosCfg::default_scaled();
    let num = |flag: &str, slot: &mut u64| {
        if let Some(v) = extras.get(flag) {
            *slot = v
                .parse()
                .unwrap_or_else(|_| usage_exit(&format!("{flag}: invalid number {v:?}")));
        }
    };
    num("--seed-start", &mut cfg.seed_start);
    num("--seeds", &mut cfg.seeds);
    num("--quiesce", &mut cfg.quiesce);
    num("--shrink-budget", &mut cfg.shrink_budget);
    num("--cycle-budget", &mut cfg.cycle_budget);
    let jobs = extras
        .get("--jobs")
        .map(|v| crate::sweep::parse_jobs(v).unwrap_or_else(|e| usage_exit(&e)))
        .unwrap_or(1);
    let csv_path = extras
        .get("--csv")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/chaossim.csv"));
    let html_path = extras
        .get("--html")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/chaossim.html"));

    let report = soak(&cfg, jobs);
    for r in &report.rows {
        obs::record_verdicts(
            &format!("chaos/{}/s{}", r.backend, r.seed),
            vec![("chaos".to_string(), r.verdict.clone())],
        );
    }
    emit("chaossim_verdicts", &[verdict_table(&cfg, &report)]);

    write_artifact(&csv_path, &chaos_csv(&report.rows));
    write_artifact(
        &html_path,
        &chaos_html(&report.rows, "chaossim — chaos soak sweep"),
    );
    eprintln!(
        "chaossim: wrote {} and {}",
        csv_path.display(),
        html_path.display()
    );
    if let Some(dir) = extras.get("--corpus-out") {
        let paths = write_corpus(Path::new(dir), &report.shrunk);
        eprintln!("chaossim: wrote {} corpus entries to {dir}", paths.len());
    }

    let violating = report.rows.iter().filter(|r| !r.ok()).count();
    let deadlocks = report.rows.iter().filter(|r| r.deadlock).count();
    println!(
        "chaossim verdict: {} seeds run, {} violating ({} deadlock), {} simulated cycles",
        report.seeds_run, violating, deadlocks, report.cycles
    );
    finish_bin("chaossim");
}

fn write_artifact(path: &Path, content: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create artifact dir");
    }
    std::fs::write(path, content)
        .unwrap_or_else(|e| panic!("write artifact {}: {e}", path.display()));
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: chaossim [--quick] [--seed-start <n>] [--seeds <n>] \
         [--quiesce <cycles>] [--shrink-budget <runs>] [--cycle-budget <cycles>] \
         [--jobs <n|0=cores>] [--corpus-out <dir>] [--csv <path>] [--html <path>] \
         [--trace <path>] [--trace-cap <records>] [--lockstat <path>] \
         [--watchdog-cycles <n>]"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_labels_round_trip() {
        for label in [
            "lcu", "lcu+flt", "ssb", "mcs", "mrsw", "bravo", "fissile", "ideal",
        ] {
            let kind = backend_by_label(label).expect(label);
            assert_eq!(kind.label(), label);
        }
        assert!(backend_by_label("spinlock").is_none());
    }

    #[test]
    fn expect_label_maps_verdicts() {
        assert_eq!(expect_label("pass"), "none");
        assert_eq!(expect_label("DEADLOCK"), "deadlock");
        assert_eq!(expect_label("LIVENESS"), "liveness");
    }

    #[test]
    fn run_chaos_rejects_invalid_plans_without_running() {
        let wl = ChaosWorkload {
            threads: 2,
            iters: 10,
            cs_compute: 0,
            write_pct: 100,
            lrt_pressure: false,
        };
        let plan = FaultPlan::new().suspend_at(100, 7, 50);
        let err = run_chaos("lcu", &wl, 1, &plan, 0).unwrap_err();
        assert!(err.contains("thread 7 out of range"), "{err}");
        let err = run_chaos("nope", &wl, 1, &plan, 0).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
    }
}
