//! The `faultsim` bin's workload: a backend × fault-class matrix driven by
//! the `locksim-faults` subsystem.
//!
//! Each cell runs the same seeded lock-transfer workload under one fault
//! class — thread suspension mid-queue, forced cross-core migration, FLT
//! entry eviction, LRT capacity pressure, or deterministic wire delay —
//! and judges the run with the liveness/fairness/exclusion oracles. The
//! hardware queue (LCU) passes grants through a descheduled requester and
//! reissues after migration, so it keeps every cell green; a software
//! queue lock (MCS) wedges its successors behind a suspended queue node
//! and fails the liveness horizon — the paper's central robustness claim,
//! rendered as a pass/fail table plus CSV/HTML artifacts.
//!
//! One LCU-family cell fails by design: `lcu+flt` under `wire-delay`
//! trips the fairness oracle. The FLT's local fast path keeps re-granting
//! to the caching core until a conflicting remote request reaches the
//! directory, and the injected wire jitter delays exactly that
//! notification — so the owner laps each remote waiter more than
//! `fairness_k` times before handing off. That is the FLT trading bounded
//! fairness for locality under a degraded interconnect, surfaced by the
//! oracle rather than hidden; the CI smoke job pins this verdict.

use std::path::{Path, PathBuf};

use locksim_faults::{check_world, csv, html, FaultDriver, FaultPlan, MatrixCell};
use locksim_machine::{MachineConfig, RunExit, World};
use locksim_swlocks::SwAlg;
use locksim_workloads::{CsThread, IterPool};

use crate::run::{scaled, BackendKind};
use crate::table::Table;
use crate::{emit, finish_bin, obs};

/// Trace-ring capacity for the fault runs: the oracles replay the ring, so
/// it must keep every lock event of a run.
const TRACE_CAP: usize = 1 << 20;

/// The injected fault classes of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Baseline: no injection; every backend must pass.
    None,
    /// Suspend a queued waiter for 60k cycles (double the liveness horizon).
    Suspend,
    /// Bounce a queued waiter across cores (each hop costs a full context
    /// switch and, on the LCU, a request reissue).
    Migrate,
    /// Force parked Free Lock Table entries out (LCU+FLT only).
    FltEvict,
    /// Shrink the Lock Reservation Table to force overflow handling
    /// (LCU-family only; config-level pressure, no plan events).
    LrtPressure,
    /// Delay every 3rd network message by 400 cycles for the whole run.
    WireDelay,
}

impl FaultClass {
    /// All classes, in matrix column order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::None,
        FaultClass::Suspend,
        FaultClass::Migrate,
        FaultClass::FltEvict,
        FaultClass::LrtPressure,
        FaultClass::WireDelay,
    ];

    /// Label for tables, CSV, and scenario names.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::None => "none",
            FaultClass::Suspend => "suspend",
            FaultClass::Migrate => "migrate",
            FaultClass::FltEvict => "flt-evict",
            FaultClass::LrtPressure => "lrt-pressure",
            FaultClass::WireDelay => "wire-delay",
        }
    }

    /// Whether this fault class is meaningful for `backend`; inapplicable
    /// combinations render as "n/a" cells.
    pub fn applies_to(self, backend: BackendKind) -> bool {
        match self {
            FaultClass::FltEvict => backend == BackendKind::LcuFlt,
            FaultClass::LrtPressure => {
                matches!(backend, BackendKind::Lcu | BackendKind::LcuFlt)
            }
            _ => true,
        }
    }

    /// The injection plan for this class.
    fn plan(self, horizon: u64) -> FaultPlan {
        let base = FaultPlan::new().horizon(horizon).deadline(1_000_000);
        match self {
            FaultClass::None | FaultClass::LrtPressure => base,
            // Twice the horizon: a backend that wedges its queue behind the
            // sleeper must blow the liveness bound before the auto-resume.
            FaultClass::Suspend => base.suspend_when_waiting(1, 200, 2 * horizon),
            FaultClass::Migrate => base
                .migrate_when_waiting(1, 200, 3)
                .migrate_at(6_000, 1, 0)
                .migrate_at(12_000, 1, 2),
            FaultClass::FltEvict => {
                (1..=5).fold(base, |p, i| p.flt_evict_at(i * 1_000, (i % 4) as u32))
            }
            FaultClass::WireDelay => base.wire_delay_at(0, 3, 400),
        }
    }
}

/// The matrix's backend rows: the LCU with and without the FLT, the SSB
/// baseline, the two contrasting classic software locks (queue-based MCS,
/// centralized MRSW), and the two modern software RW locks (biased BRAVO,
/// composed Fissile). Like MCS/MRSW, the modern locks still wedge behind
/// a suspended thread — no software protocol recovers the paper's
/// robustness cells; that comparison is the point of carrying them here.
pub fn backends() -> [BackendKind; 7] {
    [
        BackendKind::Lcu,
        BackendKind::LcuFlt,
        BackendKind::Ssb,
        BackendKind::Sw(SwAlg::Mcs),
        BackendKind::Sw(SwAlg::Mrsw),
        BackendKind::Sw(SwAlg::Bravo),
        BackendKind::Sw(SwAlg::Fissile),
    ]
}

/// Parameters of one matrix run.
#[derive(Debug, Clone, Copy)]
pub struct FaultsimCfg {
    /// Threads hammering the lock.
    pub threads: usize,
    /// Total critical sections shared across the threads.
    pub iters: u64,
    /// World seed.
    pub seed: u64,
    /// Liveness horizon in effective (non-suspended) wait cycles.
    pub horizon: u64,
}

impl FaultsimCfg {
    /// The default configuration (scaled down under `LOCKSIM_QUICK`).
    pub fn default_scaled() -> Self {
        FaultsimCfg {
            threads: 4,
            iters: scaled(400, 100),
            seed: 42,
            horizon: 30_000,
        }
    }
}

/// Runs one cell: the seeded workload on `backend` under `class`, judged
/// by the oracles.
pub fn run_cell(backend: BackendKind, class: FaultClass, cfg: &FaultsimCfg) -> MatrixCell {
    run_cell_observed(backend, class, cfg).0
}

/// Like [`run_cell`], but also returns the run's end-of-run metrics
/// snapshot (event-queue telemetry included) for callers that measure the
/// run itself — `benchsim`'s faultsim scenarios. Inapplicable cells return
/// a default (empty) snapshot.
pub fn run_cell_observed(
    backend: BackendKind,
    class: FaultClass,
    cfg: &FaultsimCfg,
) -> (MatrixCell, locksim_machine::MetricsSnapshot) {
    let empty = locksim_machine::MetricsSnapshot {
        counters: Default::default(),
        hists: Vec::new(),
        sketches: Vec::new(),
    };
    if !class.applies_to(backend) {
        return (
            MatrixCell::not_applicable(backend.label(), class.label()),
            empty,
        );
    }
    let mut mach_cfg = MachineConfig::model_a(4);
    if backend == BackendKind::LcuFlt {
        mach_cfg.flt_entries = 4;
    }
    if class == FaultClass::LrtPressure {
        // One direct-mapped pair of entries for one hot lock plus
        // release-in-flight churn: every extra lock line overflows.
        mach_cfg.lrt_entries = 2;
        mach_cfg.lrt_assoc = 2;
    }
    let mut w = World::new(mach_cfg, backend.build(), cfg.seed);
    obs::arm(&mut w);
    if !w.mach_ref().tracer().is_enabled() {
        w.enable_trace(TRACE_CAP);
    }
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(cfg.iters);
    for _ in 0..cfg.threads {
        // Write mode throughout: every backend, including mutex-only MCS,
        // runs the identical schedule.
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), 100)));
    }
    let plan = class.plan(cfg.horizon);
    let out = FaultDriver::new(plan.clone()).run(&mut w);
    let finished = out.exit == RunExit::AllFinished;
    let violations = check_world(&mut w, &plan, &out.windows, out.end_cycle);
    let label = format!("{}/{}", backend.label(), class.label());
    obs::observe(&label, &w);
    let snap = w.metrics_snapshot();
    (
        MatrixCell::from_run(backend.label(), class.label(), &out, &violations, finished),
        snap,
    )
}

/// Runs the full backend × fault-class matrix. With `jobs > 1` the cells
/// run on worker threads via [`crate::sweep`] — each cell is an isolated
/// deterministic run, and merging every cell's observability in row-major
/// cell order keeps the output byte-identical to `jobs == 1`.
pub fn run_matrix(cfg: &FaultsimCfg, jobs: usize) -> Vec<MatrixCell> {
    let grid: Vec<(BackendKind, FaultClass)> = backends()
        .into_iter()
        .flat_map(|b| FaultClass::ALL.into_iter().map(move |c| (b, c)))
        .collect();
    crate::sweep::run_jobs(jobs, grid.len(), |i| {
        let (backend, class) = grid[i];
        run_cell(backend, class, cfg)
    })
    .into_iter()
    .map(crate::sweep::include)
    .collect()
}

/// Renders the matrix as the bin's stdout table.
pub fn verdict_table(cfg: &FaultsimCfg, cells: &[MatrixCell]) -> Table {
    let mut t = Table::new(
        format!(
            "Fault-injection matrix — {} threads, {} iters, seed {}, horizon {} cycles",
            cfg.threads, cfg.iters, cfg.seed, cfg.horizon
        ),
        &[
            "backend",
            "fault",
            "verdict",
            "liveness",
            "fairness",
            "exclusion",
            "injections",
            "end cycle",
            "finished",
        ],
    );
    for c in cells {
        t.push(vec![
            c.backend.clone(),
            c.fault.clone(),
            c.verdict.clone(),
            c.liveness.to_string(),
            c.fairness.to_string(),
            c.exclusion.to_string(),
            c.injections.to_string(),
            c.end_cycle.to_string(),
            c.finished.to_string(),
        ]);
    }
    t
}

/// Entry point of the `faultsim` bin (shared by the root-package shim):
/// parses flags, runs the matrix, and emits the verdict table plus the
/// CSV and self-contained HTML artifacts.
pub fn cli_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = [
        obs::BinFlag {
            name: "--quick",
            takes_value: false,
        },
        obs::BinFlag {
            name: "--seed",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--horizon",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--jobs",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--csv",
            takes_value: true,
        },
        obs::BinFlag {
            name: "--html",
            takes_value: true,
        },
    ];
    let (opts, extras) = match obs::parse_bin_cli(&args, &flags) {
        Ok(parsed) => parsed,
        Err(msg) => usage_exit(&msg),
    };
    obs::apply_opts(&opts);
    if extras.contains_key("--quick") {
        std::env::set_var("LOCKSIM_QUICK", "1");
    }
    let mut cfg = FaultsimCfg::default_scaled();
    if let Some(v) = extras.get("--seed") {
        cfg.seed = v
            .parse()
            .unwrap_or_else(|_| usage_exit(&format!("--seed: invalid number {v:?}")));
    }
    if let Some(v) = extras.get("--horizon") {
        cfg.horizon = v
            .parse()
            .unwrap_or_else(|_| usage_exit(&format!("--horizon: invalid number {v:?}")));
    }
    let jobs = extras
        .get("--jobs")
        .map(|v| crate::sweep::parse_jobs(v).unwrap_or_else(|e| usage_exit(&e)))
        .unwrap_or(1);
    let csv_path = extras
        .get("--csv")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/faultsim.csv"));
    let html_path = extras
        .get("--html")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/faultsim.html"));

    let cells = run_matrix(&cfg, jobs);
    for c in cells.iter().filter(|c| c.verdict != "n/a") {
        obs::record_verdicts(
            &format!("{}/{}", c.backend, c.fault),
            vec![
                ("oracle".to_string(), c.verdict.clone()),
                (
                    "finished".to_string(),
                    if c.finished { "pass" } else { "fail" }.to_string(),
                ),
            ],
        );
    }
    // "_verdicts" keeps the table's CSV clear of the machine-readable
    // artifact below, which defaults to results/faultsim.csv.
    emit("faultsim_verdicts", &[verdict_table(&cfg, &cells)]);

    write_artifact(&csv_path, &csv(&cells));
    write_artifact(
        &html_path,
        &html(&cells, "faultsim — fault-injection matrix"),
    );
    eprintln!(
        "faultsim: wrote {} and {}",
        csv_path.display(),
        html_path.display()
    );

    let failed: Vec<String> = cells
        .iter()
        .filter(|c| !c.ok())
        .map(|c| format!("{}/{}: {}", c.backend, c.fault, c.verdict))
        .collect();
    println!(
        "faultsim verdict: {}/{} applicable cells pass{}",
        cells.iter().filter(|c| c.verdict == "pass").count(),
        cells.iter().filter(|c| c.verdict != "n/a").count(),
        if failed.is_empty() {
            String::new()
        } else {
            format!(" — oracle failures: {}", failed.join(", "))
        }
    );
    finish_bin("faultsim");
}

fn write_artifact(path: &Path, content: &str) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create artifact dir");
    }
    std::fs::write(path, content)
        .unwrap_or_else(|e| panic!("write artifact {}: {e}", path.display()));
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: faultsim [--quick] [--seed <n>] [--horizon <cycles>] \
         [--jobs <n|0=cores>] [--csv <path>] [--html <path>] [--trace <path>] \
         [--trace-cap <records>] [--lockstat <path>] [--watchdog-cycles <n>]"
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applicability_gates_hardware_only_faults() {
        assert!(FaultClass::FltEvict.applies_to(BackendKind::LcuFlt));
        assert!(!FaultClass::FltEvict.applies_to(BackendKind::Lcu));
        assert!(!FaultClass::FltEvict.applies_to(BackendKind::Sw(SwAlg::Mcs)));
        assert!(FaultClass::LrtPressure.applies_to(BackendKind::Lcu));
        assert!(!FaultClass::LrtPressure.applies_to(BackendKind::Ssb));
        for b in backends() {
            assert!(FaultClass::None.applies_to(b));
            assert!(FaultClass::Suspend.applies_to(b));
        }
    }

    #[test]
    fn matrix_covers_every_backend_and_class() {
        let quick = FaultsimCfg {
            threads: 2,
            iters: 10,
            seed: 1,
            horizon: 30_000,
        };
        // Single cheap cell smoke; the full matrix runs in the e2e tests.
        let cell = run_cell(BackendKind::Ideal, FaultClass::None, &quick);
        assert_eq!(cell.verdict, "pass");
        assert!(cell.finished);
        let na = run_cell(BackendKind::Ssb, FaultClass::LrtPressure, &quick);
        assert_eq!(na.verdict, "n/a");
    }
}
