//! One generator per paper figure/table.

use crate::run::*;
use crate::table::{f1, ratio, Table};
use locksim_machine::MachineConfig;
use locksim_swlocks::SwAlg;

/// Figure 1: qualitative comparison of locking mechanisms (static
/// characteristics matrix, reproduced from the paper's taxonomy).
pub fn fig1() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 1 — comparison of locking mechanisms",
        &[
            "mechanism",
            "RW locks",
            "local spin",
            "queue (FIFO)",
            "eviction detection",
            "trylock",
            "scalability",
            "memory/area",
            "transfer msgs",
            "L1 changes",
        ],
    );
    let rows: Vec<[&str; 10]> = vec![
        [
            "TAS/TATAS",
            "no",
            "no",
            "no",
            "n/a",
            "yes",
            "poor",
            "1 line/lock",
            "O(threads)",
            "no",
        ],
        [
            "MCS",
            "no",
            "yes",
            "yes",
            "no",
            "no",
            "good",
            "O(n)/lock",
            "~3 coherence ops",
            "no",
        ],
        [
            "MRSW (RW-MCS)",
            "yes",
            "partly",
            "yes",
            "no",
            "no",
            "counter hotspot",
            "O(n)/lock",
            ">3 coherence ops",
            "no",
        ],
        [
            "QOLB",
            "no",
            "yes",
            "yes",
            "no",
            "no",
            "good",
            "2 lines/lock + tags",
            "1-2",
            "yes",
        ],
        [
            "MAO (fetch&op)",
            "no",
            "no",
            "no",
            "n/a",
            "yes",
            "memory bound",
            "none",
            "2 (round trip)",
            "no",
        ],
        [
            "SSB",
            "yes (unfair)",
            "no",
            "no",
            "n/a",
            "yes",
            "retry bound",
            "SSB table",
            "2 (round trip)",
            "no",
        ],
        [
            "LCU/LRT (paper)",
            "yes (fair)",
            "yes",
            "yes",
            "yes (timeout)",
            "yes",
            "good",
            "LCU+LRT tables",
            "1 (direct)",
            "no",
        ],
    ];
    for r in rows {
        t.push(r.iter().map(|s| s.to_string()).collect());
    }
    vec![t]
}

/// Figure 8: machine model parameters.
pub fn fig8() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 8 — model parameters",
        &["parameter", "Model A", "Model B"],
    );
    let a = MachineConfig::model_a(32);
    let b = MachineConfig::model_b();
    let rows: Vec<(&str, String, String)> = vec![
        ("chips", a.chips.to_string(), b.chips.to_string()),
        ("cores", a.n_cores().to_string(), b.n_cores().to_string()),
        (
            "L1 latency (cy)",
            a.l1_latency.to_string(),
            b.l1_latency.to_string(),
        ),
        (
            "dir/L2 latency (cy)",
            a.dir_latency.to_string(),
            b.dir_latency.to_string(),
        ),
        (
            "DRAM latency (cy)",
            a.dram_latency.to_string(),
            b.dram_latency.to_string(),
        ),
        (
            "LCU entries",
            format!("{}+2", a.lcu_entries),
            format!("{}+2", b.lcu_entries),
        ),
        (
            "LCU latency (cy)",
            a.lcu_latency.to_string(),
            b.lcu_latency.to_string(),
        ),
        ("LRTs", a.n_mems().to_string(), b.n_mems().to_string()),
        (
            "LRT entries",
            a.lrt_entries.to_string(),
            b.lrt_entries.to_string(),
        ),
        (
            "LRT latency (cy)",
            a.lrt_latency.to_string(),
            b.lrt_latency.to_string(),
        ),
    ];
    for (k, va, vb) in rows {
        t.push(vec![k.into(), va, vb]);
    }
    vec![t]
}

/// Figure 9: CS execution time, LCU vs SSB, Models A and B.
pub fn fig9() -> Vec<Table> {
    let iters = scaled(20_000, 1_500);
    let mut tables = Vec::new();
    for model in [ModelSel::A, ModelSel::B] {
        let mut t = Table::new(
            format!(
                "Figure 9{} — CS time (cycles/CS), LCU vs SSB, Model {}",
                if model == ModelSel::A { 'a' } else { 'b' },
                model.label()
            ),
            &["backend", "write%", "4", "8", "16", "24", "32"],
        );
        for backend in [BackendKind::Lcu, BackendKind::Ssb] {
            for write_pct in [100, 75, 50, 25] {
                let mut row = vec![backend.label().to_string(), write_pct.to_string()];
                for threads in [4usize, 8, 16, 24, 32] {
                    let r = run_microbench(model, backend, threads, write_pct, iters, 42);
                    row.push(f1(r.cycles_per_cs));
                }
                t.push(row);
            }
        }
        tables.push(t);
    }
    tables
}

/// Figure 10: CS execution time, LCU vs software locks, including
/// oversubscription beyond 32 threads.
pub fn fig10() -> Vec<Table> {
    let iters = scaled(10_000, 1_000);
    let mut tables = Vec::new();
    for model in [ModelSel::A, ModelSel::B] {
        let mut t = Table::new(
            format!(
                "Figure 10{} — CS time (cycles/CS), LCU vs software locks, Model {}",
                if model == ModelSel::A { 'a' } else { 'b' },
                model.label()
            ),
            &["backend", "write%", "4", "8", "16", "32", "40", "48"],
        );
        let series: Vec<(BackendKind, u32)> = vec![
            (BackendKind::Lcu, 100),
            (BackendKind::Lcu, 75),
            (BackendKind::Sw(SwAlg::Mcs), 100),
            (BackendKind::Sw(SwAlg::Mrsw), 100),
            (BackendKind::Sw(SwAlg::Mrsw), 75),
            (BackendKind::Sw(SwAlg::Tatas), 100),
            (BackendKind::Sw(SwAlg::Tas), 100),
        ];
        for (backend, write_pct) in series {
            let mut row = vec![backend.label().to_string(), write_pct.to_string()];
            for threads in [4usize, 8, 16, 32, 40, 48] {
                let r = run_microbench(model, backend, threads, write_pct, iters, 42);
                row.push(f1(r.cycles_per_cs));
            }
            t.push(row);
        }
        tables.push(t);
    }
    tables
}

/// Figure 11: STM scalability on the RB-tree (2^8 nodes, 75% read-only)
/// plus the machine-level cycle dissection at 16 threads.
pub fn fig11() -> Vec<Table> {
    let txns_total = scaled(3_000, 400);
    let mut scal = Table::new(
        "Figure 11 — RB-tree 2^8, 75% reads: cycles/transaction vs threads (Model A)",
        &["variant", "1", "2", "4", "8", "16", "32"],
    );
    // The dissection comes from the machine's per-thread cycle accounting
    // (every simulated cycle lands in exactly one bucket), aggregated over
    // the 16 threads: the six bucket columns sum to `total`, which is the
    // sum of the threads' simulated lifetimes.
    let mut dissect = Table::new(
        "Figure 11 (dissection) — cycle dissection at 16 threads (cycles summed over threads)",
        &[
            "variant",
            "compute",
            "memory",
            "lock acquire",
            "lock hold",
            "lock release",
            "preempted",
            "total",
            "aborts/commit",
        ],
    );
    for variant in [
        StmVariant::SwOnly,
        StmVariant::Lcu,
        StmVariant::Fraser,
        StmVariant::Ssb,
    ] {
        let mut row = vec![variant.label().to_string()];
        for threads in [1usize, 2, 4, 8, 16, 32] {
            let per_thread = (txns_total / threads as u64).max(10) as u32;
            let r = run_stm(
                ModelSel::A,
                variant,
                StructSel::Rb,
                256,
                threads,
                per_thread,
                75,
                42,
            );
            row.push(f1(r.cycles_per_tx));
            if threads == 16 {
                let d = r.dissection;
                dissect.push(vec![
                    variant.label().to_string(),
                    d.compute.to_string(),
                    d.memory.to_string(),
                    d.lock_acquire.to_string(),
                    d.lock_hold.to_string(),
                    d.lock_release.to_string(),
                    d.preempted.to_string(),
                    d.total().to_string(),
                    format!("{:.2}", r.abort_ratio),
                ]);
            }
        }
        scal.push(row);
    }
    vec![scal, dissect]
}

/// Figure 12: transaction execution time at 16 threads, 75% read-only,
/// larger structures.
pub fn fig12() -> Vec<Table> {
    let txns_per_thread = scaled(100, 25) as u32;
    let mut t = Table::new(
        "Figure 12 — cycles/transaction, 16 threads, 75% reads (Model A)",
        &[
            "structure",
            "max nodes",
            "sw-only",
            "lcu",
            "fraser",
            "ssb",
            "lcu speedup vs sw-only",
        ],
    );
    // The skip list runs at 2^13 keys: its sw-only variant is ~20x more
    // expensive per transaction than the RB tree under reader congestion,
    // and the paper's metric (the speedup ratio) is stable in structure
    // size. The other structures use the paper's sizes.
    let configs: Vec<(StructSel, u64)> = vec![
        (StructSel::Rb, scaled(1 << 15, 1 << 10)),
        (StructSel::Skip, scaled(1 << 13, 1 << 10)),
        (StructSel::Hash, scaled(1 << 19, 1 << 12)),
    ];
    for (st, nodes) in configs {
        let mut vals = Vec::new();
        for variant in [
            StmVariant::SwOnly,
            StmVariant::Lcu,
            StmVariant::Fraser,
            StmVariant::Ssb,
        ] {
            eprintln!("  fig12: {} / {} ...", st.label(), variant.label());
            let r = run_stm(ModelSel::A, variant, st, nodes, 16, txns_per_thread, 75, 42);
            vals.push(r.cycles_per_tx);
        }
        t.push(vec![
            st.label().into(),
            nodes.to_string(),
            f1(vals[0]),
            f1(vals[1]),
            f1(vals[2]),
            f1(vals[3]),
            ratio(vals[0] / vals[1]),
        ]);
    }
    vec![t]
}

/// Figure 13: application execution time (mean ± 95% CI over 5 seeds).
pub fn fig13() -> Vec<Table> {
    let reps = scaled(5, 2);
    let mut t = Table::new(
        "Figure 13 — application execution time (cycles, mean ± 95% CI); lcu+flt = §IV-C extension",
        &[
            "app",
            "threads",
            "posix",
            "lcu",
            "lcu+flt",
            "ssb",
            "lcu speedup vs posix",
        ],
    );
    for app in [AppSel::Fluidanimate, AppSel::Cholesky, AppSel::Radiosity] {
        let mut means = Vec::new();
        let mut cells = vec![app.label().to_string(), app.threads().to_string()];
        for backend in [
            BackendKind::Sw(SwAlg::Posix),
            BackendKind::Lcu,
            BackendKind::LcuFlt,
            BackendKind::Ssb,
        ] {
            let r = repeat(reps, 100, |seed| run_app(app, backend, seed) as f64);
            let s = r.summary();
            means.push(s.mean);
            cells.push(format!("{:.0} ±{:.0}", s.mean, s.ci95));
        }
        cells.push(ratio(means[0] / means[1]));
        t.push(cells);
    }
    vec![t]
}

/// Fairness analysis: Jain's index over per-thread critical sections
/// (supporting the paper's fairness and starvation-freedom claims — the
/// FIFO queue spreads throughput evenly; unfair mechanisms concentrate it).
pub fn fairness() -> Vec<Table> {
    let iters = scaled(20_000, 2_000);
    let mut t = Table::new(
        "Fairness — Jain's index of per-thread CS throughput (1.0 = perfectly fair)",
        &[
            "backend",
            "write%",
            "16 threads (A)",
            "32 threads (A)",
            "32 threads (B)",
        ],
    );
    let series: Vec<(BackendKind, u32)> = vec![
        (BackendKind::Lcu, 100),
        (BackendKind::Lcu, 25),
        (BackendKind::Ssb, 100),
        (BackendKind::Ssb, 25),
        (BackendKind::Sw(SwAlg::Mcs), 100),
        (BackendKind::Sw(SwAlg::Tatas), 100),
        (BackendKind::Sw(SwAlg::Tas), 100),
    ];
    for (backend, wp) in series {
        let a16 = run_microbench(ModelSel::A, backend, 16, wp, iters, 42);
        let a32 = run_microbench(ModelSel::A, backend, 32, wp, iters, 42);
        let b32 = run_microbench(ModelSel::B, backend, 32, wp, iters, 42);
        t.push(vec![
            backend.label().into(),
            wp.to_string(),
            format!("{:.3}", jain_index(&a16.per_thread_acquires)),
            format!("{:.3}", jain_index(&a32.per_thread_acquires)),
            format!("{:.3}", jain_index(&b32.per_thread_acquires)),
        ]);
    }
    vec![t]
}

/// Message-cost analysis: network messages per granted critical section,
/// the measured counterpart of Figure 1's "transfer messages" column.
pub fn messages() -> Vec<Table> {
    let iters = scaled(10_000, 1_500);
    let mut t = Table::new(
        "Messages per critical section (Model A, 16 threads, 100% writes)",
        &["backend", "control msgs/CS", "data msgs/CS", "cycles/CS"],
    );
    let backends = [
        BackendKind::Ideal,
        BackendKind::Lcu,
        BackendKind::Ssb,
        BackendKind::Sw(SwAlg::Mcs),
        BackendKind::Sw(SwAlg::Mrsw),
        BackendKind::Sw(SwAlg::Tatas),
        BackendKind::Sw(SwAlg::Tas),
    ];
    for b in backends {
        let r = run_microbench(ModelSel::A, b, 16, 100, iters, 42);
        let n = iters as f64;
        // Message classes come straight from the metrics registry: every
        // network send is counted at the machine's single send path.
        let c = &r.metrics.counters;
        t.push(vec![
            b.label().into(),
            format!("{:.1}", c.get("net_control_msgs") as f64 / n),
            format!("{:.1}", c.get("net_data_msgs") as f64 / n),
            f1(r.cycles_per_cs),
        ]);
    }
    vec![t]
}

/// Modern software RW locks vs the LCU: BRAVO (biased, ATC '19) and
/// Fissile (MCS core + reader aggregation, 2020) against the paper-era
/// baselines under the identical workload, with handoff-latency tails
/// from the `lock_wait_cycles` histogram. The comparison the paper could
/// not make: does a decade of software RW-lock research close the gap to
/// hardware support?
pub fn swrw() -> Vec<Table> {
    let iters = scaled(10_000, 1_200);
    let threads = 16;
    let mut t = Table::new(
        "Modern software RW locks vs the LCU — Model A, 16 threads \
         (handoff = lock_wait_cycles percentiles)",
        &[
            "backend",
            "write%",
            "cycles/CS",
            "handoff p50",
            "handoff p99",
            "handoff p99.9",
            "handoff max",
        ],
    );
    let mut internals = Table::new(
        "BRAVO / Fissile protocol internals (same runs)",
        &[
            "backend",
            "write%",
            "fast reads",
            "slow reads",
            "revocations",
            "re-bias",
            "rollbacks",
            "writer waits",
        ],
    );
    let rw: &[BackendKind] = &[
        BackendKind::Lcu,
        BackendKind::Ssb,
        BackendKind::Sw(SwAlg::Mrsw),
        BackendKind::Sw(SwAlg::Bravo),
        BackendKind::Sw(SwAlg::Fissile),
    ];
    for &wp in &[0u32, 10, 100] {
        // MCS is writer-only: it joins the write-only column as the classic
        // queue-lock reference and is skipped for read mixes.
        let row_backends: Vec<BackendKind> = if wp == 100 {
            let mut v = rw.to_vec();
            v.push(BackendKind::Sw(SwAlg::Mcs));
            v
        } else {
            rw.to_vec()
        };
        for b in row_backends {
            let r = run_microbench(ModelSel::A, b, threads, wp, iters, 42);
            let h = r
                .metrics
                .hists
                .iter()
                .find(|h| h.name == "lock_wait_cycles");
            let pct = |f: fn(&locksim_trace::metrics::HistSummary) -> u64| {
                h.map(|h| f(h).to_string()).unwrap_or_else(|| "-".into())
            };
            t.push(vec![
                b.label().into(),
                wp.to_string(),
                f1(r.cycles_per_cs),
                pct(|h| h.p50),
                pct(|h| h.p99),
                pct(|h| h.p999),
                pct(|h| h.max),
            ]);
            if matches!(
                b,
                BackendKind::Sw(SwAlg::Bravo) | BackendKind::Sw(SwAlg::Fissile)
            ) {
                let c = &r.metrics.counters;
                internals.push(vec![
                    b.label().into(),
                    wp.to_string(),
                    (c.get("sw_bravo_fast_reads") + c.get("sw_fissile_read_fast")).to_string(),
                    c.get("sw_bravo_slow_reads").to_string(),
                    c.get("sw_bravo_revocations").to_string(),
                    c.get("sw_bravo_rebias").to_string(),
                    c.get("sw_fissile_rollbacks").to_string(),
                    c.get("sw_fissile_writer_waits").to_string(),
                ]);
            }
        }
    }
    vec![t, internals]
}

/// Headline summary: the paper's §IV-A/B/C claims recomputed from the model.
pub fn summary() -> Vec<Table> {
    let iters = scaled(20_000, 1_500);
    let mut t = Table::new(
        "Headline claims — paper vs this reproduction",
        &["claim", "paper", "measured"],
    );
    // Lock transfer vs SSB (Model A, 100% writes, averaged over threads).
    let mut lcu_sum = 0.0;
    let mut ssb_sum = 0.0;
    for threads in [4usize, 8, 16, 24, 32] {
        lcu_sum +=
            run_microbench(ModelSel::A, BackendKind::Lcu, threads, 100, iters, 42).cycles_per_cs;
        ssb_sum +=
            run_microbench(ModelSel::A, BackendKind::Ssb, threads, 100, iters, 42).cycles_per_cs;
    }
    t.push(vec![
        "LCU CS time vs SSB (Model A, 100% writes)".into(),
        "~30% lower".into(),
        format!("{:.1}% lower", (1.0 - lcu_sum / ssb_sum) * 100.0),
    ]);
    // vs MCS.
    let mcs: f64 = [8usize, 16, 32]
        .iter()
        .map(|&n| {
            run_microbench(ModelSel::A, BackendKind::Sw(SwAlg::Mcs), n, 100, iters, 42)
                .cycles_per_cs
        })
        .sum();
    let lcu: f64 = [8usize, 16, 32]
        .iter()
        .map(|&n| run_microbench(ModelSel::A, BackendKind::Lcu, n, 100, iters, 42).cycles_per_cs)
        .sum();
    t.push(vec![
        "LCU vs MCS (contended)".into(),
        ">2x faster".into(),
        ratio(mcs / lcu),
    ]);
    // vs MRSW at 75% reads (25% writes per the paper's label convention:
    // "75% read case").
    let mrsw: f64 = [8usize, 16, 32]
        .iter()
        .map(|&n| {
            run_microbench(ModelSel::A, BackendKind::Sw(SwAlg::Mrsw), n, 25, iters, 42)
                .cycles_per_cs
        })
        .sum();
    let lcu_r: f64 = [8usize, 16, 32]
        .iter()
        .map(|&n| run_microbench(ModelSel::A, BackendKind::Lcu, n, 25, iters, 42).cycles_per_cs)
        .sum();
    t.push(vec![
        "LCU vs MRSW (75% reads)".into(),
        "~9x faster".into(),
        ratio(mrsw / lcu_r),
    ]);
    // STM speedup (fig12 RB).
    let nodes = scaled(1 << 15, 1 << 10);
    let tx = scaled(150, 25) as u32;
    let sw = run_stm(
        ModelSel::A,
        StmVariant::SwOnly,
        StructSel::Rb,
        nodes,
        16,
        tx,
        75,
        42,
    );
    let lc = run_stm(
        ModelSel::A,
        StmVariant::Lcu,
        StructSel::Rb,
        nodes,
        16,
        tx,
        75,
        42,
    );
    t.push(vec![
        "STM RB-tree speedup (LCU vs sw-only, 16T, 75% reads)".into(),
        "1.5x - 3.4x".into(),
        ratio(sw.cycles_per_tx / lc.cycles_per_tx),
    ]);
    // Application geomean.
    let mut geo = 1.0;
    for app in [AppSel::Fluidanimate, AppSel::Cholesky, AppSel::Radiosity] {
        let posix = run_app(app, BackendKind::Sw(SwAlg::Posix), 100) as f64;
        let lcu_t = run_app(app, BackendKind::Lcu, 100) as f64;
        geo *= posix / lcu_t;
    }
    geo = geo.powf(1.0 / 3.0);
    t.push(vec![
        "Application geomean speedup (LCU vs posix)".into(),
        "~2%".into(),
        format!("{:+.1}%", (geo - 1.0) * 100.0),
    ]);
    vec![t]
}
