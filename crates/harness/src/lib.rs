//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section against the simulator.
//!
//! Each `figN` binary prints the corresponding result table(s) as markdown
//! and writes CSVs under `results/`; `all` regenerates everything. Run
//! with `LOCKSIM_QUICK=1` for scaled-down smoke versions.
//!
//! ```text
//! cargo run --release -p locksim-harness --bin fig9
//! cargo run --release -p locksim-harness --bin all
//! ```
//!
//! Every binary accepts `--trace <path>` (plus `--trace-cap <records>`),
//! which captures the first simulated run as Chrome trace-event JSON for
//! Perfetto / `chrome://tracing`, and appends a metrics-registry section
//! to the markdown output and `results/` CSVs.

pub mod bench;
pub mod chaos;
pub mod faultsim;
pub mod figs;
pub mod lockstat;
pub mod obs;
pub mod run;
pub mod sweep;
pub mod table;

pub use run::{
    jain_index, quick, repeat, run_app, run_microbench, run_stm, scaled, AppSel, BackendKind,
    MicroResult, ModelSel, StmResult, StmVariant, StructSel,
};
pub use table::Table;

use std::path::Path;

/// Prints tables as markdown and writes CSVs under `results/`.
///
/// # Panics
///
/// Panics if the results directory cannot be written.
pub fn emit(name: &str, tables: &[Table]) {
    let dir = Path::new("results");
    for (i, t) in tables.iter().enumerate() {
        println!("{}", t.markdown());
        let suffix = if tables.len() > 1 {
            format!("{name}_{i}")
        } else {
            name.to_string()
        };
        t.save_csv(dir, &suffix).expect("write results csv");
    }
}

/// Entry point shared by the figure binaries: parses the shared
/// observability flags (`--trace <path>`, `--trace-cap <records>`,
/// `--lockstat <path>`, `--watchdog-cycles <n>`, `--self-profile <path>`)
/// plus `--quick` (equivalent to `LOCKSIM_QUICK=1`) through the uniform
/// [`obs::parse_bin_cli`] helper, regenerates the figure, emits its
/// tables, and appends the metrics section collected from the figure's
/// runs (printed as markdown, saved as `results/<name>_metrics.csv`).
///
/// # Panics
///
/// Panics if the results directory cannot be written.
pub fn run_bin(name: &str, f: impl FnOnce() -> Vec<Table>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = [obs::BinFlag {
        name: "--quick",
        takes_value: false,
    }];
    match obs::parse_bin_cli(&args, &flags) {
        Ok((opts, extras)) => {
            if extras.contains_key("--quick") {
                std::env::set_var("LOCKSIM_QUICK", "1");
            }
            obs::apply_opts(&opts);
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
    let tables = f();
    emit(name, &tables);
    finish_bin(name);
}

/// A figure generator: produces the figure's tables from a fresh world.
pub type FigFn = fn() -> Vec<Table>;

/// Every figure of the evaluation, in the `all` bin's emission order.
pub const ALL_FIGS: &[(&str, FigFn)] = &[
    ("fig1", figs::fig1),
    ("fig8", figs::fig8),
    ("fig9", figs::fig9),
    ("fig10", figs::fig10),
    ("fig11", figs::fig11),
    ("fig12", figs::fig12),
    ("fig13", figs::fig13),
    ("fairness", figs::fairness),
    ("messages", figs::messages),
    ("swrw", figs::swrw),
    ("summary", figs::summary),
];

/// Regenerates every figure (the `all` bin's work). With `jobs > 1` the
/// figures run on worker threads via [`sweep`]; each figure's tables and
/// observability still emit on the main thread in [`ALL_FIGS`] order, so
/// stdout and every `results/` artifact are byte-identical to `jobs == 1`.
///
/// # Panics
///
/// Panics if the results directory cannot be written.
pub fn run_all(jobs: usize) {
    if sweep::effective_jobs(jobs, ALL_FIGS.len()) <= 1 {
        for (name, f) in ALL_FIGS {
            eprintln!("== regenerating {name} ==");
            let tables = f();
            emit(name, &tables);
            finish_bin(name);
        }
        return;
    }
    let outs = sweep::run_jobs(jobs, ALL_FIGS.len(), |i| (ALL_FIGS[i].1)());
    for ((name, _), out) in ALL_FIGS.iter().zip(outs) {
        eprintln!("== regenerating {name} ==");
        let tables = sweep::include(out);
        emit(name, &tables);
        finish_bin(name);
    }
}

/// Emits the deferred observability outputs collected during a bin's runs:
/// the metrics section and, when `--lockstat` was given, the HTML report.
/// Split out of [`run_bin`] for bins that drive their own argument parsing.
///
/// # Panics
///
/// Panics if the results directory or the report file cannot be written.
pub fn finish_bin(name: &str) {
    let runs = obs::take_runs();
    if let Some(t) = obs::metrics_table(name, &runs) {
        println!("{}", t.markdown());
        t.save_csv(Path::new("results"), &format!("{name}_metrics"))
            .expect("write metrics csv");
    }
    let manifests = obs::manifests(name, &runs);
    if !manifests.is_empty() {
        let dir = Path::new("results/runs");
        for m in &manifests {
            locksim_report::write_manifest(dir, m)
                .unwrap_or_else(|e| panic!("write run manifest to {}: {e}", dir.display()));
        }
        eprintln!(
            "ledger: wrote {} run manifest(s) to {} (aggregate with the `report` bin)",
            manifests.len(),
            dir.display()
        );
    }
    if let Some((path, html)) = obs::take_lockstat_html(name) {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create lockstat report dir");
        }
        std::fs::write(&path, html)
            .unwrap_or_else(|e| panic!("write lockstat report {}: {e}", path.display()));
        eprintln!("lockstat: wrote HTML report to {}", path.display());
    }
    if let Some((path, report)) = obs::take_self_profile() {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create self-profile dir");
        }
        std::fs::write(&path, report.collapsed())
            .unwrap_or_else(|e| panic!("write self-profile {}: {e}", path.display()));
        eprintln!(
            "self-profile: wrote collapsed stacks to {} (flamegraph.pl / speedscope)",
            path.display()
        );
        eprint!("{}", report.render_table());
    }
}
