//! The `lockstat` bin's workload: a writer-starvation contrast between the
//! SSB baseline and the LCU, profiled per lock.
//!
//! A pool of reader threads hammers one lock in read mode while a single
//! writer periodically asks for exclusive access. The SSB's reader
//! preference keeps granting overlapping read sessions and bounces the
//! writer's remote requests with Deny/retry, so the writer's wait grows
//! with the length of the reader stream — the paper's motivating
//! starvation anomaly. The LCU enqueues the writer in arrival order and
//! caps its wait at one reader-group drain, which stays far under the
//! watchdog threshold. Running both backends on the same schedule turns
//! the watchdog into a pass/fail oracle: SSB must flag, LCU must not.
//!
//! The modern software RW backends join the contrast as extra panels:
//! BRAVO revokes its reader bias on the writer's arrival and then waits
//! one reader-group drain behind the writer-preferring MRSW slow path,
//! and Fissile's write bit blocks new readers immediately — so both keep
//! the writer's wait bounded and must not flag either, at software-lock
//! (not LCU) handoff cost.

use std::path::PathBuf;

use locksim_machine::{
    blocking_chains, render_chains, LockChain, LockStats, StarvationFlag, World,
};
use locksim_workloads::{CsThread, IterPool};

use crate::obs;
use crate::run::{scaled, BackendKind, ModelSel};
use crate::table::Table;
use crate::{emit, finish_bin};

/// Watchdog threshold used when `--watchdog-cycles` is not given. Sized
/// between the LCU's worst writer wait (one reader-group drain, well under
/// 10k cycles at both scales) and the SSB's (the whole reader phase, over
/// 100k cycles even in quick mode).
pub const DEFAULT_WATCHDOG_CYCLES: u64 = 30_000;

/// Trace-ring capacity for the starvation runs (they emit far fewer
/// records than the figure workloads).
const TRACE_CAP: usize = 100_000;

/// Parameters of one starvation contrast run.
#[derive(Debug, Clone, Copy)]
pub struct StarvationCfg {
    /// Reader thread count.
    pub readers: usize,
    /// Total read critical sections shared across the readers.
    pub reader_iters: u64,
    /// Read critical-section length in cycles. Long enough that the read
    /// sessions of [`StarvationCfg::readers`] threads always overlap.
    pub reader_cs: u64,
    /// Write critical sections issued by the single writer.
    pub writer_iters: u64,
    /// Starvation-watchdog threshold in cycles.
    pub watchdog_cycles: u64,
    /// World seed.
    pub seed: u64,
}

impl StarvationCfg {
    /// The default contrast configuration (scaled down under
    /// `LOCKSIM_QUICK`).
    pub fn default_scaled() -> Self {
        StarvationCfg {
            readers: 8,
            reader_iters: scaled(4_000, 600),
            reader_cs: 400,
            writer_iters: scaled(20, 5),
            watchdog_cycles: DEFAULT_WATCHDOG_CYCLES,
            seed: 42,
        }
    }
}

/// Everything collected from one backend's starvation run.
#[derive(Debug)]
pub struct LockstatRun {
    /// Backend label for tables and the report.
    pub label: &'static str,
    /// Per-lock statistics (watchdog armed).
    pub stats: LockStats,
    /// Longest blocking chains reconstructed from the run's trace.
    pub chains: Vec<LockChain>,
    /// Simulated end time.
    pub end_cycles: u64,
}

impl LockstatRun {
    /// Watchdog firings plus still-overdue waits at run end.
    pub fn all_flags(&self) -> Vec<StarvationFlag> {
        let mut v = self.stats.flags().to_vec();
        v.extend(self.stats.overdue(self.end_cycles));
        v
    }

    /// Whether any write-mode wait tripped the watchdog.
    pub fn writer_starved(&self) -> bool {
        self.all_flags().iter().any(|f| f.write)
    }

    /// The full text report: per-lock stats, watchdog section, chains.
    pub fn report(&self) -> String {
        format!(
            "== backend {} ==\n{}{}",
            self.label,
            self.stats.report(self.end_cycles),
            render_chains(&self.chains)
        )
    }
}

/// Runs the reader-stream-vs-single-writer workload on `backend` and
/// profiles it per lock.
pub fn run_starvation(backend: BackendKind, cfg: &StarvationCfg) -> LockstatRun {
    let mut mach_cfg = ModelSel::A.config();
    if backend == BackendKind::LcuFlt {
        mach_cfg.flt_entries = 4;
    }
    let mut w = World::new(mach_cfg, backend.build(), cfg.seed);
    obs::arm(&mut w);
    w.enable_lockstat(Some(cfg.watchdog_cycles));
    if !w.mach_ref().tracer().is_enabled() {
        w.enable_trace(TRACE_CAP);
    }
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let reader_pool = IterPool::new(cfg.reader_iters);
    for i in 0..cfg.readers {
        // Stagger the read sections so the readers fall out of lockstep:
        // with distinct lengths the read sessions overlap persistently
        // instead of opening a writer-sized gap every round.
        let cs = cfg.reader_cs + 37 * i as u64;
        w.spawn(Box::new(
            CsThread::new(lock, data, reader_pool.clone(), 0).with_cs_compute(cs),
        ));
    }
    let writer_pool = IterPool::new(cfg.writer_iters);
    w.spawn(Box::new(CsThread::new(lock, data, writer_pool, 100)));
    w.run_to_completion();
    obs::observe(backend.label(), &w);
    let end_cycles = w.mach().now().cycles();
    LockstatRun {
        label: backend.label(),
        stats: w.lockstat().clone(),
        chains: blocking_chains(w.mach_ref().tracer().events()),
        end_cycles,
    }
}

/// Renders the runs into the bin's tables: per-lock stats, the watchdog
/// verdicts, and the longest blocking chains.
pub fn tables(cfg: &StarvationCfg, runs: &[LockstatRun]) -> Vec<Table> {
    let mut stats = Table::new(
        format!(
            "Per-lock contention — {} readers ({} iters) vs 1 writer ({} iters), seed {}",
            cfg.readers, cfg.reader_iters, cfg.writer_iters, cfg.seed
        ),
        &[
            "backend",
            "lock",
            "acq r",
            "acq w",
            "fails",
            "wait p50",
            "wait p99",
            "max wait w",
            "hold p50",
            "queue max",
            "readers max",
            "backend counters",
        ],
    );
    for r in runs {
        for (addr, s) in r.stats.locks() {
            let aux: Vec<String> = s.aux.iter().map(|(k, v)| format!("{k}={v}")).collect();
            stats.push(vec![
                r.label.to_string(),
                format!("{addr:#x}"),
                s.acquires[0].to_string(),
                s.acquires[1].to_string(),
                s.fails.to_string(),
                s.handoff.quantile(0.50).unwrap_or(0).to_string(),
                s.handoff.quantile(0.99).unwrap_or(0).to_string(),
                s.max_wait[1].to_string(),
                s.hold.quantile(0.50).unwrap_or(0).to_string(),
                s.max_queue.to_string(),
                s.max_readers.to_string(),
                aux.join(" "),
            ]);
        }
    }

    let mut watchdog = Table::new(
        format!(
            "Starvation watchdog — threshold {} cycles",
            cfg.watchdog_cycles
        ),
        &[
            "backend",
            "verdict",
            "flags",
            "max waited",
            "flagged threads",
        ],
    );
    for r in runs {
        let flags = r.all_flags();
        let verdict = if r.writer_starved() {
            "STARVED"
        } else if flags.is_empty() {
            "ok"
        } else {
            "reader flags only"
        };
        let max_waited = flags.iter().map(|f| f.waited).max().unwrap_or(0);
        let mut threads: Vec<u32> = flags.iter().map(|f| f.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        watchdog.push(vec![
            r.label.to_string(),
            verdict.to_string(),
            flags.len().to_string(),
            max_waited.to_string(),
            threads
                .iter()
                .map(|t| format!("t{t}"))
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }

    let mut chains = Table::new(
        "Longest blocking chains (who-blocked-whom handoff runs)".to_string(),
        &["backend", "lock", "depth", "span", "total wait", "chain"],
    );
    for r in runs {
        let mut by_depth: Vec<&LockChain> = r.chains.iter().collect();
        by_depth.sort_by_key(|c| std::cmp::Reverse(c.links.len()));
        for c in by_depth {
            let path: Vec<String> = c
                .links
                .iter()
                .map(|l| format!("t{}:{}", l.thread, if l.write { "w" } else { "r" }))
                .collect();
            chains.push(vec![
                r.label.to_string(),
                format!("{:#x}", c.lock),
                c.links.len().to_string(),
                c.span.to_string(),
                c.total_wait.to_string(),
                path.join(" -> "),
            ]);
        }
    }

    vec![stats, watchdog, chains]
}

/// Entry point of the `lockstat` bin (shared by the root-package shim so
/// `cargo run --bin lockstat` works without `-p locksim-harness`): parses
/// flags, runs the SSB-vs-LCU starvation contrast, and emits the tables,
/// text reports, CSVs, and HTML report.
pub fn cli_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = [obs::BinFlag {
        name: "--quick",
        takes_value: false,
    }];
    let (mut opts, extras) = match obs::parse_bin_cli(&args, &flags) {
        Ok(parsed) => parsed,
        Err(msg) => usage_exit(&msg),
    };
    if extras.contains_key("--quick") {
        std::env::set_var("LOCKSIM_QUICK", "1");
    }
    // This bin always writes the HTML report; --lockstat only moves it.
    if opts.lockstat_path.is_none() {
        opts.lockstat_path = Some(PathBuf::from("results/lockstat.html"));
    }

    let mut cfg = StarvationCfg::default_scaled();
    if let Some(n) = opts.watchdog_cycles {
        cfg.watchdog_cycles = n;
    }
    opts.watchdog_cycles = Some(cfg.watchdog_cycles);
    obs::apply_opts(&opts);

    let runs = [
        run_starvation(BackendKind::Ssb, &cfg),
        run_starvation(BackendKind::Lcu, &cfg),
        run_starvation(BackendKind::Sw(locksim_swlocks::SwAlg::Bravo), &cfg),
        run_starvation(BackendKind::Sw(locksim_swlocks::SwAlg::Fissile), &cfg),
    ];
    emit("lockstat", &tables(&cfg, &runs));
    for r in &runs {
        println!("{}", r.report());
    }
    finish_bin("lockstat");
}

fn usage_exit(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\nusage: lockstat [--quick] [--lockstat <path>] [--watchdog-cycles <n>] \
         [--trace <path>] [--trace-cap <records>]"
    );
    std::process::exit(2);
}
