//! Harness-side observability: the `--trace <path>` CLI flag and the
//! per-figure metrics accumulation behind the emitted "Metrics" sections.
//!
//! Every experiment executor in [`crate::run`] arms the world before the
//! run ([`arm`]) and reports it afterwards ([`observe`]). When `--trace`
//! was given, the first simulated run of the process is captured into the
//! machine's trace ring and exported as Chrome trace-event JSON (loadable
//! in Perfetto or `chrome://tracing`); every run additionally contributes
//! its end-of-run [`MetricsSnapshot`] to a per-series table that
//! [`crate::run_bin`] prints and saves next to the figure CSVs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;

use locksim_machine::{MetricsSnapshot, World};

use crate::table::Table;

/// Default `--trace` ring capacity (records kept; oldest are dropped).
const DEFAULT_TRACE_CAP: usize = 200_000;

struct Obs {
    trace_path: Option<PathBuf>,
    trace_cap: usize,
    /// A trace has been exported; later runs are left uninstrumented.
    captured: bool,
    /// Per-series (backend/variant label): run count and last snapshot.
    metrics: BTreeMap<String, (u64, MetricsSnapshot)>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            trace_path: None,
            trace_cap: DEFAULT_TRACE_CAP,
            captured: false,
            metrics: BTreeMap::new(),
        }
    }
}

thread_local! {
    static OBS: RefCell<Obs> = RefCell::new(Obs::default());
}

/// Parsed harness CLI options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliOpts {
    /// Write a Chrome trace of the first run here.
    pub trace_path: Option<PathBuf>,
    /// Override the trace ring capacity.
    pub trace_cap: Option<usize>,
}

/// Parses `--trace <path>` and `--trace-cap <records>` from an argument
/// list (without the program name).
///
/// # Errors
///
/// Returns a usage message on an unknown flag or a missing/invalid value.
pub fn parse_cli(args: &[String]) -> Result<CliOpts, String> {
    let mut opts = CliOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let v = it.next().ok_or("--trace requires a file path")?;
                opts.trace_path = Some(PathBuf::from(v));
            }
            "--trace-cap" => {
                let v = it.next().ok_or("--trace-cap requires a record count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--trace-cap: invalid count {v:?}"))?;
                opts.trace_cap = Some(n.max(1));
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?} (supported: --trace <path>, --trace-cap <records>)"
                ))
            }
        }
    }
    Ok(opts)
}

/// Applies process arguments to the observability state. Exits with a
/// usage message on bad arguments. Safe to call more than once (the `all`
/// binary calls it per figure); an already-captured trace is not redone.
pub fn init_from_args() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&args) {
        Ok(opts) => OBS.with(|o| {
            let mut o = o.borrow_mut();
            o.trace_path = opts.trace_path;
            if let Some(cap) = opts.trace_cap {
                o.trace_cap = cap;
            }
        }),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Enables tracing on a freshly built world when a `--trace` capture is
/// still pending. Runs execute sequentially, so at most one world is armed
/// at a time.
pub(crate) fn arm(w: &mut World) {
    OBS.with(|o| {
        let o = o.borrow();
        if o.trace_path.is_some() && !o.captured {
            w.enable_trace(o.trace_cap);
        }
    });
}

/// Reports a finished run: exports the pending trace capture (if this was
/// the armed run) and records the run's metrics snapshot under `label`.
pub(crate) fn observe(label: &str, w: &World) {
    let snap = w.metrics_snapshot();
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        if !o.captured && w.mach_ref().tracer().is_enabled() {
            if let Some(path) = o.trace_path.clone() {
                let tracer = w.mach_ref().tracer();
                let file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("create trace file {}: {e}", path.display()));
                let mut buf = std::io::BufWriter::new(file);
                tracer.export_chrome(&mut buf).expect("write chrome trace");
                eprintln!(
                    "trace: wrote {} records ({} dropped) for series `{label}` to {}",
                    tracer.len(),
                    tracer.dropped(),
                    path.display()
                );
                o.captured = true;
            }
        }
        let entry = o
            .metrics
            .entry(label.to_string())
            .or_insert_with(|| (0, snap.clone()));
        entry.0 += 1;
        entry.1 = snap;
    });
}

/// Drains the accumulated per-series metrics into a table (one row per
/// counter / histogram), or `None` when no instrumented run happened.
pub(crate) fn take_metrics_table(name: &str) -> Option<Table> {
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        if o.metrics.is_empty() {
            return None;
        }
        let mut t = Table::new(
            format!("Metrics — {name} (registry snapshot of each series' last run)"),
            &["series", "runs", "metric", "value"],
        );
        for (label, (runs, snap)) in std::mem::take(&mut o.metrics) {
            for (cname, v) in snap.counters.iter() {
                t.push(vec![
                    label.clone(),
                    runs.to_string(),
                    format!("counter {cname}"),
                    v.to_string(),
                ]);
            }
            for h in &snap.hists {
                t.push(vec![
                    label.clone(),
                    runs.to_string(),
                    format!("hist {}", h.name),
                    format!(
                        "count {} p50 {} p95 {} p99 {}",
                        h.count, h.p50, h.p95, h.p99
                    ),
                ]);
            }
        }
        Some(t)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_trace_flag() {
        let o = parse_cli(&args(&["--trace", "out.json"])).unwrap();
        assert_eq!(o.trace_path, Some(PathBuf::from("out.json")));
        assert_eq!(o.trace_cap, None);
    }

    #[test]
    fn parse_trace_cap() {
        let o = parse_cli(&args(&["--trace", "t.json", "--trace-cap", "512"])).unwrap();
        assert_eq!(o.trace_cap, Some(512));
        // Zero is clamped to a one-record ring rather than rejected.
        let o = parse_cli(&args(&["--trace-cap", "0"])).unwrap();
        assert_eq!(o.trace_cap, Some(1));
    }

    #[test]
    fn parse_rejects_unknown_and_missing() {
        assert!(parse_cli(&args(&["--frobnicate"])).is_err());
        assert!(parse_cli(&args(&["--trace"])).is_err());
        assert!(parse_cli(&args(&["--trace-cap", "many"])).is_err());
    }

    #[test]
    fn empty_args_are_fine() {
        assert_eq!(parse_cli(&[]).unwrap(), CliOpts::default());
    }
}
