//! Harness-side observability: the shared `--trace` / `--lockstat` CLI
//! flags and the per-figure metrics accumulation behind the emitted
//! "Metrics" sections.
//!
//! Every experiment executor in [`crate::run`] arms the world before the
//! run ([`arm`]) and reports it afterwards ([`observe`]). When `--trace`
//! was given, the first simulated run of the process is captured into the
//! machine's trace ring and exported as Chrome trace-event JSON (loadable
//! in Perfetto or `chrome://tracing`); every run additionally contributes
//! its end-of-run [`MetricsSnapshot`] to a per-series table that
//! [`crate::run_bin`] prints and saves next to the figure CSVs. When
//! `--lockstat <path>` was given, every run also collects per-lock
//! contention statistics (plus a trace for blocking-chain analysis) and
//! the accumulated series render into one self-contained HTML report at
//! that path; `--watchdog-cycles <n>` additionally arms the starvation
//! watchdog at that threshold.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;

use locksim_machine::{
    blocking_chains, render_html, HtmlSeries, LockChain, LockStats, MetricsSnapshot, World,
};
use locksim_report::{RunManifest, Verdict};
use locksim_trace::SeriesSnapshot;

use crate::table::Table;

/// Default `--trace` ring capacity (records kept; oldest are dropped).
const DEFAULT_TRACE_CAP: usize = 200_000;

/// One run's lockstat capture, kept until the end-of-process HTML render.
struct LockstatSeries {
    label: String,
    stats: LockStats,
    chains: Vec<LockChain>,
    end_cycles: u64,
}

/// One series' accumulated capture: the run count plus the last run's
/// end-of-run state — everything both the metrics table and the
/// `locksim-run-v1` ledger manifest need.
pub(crate) struct RunCapture {
    /// How many runs contributed (the capture keeps the last one).
    pub runs: u64,
    /// World RNG seed of the last run.
    pub seed: u64,
    /// Simulated end time of the last run, in cycles.
    pub end_cycles: u64,
    /// Metrics-registry snapshot of the last run.
    pub snap: MetricsSnapshot,
    /// Windowed time-series of the last run (empty rows when the series
    /// collector recorded nothing).
    pub series: SeriesSnapshot,
}

struct Obs {
    trace_path: Option<PathBuf>,
    trace_cap: usize,
    lockstat_path: Option<PathBuf>,
    watchdog_cycles: Option<u64>,
    self_profile: Option<PathBuf>,
    /// A trace has been exported; later runs are left uninstrumented.
    captured: bool,
    /// Per-series (backend/variant label) run captures.
    metrics: BTreeMap<String, RunCapture>,
    /// Per-series oracle/gate verdicts, attached to the matching ledger
    /// manifest by label (faultsim cells, chaossim seeds).
    verdicts: BTreeMap<String, Vec<Verdict>>,
    /// Per-run lockstat captures, in run order.
    lockstat: Vec<LockstatSeries>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            trace_path: None,
            trace_cap: DEFAULT_TRACE_CAP,
            lockstat_path: None,
            watchdog_cycles: None,
            self_profile: None,
            captured: false,
            metrics: BTreeMap::new(),
            verdicts: BTreeMap::new(),
            lockstat: Vec::new(),
        }
    }
}

thread_local! {
    static OBS: RefCell<Obs> = RefCell::new(Obs::default());
}

/// Parsed harness CLI options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CliOpts {
    /// Write a Chrome trace of the first run here.
    pub trace_path: Option<PathBuf>,
    /// Override the trace ring capacity.
    pub trace_cap: Option<usize>,
    /// Write the per-lock contention HTML report here.
    pub lockstat_path: Option<PathBuf>,
    /// Starvation-watchdog threshold in cycles.
    pub watchdog_cycles: Option<u64>,
    /// Enable the host-side self-profiler and write the collapsed-stack
    /// profile (flamegraph/speedscope format) here.
    pub self_profile: Option<PathBuf>,
}

/// Parses the shared observability flags (`--trace <path>`,
/// `--trace-cap <records>`, `--lockstat <path>`, `--watchdog-cycles <n>`,
/// `--self-profile <path>`) from an argument list (without the program
/// name). Unrecognized
/// arguments are returned for the caller to handle — bins with their own
/// flags (e.g. `lockstat --quick`) parse the remainder themselves.
///
/// # Errors
///
/// Returns a usage message on a missing or invalid flag value.
pub fn parse_cli_partial(args: &[String]) -> Result<(CliOpts, Vec<String>), String> {
    let mut opts = CliOpts::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                let v = it.next().ok_or("--trace requires a file path")?;
                opts.trace_path = Some(PathBuf::from(v));
            }
            "--trace-cap" => {
                let v = it.next().ok_or("--trace-cap requires a record count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--trace-cap: invalid count {v:?}"))?;
                opts.trace_cap = Some(n.max(1));
            }
            "--lockstat" => {
                let v = it.next().ok_or("--lockstat requires a file path")?;
                opts.lockstat_path = Some(PathBuf::from(v));
            }
            "--watchdog-cycles" => {
                let v = it
                    .next()
                    .ok_or("--watchdog-cycles requires a cycle count")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--watchdog-cycles: invalid count {v:?}"))?;
                opts.watchdog_cycles = Some(n);
            }
            "--self-profile" => {
                let v = it.next().ok_or("--self-profile requires a file path")?;
                opts.self_profile = Some(PathBuf::from(v));
            }
            other => rest.push(other.to_string()),
        }
    }
    Ok((opts, rest))
}

/// Parses the shared observability flags, rejecting anything else.
///
/// # Errors
///
/// Returns a usage message on an unknown flag or a missing/invalid value.
pub fn parse_cli(args: &[String]) -> Result<CliOpts, String> {
    let (opts, rest) = parse_cli_partial(args)?;
    if let Some(other) = rest.first() {
        return Err(format!(
            "unknown argument {other:?} (supported: --trace <path>, --trace-cap <records>, \
             --lockstat <path>, --watchdog-cycles <n>, --self-profile <path>)"
        ));
    }
    Ok(opts)
}

/// A bin-specific flag recognized by [`parse_bin_cli`] on top of the
/// shared observability flags.
#[derive(Debug, Clone, Copy)]
pub struct BinFlag {
    /// The flag, including the leading dashes (e.g. `"--quick"`).
    pub name: &'static str,
    /// Whether the flag consumes the following argument as its value.
    /// Switches store `"1"` when present.
    pub takes_value: bool,
}

/// Parses a bin's full argument list: the shared observability flags
/// (see [`parse_cli_partial`]) plus the bin-specific `flags`. Every bin
/// with its own flags (`lockstat`, `faultsim`) goes through this one
/// helper so unknown-flag handling is uniform: the error names the
/// offending argument and lists everything supported.
///
/// # Errors
///
/// Returns a usage message naming the flag on an unknown argument or a
/// missing/invalid value.
pub fn parse_bin_cli(
    args: &[String],
    flags: &[BinFlag],
) -> Result<(CliOpts, BTreeMap<&'static str, String>), String> {
    let (opts, rest) = parse_cli_partial(args)?;
    let mut extras = BTreeMap::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let Some(f) = flags.iter().find(|f| f.name == a.as_str()) else {
            let mut supported: Vec<&str> = flags.iter().map(|f| f.name).collect();
            supported.extend([
                "--trace <path>",
                "--trace-cap <records>",
                "--lockstat <path>",
                "--watchdog-cycles <n>",
                "--self-profile <path>",
            ]);
            return Err(format!(
                "unknown argument {a:?} (supported: {})",
                supported.join(", ")
            ));
        };
        let value = if f.takes_value {
            it.next()
                .ok_or_else(|| format!("{} requires a value", f.name))?
                .clone()
        } else {
            "1".to_string()
        };
        extras.insert(f.name, value);
    }
    Ok((opts, extras))
}

/// Applies process arguments to the observability state. Exits with a
/// usage message on bad arguments. Safe to call more than once (the `all`
/// binary calls it per figure); an already-captured trace is not redone.
pub fn init_from_args() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_cli(&args) {
        Ok(opts) => apply_opts(&opts),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Applies already-parsed observability options to the process state (used
/// by bins that parse their own extra flags via [`parse_cli_partial`]).
/// `--self-profile <path>` (or the `LOCKSIM_SELF_PROFILE=<path>` env var)
/// additionally switches on the host-side span profiler; everything else
/// leaves it disabled, where a span is a single relaxed atomic load.
pub fn apply_opts(opts: &CliOpts) {
    let self_profile = opts.self_profile.clone().or_else(|| {
        std::env::var_os("LOCKSIM_SELF_PROFILE")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
    });
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        o.trace_path = opts.trace_path.clone();
        if let Some(cap) = opts.trace_cap {
            o.trace_cap = cap;
        }
        o.lockstat_path = opts.lockstat_path.clone();
        o.watchdog_cycles = opts.watchdog_cycles;
        o.self_profile = self_profile;
        if o.self_profile.is_some() {
            locksim_trace::prof::enable();
        }
    });
}

/// Enables instrumentation on a freshly built world: tracing when a
/// `--trace` capture is still pending, and per-lock stats (plus a trace
/// ring for blocking-chain analysis) when `--lockstat` was given. Runs
/// execute sequentially, so at most one world is armed at a time.
pub(crate) fn arm(w: &mut World) {
    OBS.with(|o| {
        let o = o.borrow();
        // The windowed time-series collector is always on: it is bounded
        // memory, purely simulation-derived, and feeds the run-ledger
        // manifests every bin writes (0 = default window).
        w.enable_series(0);
        if o.trace_path.is_some() && !o.captured {
            w.enable_trace(o.trace_cap);
        }
        if o.lockstat_path.is_some() {
            w.enable_lockstat(o.watchdog_cycles);
            if !w.mach_ref().tracer().is_enabled() {
                w.enable_trace(o.trace_cap);
            }
        }
    });
}

/// Reports a finished run: exports the pending trace capture (if this was
/// the armed run) and records the run's metrics snapshot under `label`.
pub(crate) fn observe(label: &str, w: &World) {
    let snap = w.metrics_snapshot();
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        if !o.captured && w.mach_ref().tracer().is_enabled() {
            if let Some(path) = o.trace_path.clone() {
                let tracer = w.mach_ref().tracer();
                let file = std::fs::File::create(&path)
                    .unwrap_or_else(|e| panic!("create trace file {}: {e}", path.display()));
                let mut buf = std::io::BufWriter::new(file);
                tracer.export_chrome(&mut buf).expect("write chrome trace");
                eprintln!(
                    "trace: wrote {} records ({} dropped) for series `{label}` to {}",
                    tracer.len(),
                    tracer.dropped(),
                    path.display()
                );
                o.captured = true;
            }
        }
        let seed = w.mach_ref().seed();
        let end_cycles = w.mach_ref().now().cycles();
        let series = w.series_snapshot();
        let entry = o
            .metrics
            .entry(label.to_string())
            .or_insert_with(|| RunCapture {
                runs: 0,
                seed,
                end_cycles,
                snap: snap.clone(),
                series: series.clone(),
            });
        entry.runs += 1;
        entry.seed = seed;
        entry.end_cycles = end_cycles;
        entry.snap = snap;
        entry.series = series;
        if o.lockstat_path.is_some() && w.lockstat().is_enabled() {
            let chains = blocking_chains(w.mach_ref().tracer().events());
            o.lockstat.push(LockstatSeries {
                label: label.to_string(),
                stats: w.lockstat().clone(),
                chains,
                end_cycles: w.mach_ref().now().cycles(),
            });
        }
    });
}

/// Drains the accumulated lockstat captures into `(path, rendered HTML)`,
/// or `None` when `--lockstat` was not given or no instrumented run
/// happened. [`crate::run_bin`] writes the file.
pub(crate) fn take_lockstat_html(name: &str) -> Option<(PathBuf, String)> {
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        let path = o.lockstat_path.clone()?;
        let series = std::mem::take(&mut o.lockstat);
        if series.is_empty() {
            return None;
        }
        let html_series: Vec<HtmlSeries<'_>> = series
            .iter()
            .map(|s| HtmlSeries {
                label: &s.label,
                stats: &s.stats,
                chains: &s.chains,
                end_cycles: s.end_cycles,
            })
            .collect();
        let title = format!("lockstat — {name}");
        Some((path, render_html(&title, &html_series)))
    })
}

/// Drains the self-profiler when `--self-profile <path>` (or
/// `LOCKSIM_SELF_PROFILE`) armed it: returns the destination path and the
/// aggregated report, or `None` when profiling was off or recorded
/// nothing. [`crate::finish_bin`] writes the collapsed-stack file and
/// prints the hierarchical table.
pub(crate) fn take_self_profile() -> Option<(PathBuf, locksim_trace::ProfileReport)> {
    OBS.with(|o| {
        let path = o.borrow().self_profile.clone()?;
        let report = locksim_trace::prof::take_report();
        if report.is_empty() {
            return None;
        }
        Some((path, report))
    })
}

/// Drains the accumulated per-series run captures. [`crate::finish_bin`]
/// renders them into the metrics table and the run-ledger manifests.
pub(crate) fn take_runs() -> BTreeMap<String, RunCapture> {
    OBS.with(|o| std::mem::take(&mut o.borrow_mut().metrics))
}

/// A worker thread's drained observability: the run captures and verdicts
/// its jobs produced, carried back to the main thread by the sweep runner
/// (see [`crate::sweep`]) and merged in canonical job order.
#[derive(Default)]
pub(crate) struct WorkerCapture {
    metrics: BTreeMap<String, RunCapture>,
    verdicts: BTreeMap<String, Vec<Verdict>>,
}

/// True when the process-wide observability options capture per-run state
/// that only works single-threaded (trace export, lockstat, the
/// self-profiler) — the sweep runner then falls back to sequential
/// execution so those captures see every run.
pub(crate) fn wants_sequential() -> bool {
    OBS.with(|o| {
        let o = o.borrow();
        o.trace_path.is_some() || o.lockstat_path.is_some() || o.self_profile.is_some()
    })
}

/// Drains this thread's run captures and verdicts into a [`WorkerCapture`].
/// Called by sweep workers after each job, so one capture holds exactly
/// one job's observability.
pub(crate) fn drain_worker() -> WorkerCapture {
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        WorkerCapture {
            metrics: std::mem::take(&mut o.metrics),
            verdicts: std::mem::take(&mut o.verdicts),
        }
    })
}

/// Merges a worker's drained capture into this thread's observability
/// state. Calling this on the main thread, in canonical job order, leaves
/// OBS byte-identical to having run the jobs sequentially: per-label run
/// counts accumulate and the *last* merged capture for a label wins,
/// exactly like repeated [`observe`] calls.
pub(crate) fn merge_worker(c: WorkerCapture) {
    OBS.with(|o| {
        let mut o = o.borrow_mut();
        for (label, cap) in c.metrics {
            match o.metrics.entry(label) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(cap);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let prev_runs = e.get().runs;
                    let slot = e.get_mut();
                    *slot = cap;
                    slot.runs += prev_runs;
                }
            }
        }
        o.verdicts.extend(c.verdicts);
    });
}

/// Renders drained run captures into the metrics table (one row per
/// counter / histogram), or `None` when no instrumented run happened.
pub(crate) fn metrics_table(name: &str, runs: &BTreeMap<String, RunCapture>) -> Option<Table> {
    if runs.is_empty() {
        return None;
    }
    let mut t = Table::new(
        format!("Metrics — {name} (registry snapshot of each series' last run)"),
        &["series", "runs", "metric", "value"],
    );
    for (label, cap) in runs {
        for (cname, v) in cap.snap.counters.iter() {
            t.push(vec![
                label.clone(),
                cap.runs.to_string(),
                format!("counter {cname}"),
                v.to_string(),
            ]);
        }
        for h in &cap.snap.hists {
            t.push(vec![
                label.clone(),
                cap.runs.to_string(),
                format!("hist {}", h.name),
                format!(
                    "count {} p50 {} p95 {} p99 {} p999 {} p9999 {} max {}",
                    h.count, h.p50, h.p95, h.p99, h.p999, h.p9999, h.max
                ),
            ]);
        }
    }
    Some(t)
}

/// Records oracle/gate verdicts for the series named `label`; they are
/// attached to that series' ledger manifest when [`manifests`] drains.
pub(crate) fn record_verdicts(label: &str, verdicts: Vec<(String, String)>) {
    OBS.with(|o| {
        o.borrow_mut().verdicts.insert(
            label.to_string(),
            verdicts
                .into_iter()
                .map(|(name, verdict)| Verdict { name, verdict })
                .collect(),
        );
    });
}

/// Builds one `locksim-run-v1` ledger manifest per drained series,
/// attaching any verdicts recorded for its label (and draining them).
pub(crate) fn manifests(bin: &str, runs: &BTreeMap<String, RunCapture>) -> Vec<RunManifest> {
    let mut verdicts = OBS.with(|o| std::mem::take(&mut o.borrow_mut().verdicts));
    runs.iter()
        .map(|(label, cap)| {
            RunManifest::from_snapshot(
                bin,
                label,
                "",
                cap.seed,
                cap.end_cycles,
                verdicts.remove(label.as_str()).unwrap_or_default(),
                &cap.snap,
                Some(&cap.series),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_trace_flag() {
        let o = parse_cli(&args(&["--trace", "out.json"])).unwrap();
        assert_eq!(o.trace_path, Some(PathBuf::from("out.json")));
        assert_eq!(o.trace_cap, None);
    }

    #[test]
    fn parse_trace_cap() {
        let o = parse_cli(&args(&["--trace", "t.json", "--trace-cap", "512"])).unwrap();
        assert_eq!(o.trace_cap, Some(512));
        // Zero is clamped to a one-record ring rather than rejected.
        let o = parse_cli(&args(&["--trace-cap", "0"])).unwrap();
        assert_eq!(o.trace_cap, Some(1));
    }

    #[test]
    fn parse_rejects_unknown_and_missing() {
        assert!(parse_cli(&args(&["--frobnicate"])).is_err());
        assert!(parse_cli(&args(&["--trace"])).is_err());
        assert!(parse_cli(&args(&["--trace-cap", "many"])).is_err());
        assert!(parse_cli(&args(&["--lockstat"])).is_err());
        assert!(parse_cli(&args(&["--watchdog-cycles", "soon"])).is_err());
    }

    #[test]
    fn parse_lockstat_flags() {
        let o = parse_cli(&args(&[
            "--lockstat",
            "out.html",
            "--watchdog-cycles",
            "25000",
        ]))
        .unwrap();
        assert_eq!(o.lockstat_path, Some(PathBuf::from("out.html")));
        assert_eq!(o.watchdog_cycles, Some(25_000));
    }

    #[test]
    fn partial_parse_passes_unknowns_through() {
        let (o, rest) =
            parse_cli_partial(&args(&["--quick", "--lockstat", "r.html", "extra"])).unwrap();
        assert_eq!(o.lockstat_path, Some(PathBuf::from("r.html")));
        assert_eq!(rest, args(&["--quick", "extra"]));
        // Value errors are still hard errors, not pass-throughs.
        assert!(parse_cli_partial(&args(&["--quick", "--trace"])).is_err());
    }

    #[test]
    fn empty_args_are_fine() {
        assert_eq!(parse_cli(&[]).unwrap(), CliOpts::default());
    }

    const BIN_FLAGS: &[BinFlag] = &[
        BinFlag {
            name: "--quick",
            takes_value: false,
        },
        BinFlag {
            name: "--seed",
            takes_value: true,
        },
    ];

    #[test]
    fn bin_cli_mixes_shared_and_bin_flags() {
        let (opts, extras) = parse_bin_cli(
            &args(&["--quick", "--lockstat", "r.html", "--seed", "7"]),
            BIN_FLAGS,
        )
        .unwrap();
        assert_eq!(opts.lockstat_path, Some(PathBuf::from("r.html")));
        assert_eq!(extras.get("--quick").map(String::as_str), Some("1"));
        assert_eq!(extras.get("--seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn bin_cli_names_the_unknown_flag() {
        let err = parse_bin_cli(&args(&["--frobnicate"]), BIN_FLAGS).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
        assert!(err.contains("--quick"), "lists bin flags: {err}");
        assert!(err.contains("--trace"), "lists shared flags: {err}");
    }

    #[test]
    fn bin_cli_requires_values() {
        let err = parse_bin_cli(&args(&["--seed"]), BIN_FLAGS).unwrap_err();
        assert!(err.contains("--seed requires a value"), "{err}");
        // Shared-flag value errors propagate unchanged.
        assert!(parse_bin_cli(&args(&["--trace"]), BIN_FLAGS).is_err());
    }
}
