//! Experiment executors: one function per workload class.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_core::LcuBackend;
use locksim_engine::Time;
use locksim_machine::{
    Alloc, CycleDissection, IdealBackend, LockBackend, MachineConfig, MetricsSnapshot, ThreadId,
    World,
};
use locksim_ssb::SsbBackend;
use locksim_stm::{
    HashTable, ObjectSpace, Op, RbTree, SkipList, StmKind, TxShared, TxStats, TxStructure, TxThread,
};
use locksim_swlocks::{SwAlg, SwLockBackend};
use locksim_workloads::{
    CholeskyThread, CsThread, FluidConfig, FluidGrid, FluidThread, IterPool, RadiosityThread,
};

use crate::obs;

/// Which machine model to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSel {
    /// Model A: 32 single-core chips, hierarchical switch.
    A,
    /// Model B: 4×8 multi-CMP.
    B,
}

impl ModelSel {
    /// Builds the configuration.
    pub fn config(self) -> MachineConfig {
        match self {
            ModelSel::A => MachineConfig::model_a(32),
            ModelSel::B => MachineConfig::model_b(),
        }
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelSel::A => "A",
            ModelSel::B => "B",
        }
    }
}

/// Which lock implementation backs the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The paper's Lock Control Unit.
    Lcu,
    /// The LCU with the Free Lock Table extension enabled (paper §IV-C
    /// future work; 4 entries per core).
    LcuFlt,
    /// The Synchronization State Buffer baseline.
    Ssb,
    /// A software lock algorithm.
    Sw(SwAlg),
    /// The idealized zero-cost lock (ablation lower bound).
    Ideal,
}

impl BackendKind {
    /// Instantiates the backend.
    pub fn build(self) -> Box<dyn LockBackend> {
        match self {
            BackendKind::Lcu | BackendKind::LcuFlt => Box::new(LcuBackend::new()),
            BackendKind::Ssb => Box::new(SsbBackend::new()),
            BackendKind::Sw(alg) => Box::new(SwLockBackend::new(alg)),
            BackendKind::Ideal => Box::new(IdealBackend::new()),
        }
    }

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Lcu => "lcu",
            BackendKind::LcuFlt => "lcu+flt",
            BackendKind::Ssb => "ssb",
            BackendKind::Sw(alg) => alg.label(),
            BackendKind::Ideal => "ideal",
        }
    }
}

/// Result of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Average cycles per critical section.
    pub cycles_per_cs: f64,
    /// Total simulated cycles.
    pub total_cycles: u64,
    /// End-of-run metrics registry snapshot (counters merged from the
    /// machine, backend, directories, and network, plus latency histograms).
    pub metrics: MetricsSnapshot,
    /// Per-thread critical sections completed (for fairness analysis).
    pub per_thread_acquires: Vec<u64>,
}

/// Jain's fairness index over per-thread throughput: 1.0 = perfectly fair,
/// 1/n = one thread monopolizes.
pub fn jain_index(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sumsq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (xs.len() as f64 * sumsq)
}

/// Runs the lock-transfer microbenchmark (Figures 9/10): `threads` threads
/// hammer one lock for `total_iters` critical sections.
pub fn run_microbench(
    model: ModelSel,
    backend: BackendKind,
    threads: usize,
    write_pct: u32,
    total_iters: u64,
    seed: u64,
) -> MicroResult {
    let mut cfg = model.config();
    if backend == BackendKind::LcuFlt {
        cfg.flt_entries = 4;
    }
    let mut w = World::new(cfg, backend.build(), seed);
    obs::arm(&mut w);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(total_iters);
    for _ in 0..threads {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), write_pct)));
    }
    w.run_to_completion();
    obs::observe(backend.label(), &w);
    let total = w.mach().now().cycles();
    let per_thread_acquires = (0..threads as u32)
        .map(|i| w.mach().thread_stats(ThreadId(i)).acquires)
        .collect();
    MicroResult {
        cycles_per_cs: total as f64 / total_iters as f64,
        total_cycles: total,
        metrics: w.metrics_snapshot(),
        per_thread_acquires,
    }
}

/// Which transactional structure to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructSel {
    /// Red-black tree with `max_nodes` key range.
    Rb,
    /// Skip list.
    Skip,
    /// Hash table.
    Hash,
}

impl StructSel {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            StructSel::Rb => "rb-tree",
            StructSel::Skip => "skip-list",
            StructSel::Hash => "hash-table",
        }
    }
}

/// The paper's STM system variants (Figures 11/12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmVariant {
    /// RW-lock OSTM on software MRSW locks ("sw-only").
    SwOnly,
    /// RW-lock OSTM on the LCU.
    Lcu,
    /// RW-lock OSTM on the SSB.
    Ssb,
    /// Fraser's nonblocking OSTM (invisible readers, CAS-style ownership
    /// modelled as TATAS trylocks).
    Fraser,
}

impl StmVariant {
    /// Label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            StmVariant::SwOnly => "sw-only",
            StmVariant::Lcu => "lcu",
            StmVariant::Ssb => "ssb",
            StmVariant::Fraser => "fraser",
        }
    }

    fn backend(self) -> BackendKind {
        match self {
            StmVariant::SwOnly => BackendKind::Sw(SwAlg::Mrsw),
            StmVariant::Lcu => BackendKind::Lcu,
            StmVariant::Ssb => BackendKind::Ssb,
            StmVariant::Fraser => BackendKind::Sw(SwAlg::Tatas),
        }
    }

    fn kind(self) -> StmKind {
        match self {
            StmVariant::Fraser => StmKind::Fraser,
            _ => StmKind::LockBased,
        }
    }
}

/// Result of one STM run.
#[derive(Debug, Clone, Copy)]
pub struct StmResult {
    /// Mean cycles per committed transaction (wall time / commits).
    pub cycles_per_tx: f64,
    /// Mean read/search-phase cycles per transaction.
    pub read_cycles_per_tx: f64,
    /// Mean commit-phase cycles per transaction.
    pub commit_cycles_per_tx: f64,
    /// Aborts per commit.
    pub abort_ratio: f64,
    /// Machine-level cycle dissection summed over all threads; the six
    /// buckets sum to the aggregate simulated thread lifetime.
    pub dissection: CycleDissection,
}

/// Runs the STM benchmark (Figures 11/12).
#[allow(clippy::too_many_arguments)]
pub fn run_stm(
    model: ModelSel,
    variant: StmVariant,
    structure: StructSel,
    max_nodes: u64,
    threads: usize,
    txns_per_thread: u32,
    read_pct: u32,
    seed: u64,
) -> StmResult {
    let mut w = World::new(model.config(), variant.backend().build(), seed);
    obs::arm(&mut w);
    let mut alloc = Alloc::starting_at(1 << 40);
    let mut space = ObjectSpace::new();
    let mut st: Box<dyn TxStructure> = match structure {
        StructSel::Rb => Box::new(RbTree::new(&mut space, &mut alloc)),
        StructSel::Skip => Box::new(SkipList::new(&mut space, &mut alloc)),
        StructSel::Hash => {
            let buckets = (max_nodes / 4).max(16) as usize;
            Box::new(HashTable::new(&mut space, &mut alloc, buckets))
        }
    };
    // Populate to half capacity with every other key.
    let mut lvl_seed = seed | 1;
    for i in 0..max_nodes / 2 {
        lvl_seed = lvl_seed.rotate_left(7).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        st.perform(
            &mut space,
            &mut alloc,
            Op::Insert((i * 2) % max_nodes),
            (lvl_seed % 4) + 1,
        );
    }
    let shared = TxShared::new(st, space, alloc);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    for _ in 0..threads {
        w.spawn(Box::new(TxThread::new(
            variant.kind(),
            shared.clone(),
            stats.clone(),
            txns_per_thread,
            read_pct,
            max_nodes,
        )));
    }
    w.run_to_completion();
    obs::observe(variant.label(), &w);
    let mut dissection = CycleDissection::default();
    for t in 0..threads as u32 {
        dissection.merge(&w.thread_dissection(ThreadId(t)));
    }
    let s = *stats.borrow();
    let commits = s.commits.max(1) as f64;
    StmResult {
        cycles_per_tx: s.total_cycles as f64 / commits,
        read_cycles_per_tx: s.read_cycles as f64 / commits,
        commit_cycles_per_tx: s.commit_cycles as f64 / commits,
        abort_ratio: s.aborts as f64 / commits,
        dissection,
    }
}

/// Which application kernel to run (Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppSel {
    /// Fluidanimate-like fine-grain cell updates (32 threads).
    Fluidanimate,
    /// Cholesky-like compute-heavy tasking (16 threads).
    Cholesky,
    /// Radiosity-like work-stealing queues (16 threads).
    Radiosity,
}

impl AppSel {
    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            AppSel::Fluidanimate => "fluidanimate",
            AppSel::Cholesky => "cholesky",
            AppSel::Radiosity => "radiosity",
        }
    }

    /// Thread count the paper uses.
    pub fn threads(self) -> usize {
        match self {
            AppSel::Fluidanimate => 32,
            AppSel::Cholesky | AppSel::Radiosity => 16,
        }
    }
}

/// Runs one application kernel to completion; returns total cycles.
pub fn run_app(app: AppSel, backend: BackendKind, seed: u64) -> u64 {
    let mut cfg = MachineConfig::model_a(32);
    if backend == BackendKind::LcuFlt {
        cfg.flt_entries = 4;
    }
    let mut w = World::new(cfg, backend.build(), seed);
    obs::arm(&mut w);
    match app {
        AppSel::Fluidanimate => {
            let cfg = FluidConfig::default();
            // Hardware fine-grain locking affords per-value locks; the
            // software baseline locks whole cells (the paper's original
            // application vs its modified version).
            let fine = !matches!(backend, BackendKind::Sw(_));
            let grid = {
                let alloc = w.mach().alloc();
                FluidGrid::new(alloc, app.threads(), &cfg, fine)
            };
            for t in 0..app.threads() {
                w.spawn(Box::new(FluidThread::new(grid.clone(), cfg.clone(), t)));
            }
        }
        AppSel::Cholesky => {
            let lock = w.mach().alloc().alloc_line();
            let tasks = Rc::new(RefCell::new(600));
            for _ in 0..app.threads() {
                w.spawn(Box::new(CholeskyThread::new(lock, tasks.clone(), 20_000)));
            }
        }
        AppSel::Radiosity => {
            let locks: Rc<Vec<_>> = Rc::new(
                (0..app.threads())
                    .map(|_| w.mach().alloc().alloc_line())
                    .collect(),
            );
            for t in 0..app.threads() {
                w.spawn(Box::new(RadiosityThread::new(locks.clone(), t, 400, 3)));
            }
        }
    }
    w.run_to_completion();
    obs::observe(backend.label(), &w);
    w.mach().now().cycles()
}

/// Sum of per-thread machine lock stats over a run (diagnostics).
pub fn total_acquires(w: &mut World) -> u64 {
    (0..w.mach().n_threads() as u32)
        .map(|i| w.mach().thread_stats(ThreadId(i)).acquires)
        .sum()
}

/// Scale knob: `LOCKSIM_QUICK=1` shrinks experiments (used by the criterion
/// benches and smoke tests). `0`, empty, and `false` mean off.
pub fn quick() -> bool {
    match std::env::var("LOCKSIM_QUICK") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "false" | "off"),
        Err(_) => false,
    }
}

/// Picks `full` or `q` depending on [`quick`].
pub fn scaled(full: u64, q: u64) -> u64 {
    if quick() {
        q
    } else {
        full
    }
}

/// Runs `reps` repetitions with distinct seeds, collecting a statistic.
pub fn repeat<F: FnMut(u64) -> f64>(
    reps: u64,
    base_seed: u64,
    mut f: F,
) -> locksim_engine::stats::Running {
    let mut r = locksim_engine::stats::Running::new();
    for i in 0..reps {
        r.add(f(base_seed + i * 7919));
    }
    r
}

/// A time guard used in smoke tests: asserts sim time advanced.
pub fn assert_progress(t: Time) {
    assert!(t > Time::ZERO);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_extremes() {
        assert!((jain_index(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        // One thread monopolizes n threads → 1/n.
        assert!((jain_index(&[40, 0, 0, 0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0]), 1.0);
    }

    #[test]
    fn jain_index_monotone_in_imbalance() {
        let balanced = jain_index(&[10, 10, 10, 10]);
        let skewed = jain_index(&[25, 5, 5, 5]);
        let worse = jain_index(&[37, 1, 1, 1]);
        assert!(balanced > skewed && skewed > worse);
    }

    #[test]
    fn labels_are_distinct() {
        use locksim_swlocks::SwAlg;
        let labels = [
            BackendKind::Lcu.label(),
            BackendKind::LcuFlt.label(),
            BackendKind::Ssb.label(),
            BackendKind::Ideal.label(),
            BackendKind::Sw(SwAlg::Tas).label(),
            BackendKind::Sw(SwAlg::Tatas).label(),
            BackendKind::Sw(SwAlg::Mcs).label(),
            BackendKind::Sw(SwAlg::Mrsw).label(),
            BackendKind::Sw(SwAlg::Posix).label(),
            BackendKind::Sw(SwAlg::Bravo).label(),
            BackendKind::Sw(SwAlg::Fissile).label(),
        ];
        let set: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    fn scaled_respects_quick_env() {
        // Not set in the test environment by default.
        if !quick() {
            assert_eq!(scaled(100, 10), 100);
        }
    }

    #[test]
    fn repeat_accumulates_reps() {
        let r = repeat(5, 1, |seed| seed as f64);
        assert_eq!(r.count(), 5);
    }

    #[test]
    fn microbench_smoke_on_ideal() {
        let r = run_microbench(ModelSel::A, BackendKind::Ideal, 4, 100, 50, 1);
        assert_eq!(r.per_thread_acquires.iter().sum::<u64>(), 50);
        assert!(r.cycles_per_cs > 0.0);
    }

    #[test]
    fn stm_smoke() {
        let r = run_stm(
            ModelSel::A,
            StmVariant::Lcu,
            StructSel::Hash,
            64,
            2,
            5,
            50,
            1,
        );
        assert!(r.cycles_per_tx > 0.0);
    }

    #[test]
    fn app_smoke() {
        let cycles = run_app(AppSel::Cholesky, BackendKind::Ideal, 1);
        assert!(cycles > 0);
    }
}
