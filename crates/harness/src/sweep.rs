//! The work-stealing parallel sweep runner behind the `--jobs` flag.
//!
//! Sweeps (`chaossim` seeds, `faultsim` matrix cells, the `all` bin's
//! figures) are embarrassingly parallel: every job builds its own
//! [`locksim_machine::World`] from a fixed seed, so a job's simulated
//! result is a pure function of its inputs. The runner exploits that while
//! keeping every output byte-identical to a sequential run:
//!
//! * **work stealing** — workers claim the next unclaimed job index from a
//!   shared atomic counter, so long jobs don't serialize behind short ones
//!   and every host core stays busy regardless of job-length skew;
//! * **per-run isolation** — each job's world owns its RNG, trace ring,
//!   and metrics registry; the harness-side observability state
//!   ([`crate::obs`]) is thread-local, and each worker drains it into a
//!   [`obs::WorkerCapture`] after every job;
//! * **canonical-order merge** — results come back indexed, and the caller
//!   merges the captures on the main thread in job order, which reproduces
//!   the sequential "last observe wins / run counts accumulate" semantics
//!   exactly. Callers with an inclusion rule (chaossim's simulated-cycle
//!   budget) decide *after* the sweep which jobs to merge, in job order,
//!   so the budget cutoff is independent of worker count.
//!
//! Observability modes that capture per-run state across runs — `--trace`,
//! `--lockstat`, `--self-profile` — force the sweep sequential (with a
//! stderr note), since their captures live on the main thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::obs;

/// One job's result plus the observability its run produced. Captures are
/// merged by [`include`] in canonical order; jobs a caller excludes
/// (chaos budget cutoff) are simply dropped, captures and all.
pub(crate) struct JobOutput<T> {
    pub result: T,
    capture: obs::WorkerCapture,
}

/// Merges a job's observability into the main thread's state and returns
/// its result. Call in canonical job order, from the main thread only.
pub(crate) fn include<T>(out: JobOutput<T>) -> T {
    obs::merge_worker(out.capture);
    out.result
}

/// Resolves the `--jobs` flag value: `0` means one worker per host core.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Parses a `--jobs` flag value (`0` = auto-detect host cores).
///
/// # Errors
///
/// Returns a usage message when the value is not a number.
pub fn parse_jobs(v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("--jobs: invalid count {v:?} (0 = one per host core)"))
}

/// The worker count a sweep of `n` jobs will actually use: the resolved
/// `--jobs` value, clamped to the job count, forced to `1` (with a stderr
/// note) when an observability mode needs every run on the main thread.
/// Callers with a dedicated sequential path (chaossim's early budget
/// cutoff, the `all` bin's interleaved emit) branch on this to decide
/// whether to sweep at all.
pub(crate) fn effective_jobs(jobs: usize, n: usize) -> usize {
    let jobs = resolve_jobs(jobs).min(n.max(1));
    if jobs > 1 && obs::wants_sequential() {
        eprintln!(
            "sweep: --trace/--lockstat/--self-profile capture per-run state; \
             running sequentially"
        );
        return 1;
    }
    jobs
}

/// Runs `n` jobs with up to `jobs` worker threads and returns every
/// output, indexed by job. With `jobs <= 1` (or when an observability mode
/// requires it) the jobs run inline on the calling thread and their
/// observability flows straight into the main state — byte-for-byte the
/// pre-`--jobs` behavior; the returned captures are then empty and
/// [`include`] is a no-op merge.
pub(crate) fn run_jobs<T, F>(jobs: usize, n: usize, f: F) -> Vec<JobOutput<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs, n);
    if jobs <= 1 {
        return (0..n)
            .map(|i| JobOutput {
                result: f(i),
                capture: obs::WorkerCapture::default(),
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutput<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                // Drain per job, not per worker: the caller may exclude
                // individual jobs, so each capture must hold exactly one
                // job's observability.
                let capture = obs::drain_worker();
                *slots[i].lock().expect("sweep slot poisoned") =
                    Some(JobOutput { result, capture });
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("sweep slot poisoned")
                .expect("every job index was claimed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_job_in_index_order() {
        for jobs in [1, 4] {
            let outs = run_jobs(jobs, 17, |i| i * i);
            let results: Vec<usize> = outs.into_iter().map(include).collect();
            assert_eq!(results, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_resolves_to_host_cores() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn parse_jobs_accepts_numbers_only() {
        assert_eq!(parse_jobs("4"), Ok(4));
        assert_eq!(parse_jobs("0"), Ok(0));
        assert!(parse_jobs("many").is_err());
    }

    #[test]
    fn empty_sweep_is_fine() {
        let outs = run_jobs(8, 0, |_| 0u64);
        assert!(outs.is_empty());
    }
}
