//! Result tables: markdown and CSV emission.

use std::fmt::Write as _;
use std::path::Path;

/// A simple result table (one per figure/series).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (figure id and description).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        writeln!(out, "### {}\n", self.title).ok();
        writeln!(out, "| {} |", self.columns.join(" | ")).ok();
        writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )
        .ok();
        for r in &self.rows {
            writeln!(out, "| {} |", r.join(" | ")).ok();
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.columns.join(",")).ok();
        for r in &self.rows {
            writeln!(out, "{}", r.join(",")).ok();
        }
        out
    }

    /// Writes `<dir>/<name>.csv`, creating the directory.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or writing.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{name}.csv")), self.csv())
    }
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio as `N.NNx`.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(ratio(2.5), "2.50x");
    }
}
