//! Replay suite for `tests/corpus/`: every checked-in shrunk violation must
//! reproduce its recorded verdict byte-deterministically. Entries are
//! produced by `chaossim --corpus-out`; each file's header carries the
//! regeneration command for its seed.

use locksim_faults::ChaosScenario;
use locksim_harness::chaos::{expect_label, replay, DEFAULT_QUIESCE};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus_entries() -> Vec<(String, ChaosScenario)> {
    let mut entries: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            if path.extension().is_some_and(|x| x == "txt") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("readable corpus file");
                let sc = ChaosScenario::parse(&text)
                    .unwrap_or_else(|err| panic!("{name}: corpus entry fails to parse: {err}"));
                Some((name, sc))
            } else {
                None
            }
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_entries().is_empty(),
        "tests/corpus holds no scenarios — the replay suite is vacuous"
    );
}

#[test]
fn every_corpus_entry_reproduces_its_recorded_verdict() {
    for (name, sc) in corpus_entries() {
        let run = replay(&sc, DEFAULT_QUIESCE)
            .unwrap_or_else(|err| panic!("{name}: replay refused: {err}"));
        assert_eq!(
            expect_label(&run.verdict),
            sc.expect,
            "{name}: verdict drifted (got {}, corpus says {})",
            run.verdict,
            sc.expect
        );
        if sc.expect == "deadlock" {
            let report = run
                .outcome
                .deadlock
                .as_ref()
                .unwrap_or_else(|| panic!("{name}: deadlock entry lacks a report"));
            assert!(!report.chain.is_empty(), "{name}: empty blocking chain");
        }
    }
}

#[test]
fn corpus_replays_are_byte_deterministic() {
    for (name, sc) in corpus_entries() {
        let snap = |run: &locksim_harness::chaos::ChaosRun| {
            (
                run.outcome.end_cycle,
                run.outcome.exit,
                run.outcome.applied.len(),
                run.outcome.deadlock.clone(),
                run.violations.clone(),
                run.finished,
                run.verdict.clone(),
            )
        };
        let a = replay(&sc, DEFAULT_QUIESCE).expect("first replay");
        let b = replay(&sc, DEFAULT_QUIESCE).expect("second replay");
        assert_eq!(snap(&a), snap(&b), "{name}: replay is not deterministic");
    }
}
