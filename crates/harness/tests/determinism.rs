//! Golden determinism tests: the simulator is a deterministic function of
//! its seed, so same-seed runs must produce **byte-identical** trace
//! exports and metrics snapshots — the property the observability layer
//! relies on for reproducible figures and diffable traces.

use locksim_core::LcuBackend;
use locksim_harness::{run_microbench, run_stm, BackendKind, ModelSel, StmVariant, StructSel};
use locksim_machine::{MachineConfig, ThreadId, World};
use locksim_workloads::{CsThread, IterPool};

/// Runs a small contended microbenchmark with tracing on; returns the
/// Chrome export, the human timeline, and the metrics snapshot rendering.
fn traced_run(seed: u64) -> (String, String, String) {
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), seed);
    w.enable_trace(1 << 16);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(200);
    for _ in 0..4 {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), 75)));
    }
    w.run_to_completion();
    let mut chrome = Vec::new();
    w.mach_ref().tracer().export_chrome(&mut chrome).unwrap();
    let mut timeline = Vec::new();
    w.mach_ref()
        .tracer()
        .export_timeline(&mut timeline)
        .unwrap();
    (
        String::from_utf8(chrome).unwrap(),
        String::from_utf8(timeline).unwrap(),
        w.metrics_snapshot().render(),
    )
}

#[test]
fn same_seed_traces_and_metrics_are_byte_identical() {
    let a = traced_run(7);
    let b = traced_run(7);
    assert_eq!(a.0, b.0, "chrome trace export must be deterministic");
    assert_eq!(a.1, b.1, "timeline export must be deterministic");
    assert_eq!(a.2, b.2, "metrics snapshot must be deterministic");
    assert!(a.0.len() > 2, "trace export must not be empty");
    assert!(a.2.contains("counter"), "snapshot must carry counters");
}

#[test]
fn different_seeds_diverge() {
    // Seeds drive the write/read mix and scheduling, so the recorded
    // protocol history must differ — guards against the tracer ignoring
    // the run it is attached to.
    let a = traced_run(7);
    let b = traced_run(8);
    assert_ne!(a.0, b.0);
}

#[test]
fn microbench_metrics_snapshot_is_deterministic() {
    let a = run_microbench(ModelSel::A, BackendKind::Lcu, 8, 100, 300, 42);
    let b = run_microbench(ModelSel::A, BackendKind::Lcu, 8, 100, 300, 42);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.metrics.render(), b.metrics.render());
    assert_eq!(a.metrics.counters.get("locks_granted"), 300);
    assert!(a.metrics.hists.iter().any(|h| h.name == "lock_wait_cycles"));
}

#[test]
fn stm_dissection_is_deterministic_and_populated() {
    let r1 = run_stm(
        ModelSel::A,
        StmVariant::Lcu,
        StructSel::Rb,
        128,
        4,
        20,
        75,
        42,
    );
    let r2 = run_stm(
        ModelSel::A,
        StmVariant::Lcu,
        StructSel::Rb,
        128,
        4,
        20,
        75,
        42,
    );
    assert_eq!(r1.dissection, r2.dissection);
    let d = r1.dissection;
    assert!(d.total() > 0);
    assert!(d.lock_hold > 0, "transactions hold locks: {d:?}");
    assert_eq!(
        d.compute + d.memory + d.lock_acquire + d.lock_hold + d.lock_release + d.preempted,
        d.total()
    );
}

#[test]
fn dissection_buckets_bounded_by_simulated_time() {
    // Oversubscribe 4 threads onto 2 cores: preempted cycles must appear,
    // and every thread's buckets must fit inside the simulated run.
    let mut w = World::new(MachineConfig::model_a(2), Box::new(LcuBackend::new()), 9);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(120);
    for _ in 0..4 {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), 100)));
    }
    w.run_to_completion();
    let end = w.mach().now().cycles();
    let mut preempted = 0;
    for t in 0..4 {
        let d = w.thread_dissection(ThreadId(t));
        assert!(
            d.total() > 0 && d.total() <= end,
            "thread {t}: {d:?} vs end {end}"
        );
        preempted += d.preempted;
    }
    assert!(preempted > 0, "2 cores / 4 threads must preempt");
}
