//! Parallel-determinism golden: `--jobs N` must leave every simulated
//! output byte-identical to `--jobs 1`.
//!
//! Each sweep job builds its own world from a fixed seed and the sweep
//! runner merges observability in canonical job order, so worker count
//! (and scheduling) must be invisible in the results: stdout tables,
//! verdict CSVs, HTML artifacts, metrics CSVs, corpus entries, and run
//! manifests. stderr is exempt — progress lines from worker threads
//! interleave with the main thread's emission notes.
//!
//! The host here may have a single core; `--jobs 2` still spawns two real
//! worker threads (timesliced), so the cross-thread capture/merge path is
//! exercised either way.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs `bin` with `args` inside `dir` (created fresh) and returns stdout.
fn run_in(dir: &Path, bin: &str, args: &[&str]) -> Vec<u8> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create scratch dir");
    let out = Command::new(bin)
        .args(args)
        .current_dir(dir)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Every file under `dir`, as relative path → contents.
fn tree(dir: &Path) -> BTreeMap<PathBuf, Vec<u8>> {
    fn walk(root: &Path, dir: &Path, out: &mut BTreeMap<PathBuf, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read scratch dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path.strip_prefix(root).expect("under root").to_path_buf();
                out.insert(rel, std::fs::read(&path).expect("read output file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

/// Asserts the two run directories hold the same files with the same bytes.
fn assert_trees_identical(seq: &Path, par: &Path) {
    let a = tree(seq);
    let b = tree(par);
    let names = |t: &BTreeMap<PathBuf, Vec<u8>>| {
        t.keys()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    assert_eq!(
        names(&a),
        names(&b),
        "--jobs changed the set of files written"
    );
    for (path, bytes) in &a {
        assert_eq!(
            bytes,
            &b[path],
            "--jobs changed the bytes of {}",
            path.display()
        );
    }
    assert!(!a.is_empty(), "run produced no artifacts to compare");
}

fn golden(bin: &str, name: &str, base_args: &[&str]) {
    let scratch = std::env::temp_dir().join(format!("locksim_jobs_golden_{}", name));
    let seq = scratch.join("jobs1");
    let par = scratch.join("jobs2");
    let mut seq_args = base_args.to_vec();
    seq_args.extend(["--jobs", "1"]);
    let mut par_args = base_args.to_vec();
    par_args.extend(["--jobs", "2"]);
    let out_seq = run_in(&seq, bin, &seq_args);
    let out_par = run_in(&par, bin, &par_args);
    assert_eq!(
        String::from_utf8_lossy(&out_seq),
        String::from_utf8_lossy(&out_par),
        "--jobs changed stdout"
    );
    assert_trees_identical(&seq, &par);
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn chaossim_jobs_is_byte_deterministic() {
    golden(
        env!("CARGO_BIN_EXE_chaossim"),
        "chaossim",
        &["--quick", "--corpus-out", "corpus"],
    );
}

#[test]
fn faultsim_jobs_is_byte_deterministic() {
    golden(env!("CARGO_BIN_EXE_faultsim"), "faultsim", &["--quick"]);
}
