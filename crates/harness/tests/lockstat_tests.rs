//! End-to-end tests of the lockstat pipeline: the starvation watchdog must
//! flag the SSB's reader preference and stay silent for the LCU on the
//! same schedule, the blocking-chain analyzer must reconstruct a known
//! handoff sequence from a real run's trace, and the whole report must be
//! a deterministic function of the seed.

use locksim_harness::lockstat::{run_starvation, tables, StarvationCfg};
use locksim_harness::BackendKind;
use locksim_machine::{blocking_chains, render_html, HtmlSeries, MachineConfig, World};
use locksim_workloads::{CsThread, IterPool};

fn contrast_cfg() -> StarvationCfg {
    StarvationCfg {
        readers: 8,
        reader_iters: 600,
        reader_cs: 400,
        writer_iters: 5,
        watchdog_cycles: 30_000,
        seed: 42,
    }
}

#[test]
fn ssb_watchdog_flags_writer_starvation() {
    let run = run_starvation(BackendKind::Ssb, &contrast_cfg());
    assert!(
        run.writer_starved(),
        "SSB reader preference must starve the writer past the threshold; flags: {:?}",
        run.all_flags()
    );
    let flags = run.all_flags();
    assert!(flags.iter().all(|f| f.write), "only the writer may starve");
    assert!(
        flags.iter().all(|f| f.thread == 8),
        "the single writer is thread 8 (after readers 0..8): {flags:?}"
    );
    let report = run.stats.report(run.end_cycles);
    assert!(report.contains("starvation watchdog"), "report: {report}");
    assert!(
        !run.stats.lock_snapshot(0).contains("acquires"),
        "unknown lock address must render an empty snapshot"
    );
}

#[test]
fn lcu_same_schedule_reports_zero_violations() {
    let run = run_starvation(BackendKind::Lcu, &contrast_cfg());
    assert!(
        run.all_flags().is_empty(),
        "the LCU's fair queue must keep every wait under the threshold: {:?}",
        run.all_flags()
    );
    // The same readers and writer did the same work, just without the
    // starvation: acquisition counts must match the SSB run's.
    let ssb = run_starvation(BackendKind::Ssb, &contrast_cfg());
    let (addr, lcu_stat) = run.stats.locks().next().expect("one profiled lock");
    let ssb_stat = ssb.stats.lock(addr).expect("same lock on SSB");
    assert_eq!(lcu_stat.acquires, ssb_stat.acquires);
    assert_eq!(lcu_stat.releases, ssb_stat.releases);
}

#[test]
fn three_thread_handoff_chain_reconstructs_from_a_real_run() {
    // Three mutually exclusive threads, one critical section each, CS long
    // enough that both losers queue before the first release: the trace
    // must yield exactly one chain covering all three grants in handoff
    // order.
    let mut w = World::new(MachineConfig::model_a(8), BackendKind::Lcu.build(), 7);
    w.enable_trace(1 << 14);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(3);
    for _ in 0..3 {
        w.spawn(Box::new(
            CsThread::new(lock, data, pool.clone(), 100).with_cs_compute(500),
        ));
    }
    w.run_to_completion();
    let chains = blocking_chains(w.mach_ref().tracer().events());
    assert_eq!(chains.len(), 1, "one lock, one chain: {chains:?}");
    let c = &chains[0];
    assert_eq!(c.lock, lock.0);
    assert_eq!(c.links.len(), 3, "all three grants chain: {c:?}");
    assert!(c.links.iter().all(|l| l.write));
    let mut threads: Vec<u32> = c.links.iter().map(|l| l.thread).collect();
    threads.sort_unstable();
    assert_eq!(threads, vec![0, 1, 2], "each thread appears once: {c:?}");
    // Handoff order is grant order: timestamps strictly increase, and the
    // head of the chain is the uncontended winner (smallest wait).
    for pair in c.links.windows(2) {
        assert!(pair[0].granted_at < pair[1].granted_at, "{c:?}");
        assert!(pair[0].wait < pair[1].wait, "waits accumulate: {c:?}");
    }
    assert_eq!(c.total_wait, c.links.iter().map(|l| l.wait).sum::<u64>());
}

#[test]
fn lockstat_outputs_are_byte_identical_across_same_seed_runs() {
    let cfg = contrast_cfg();
    let a = [
        run_starvation(BackendKind::Ssb, &cfg),
        run_starvation(BackendKind::Lcu, &cfg),
    ];
    let b = [
        run_starvation(BackendKind::Ssb, &cfg),
        run_starvation(BackendKind::Lcu, &cfg),
    ];
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.report(), y.report(), "text report must be deterministic");
    }
    let html_of = |runs: &[locksim_harness::lockstat::LockstatRun]| {
        let series: Vec<HtmlSeries<'_>> = runs
            .iter()
            .map(|r| HtmlSeries {
                label: r.label,
                stats: &r.stats,
                chains: &r.chains,
                end_cycles: r.end_cycles,
            })
            .collect();
        render_html("lockstat — test", &series)
    };
    assert_eq!(
        html_of(&a),
        html_of(&b),
        "HTML report must be deterministic"
    );
    let csv_of = |runs: &[locksim_harness::lockstat::LockstatRun]| {
        tables(&cfg, runs)
            .iter()
            .map(|t| t.markdown())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(csv_of(&a), csv_of(&b), "tables must be deterministic");
    // And the verdict table itself must show the headline contrast.
    let rendered = csv_of(&a);
    assert!(rendered.contains("| ssb | STARVED |"), "{rendered}");
    assert!(rendered.contains("| lcu | ok |"), "{rendered}");
}
