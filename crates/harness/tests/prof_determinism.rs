//! Self-profiling must be invisible to the simulation: host-time spans and
//! counters measure the *host*, and enabling them must not perturb any
//! simulated output. These goldens run the same seeded workload with the
//! profiler off and on and require byte-identical trace exports, timeline,
//! and metrics renderings — the satellite guarantee behind the
//! `--self-profile` flag being safe to use on any figure run.

use locksim_core::LcuBackend;
use locksim_machine::{MachineConfig, World};
use locksim_trace::prof;
use locksim_workloads::{CsThread, IterPool};

/// Same workload as the determinism goldens: a contended 8-core model-A
/// LCU run with tracing on, returning every byte-compared artifact.
fn traced_run(seed: u64) -> (String, String, String) {
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), seed);
    w.enable_trace(1 << 16);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    let pool = IterPool::new(200);
    for _ in 0..4 {
        w.spawn(Box::new(CsThread::new(lock, data, pool.clone(), 75)));
    }
    w.run_to_completion();
    let mut chrome = Vec::new();
    w.mach_ref().tracer().export_chrome(&mut chrome).unwrap();
    let mut timeline = Vec::new();
    w.mach_ref()
        .tracer()
        .export_timeline(&mut timeline)
        .unwrap();
    (
        String::from_utf8(chrome).unwrap(),
        String::from_utf8(timeline).unwrap(),
        w.metrics_snapshot().render(),
    )
}

// One test, not two: the profiler's enable flag is process-global (the
// span data is thread-local), so concurrently running test threads would
// race on it.
#[test]
fn outputs_are_byte_identical_with_profiling_on_and_off() {
    // Off first: make the baseline before any profiler state exists.
    prof::disable();
    prof::reset();
    let off = traced_run(7);
    assert!(
        prof::take_report().is_empty(),
        "disabled profiler must record no spans or counters"
    );

    prof::enable();
    prof::reset();
    let on = traced_run(7);
    let report = prof::take_report();
    prof::disable();

    assert_eq!(off.0, on.0, "chrome trace must not see the profiler");
    assert_eq!(off.1, on.1, "timeline must not see the profiler");
    assert_eq!(off.2, on.2, "metrics snapshot must not see the profiler");

    // And the profiled run must actually have profiled: the dispatch spans
    // and the trace/metrics overhead counters fire on this workload.
    assert!(
        !report.is_empty(),
        "profiler collected nothing while enabled"
    );
    assert!(
        report.span("sim/run_for").is_some(),
        "missing run_for span:\n{}",
        report.render_table()
    );
    assert!(
        report.counter("trace/records") > 0,
        "trace overhead counter must tick with tracing enabled"
    );
    assert!(
        report.counter("metrics/hist_samples") > 0,
        "metrics overhead counter must tick"
    );
    let collapsed = report.collapsed();
    assert!(
        collapsed.lines().any(|l| l.starts_with("sim/run_for;")),
        "collapsed stacks must nest under run_for:\n{collapsed}"
    );
}
