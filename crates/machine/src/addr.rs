//! Simulated physical address space.

use locksim_coherence::LineAddr;
use std::fmt;

/// Words per cache line (64-byte lines, 8-byte words).
pub const WORDS_PER_LINE: u64 = 8;

/// A word-granular (8-byte) physical address.
///
/// The LCU locks *word-level* addresses; the coherence protocol operates on
/// the containing [`LineAddr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this word.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE)
    }

    /// Word offset within its line.
    pub fn offset(self) -> u64 {
        self.0 % WORDS_PER_LINE
    }

    /// The `i`-th word after this one.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, i: u64) -> Addr {
        Addr(self.0 + i)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{:#x}", self.0)
    }
}

/// Bump allocator for non-overlapping simulated memory regions.
///
/// # Example
///
/// ```
/// use locksim_machine::{Alloc, WORDS_PER_LINE};
///
/// let mut a = Alloc::new();
/// let x = a.alloc_words(3);
/// let y = a.alloc_words(3);
/// assert!(y.0 >= x.0 + 3);
/// let l = a.alloc_line();
/// assert_eq!(l.offset(), 0, "line allocations are line-aligned");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Alloc {
    next: u64,
}

impl Alloc {
    /// Creates an allocator starting at a non-zero base (so address 0 is
    /// never handed out and can serve as a null sentinel).
    pub fn new() -> Self {
        Alloc {
            next: WORDS_PER_LINE,
        }
    }

    /// Creates an allocator for a disjoint region starting at `base` words.
    /// Used by components that allocate simulated memory outside the
    /// machine's own allocator (e.g. transactional object spaces).
    ///
    /// # Panics
    ///
    /// Panics if `base == 0`.
    pub fn starting_at(base: u64) -> Self {
        assert!(base > 0, "base 0 would hand out the null address");
        Alloc { next: base }
    }

    /// Allocates `n` consecutive words.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn alloc_words(&mut self, n: u64) -> Addr {
        assert!(n > 0);
        let a = Addr(self.next);
        self.next += n;
        a
    }

    /// Allocates one full line, aligned to a line boundary. Use for data
    /// that must not false-share (per-thread queue nodes, counters, ...).
    pub fn alloc_line(&mut self) -> Addr {
        self.next = self.next.next_multiple_of(WORDS_PER_LINE);
        let a = Addr(self.next);
        self.next += WORDS_PER_LINE;
        a
    }

    /// Allocates `n` line-aligned lines and returns the first address.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn alloc_lines(&mut self, n: u64) -> Addr {
        assert!(n > 0);
        self.next = self.next.next_multiple_of(WORDS_PER_LINE);
        let a = Addr(self.next);
        self.next += n * WORDS_PER_LINE;
        a
    }
}

/// Maps a line to its home memory controller by interleaving on line
/// address, the usual hardware arrangement.
pub fn home_of(line: LineAddr, n_mems: usize) -> usize {
    (line.0 % n_mems as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_offset() {
        let a = Addr(17);
        assert_eq!(a.line(), LineAddr(2));
        assert_eq!(a.offset(), 1);
    }

    #[test]
    fn words_in_same_line_share_line_addr() {
        let base = Addr(8);
        assert_eq!(base.line(), base.add(7).line());
        assert_ne!(base.line(), base.add(8).line());
    }

    #[test]
    fn alloc_never_returns_zero() {
        let mut a = Alloc::new();
        assert_ne!(a.alloc_words(1).0, 0);
    }

    #[test]
    fn alloc_line_is_aligned_and_disjoint() {
        let mut a = Alloc::new();
        a.alloc_words(3);
        let l1 = a.alloc_line();
        let l2 = a.alloc_line();
        assert_eq!(l1.offset(), 0);
        assert_eq!(l2.offset(), 0);
        assert_ne!(l1.line(), l2.line());
    }

    #[test]
    fn alloc_lines_spans_n_lines() {
        let mut a = Alloc::new();
        let base = a.alloc_lines(4);
        let after = a.alloc_line();
        assert_eq!(after.0 - base.0, 4 * WORDS_PER_LINE);
    }

    #[test]
    fn home_interleaves() {
        assert_eq!(home_of(LineAddr(0), 4), 0);
        assert_eq!(home_of(LineAddr(5), 4), 1);
        assert_eq!(home_of(LineAddr(7), 4), 3);
    }

    #[test]
    fn addr_display() {
        assert_eq!(Addr(16).to_string(), "A0x10");
    }
}
