//! Runtime reader-writer exclusion checker.
//!
//! The backend feeds every grant and release through this checker, so any
//! protocol bug that violates mutual exclusion aborts the simulation at the
//! exact violating grant instead of corrupting results downstream.

use std::collections::HashMap;

use crate::addr::Addr;
use crate::lock::Mode;
use crate::prog::ThreadId;

/// Tracks, per lock, the current writer and reader set, and asserts the
/// reader-writer exclusion invariant on every transition.
///
/// # Example
///
/// ```
/// use locksim_machine::{Addr, Checker, Mode, ThreadId};
///
/// let mut c = Checker::new();
/// c.on_grant(Addr(8), ThreadId(0), Mode::Read);
/// c.on_grant(Addr(8), ThreadId(1), Mode::Read); // concurrent readers: fine
/// c.on_release(Addr(8), ThreadId(0), Mode::Read);
/// c.on_release(Addr(8), ThreadId(1), Mode::Read);
/// c.on_grant(Addr(8), ThreadId(2), Mode::Write);
/// ```
#[derive(Debug, Default)]
pub struct Checker {
    writer: HashMap<Addr, ThreadId>,
    readers: HashMap<Addr, Vec<ThreadId>>,
    /// Highest number of concurrent readers observed on any lock.
    pub max_concurrent_readers: usize,
    /// Total grants checked.
    pub grants_checked: u64,
}

impl Checker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a grant.
    ///
    /// # Panics
    ///
    /// Panics if the grant violates reader-writer exclusion.
    pub fn on_grant(&mut self, lock: Addr, t: ThreadId, mode: Mode) {
        self.grants_checked += 1;
        match mode {
            Mode::Write => {
                assert!(
                    self.writer.get(&lock).is_none(),
                    "exclusion violation: write grant of {lock} to {t:?} while {:?} writes",
                    self.writer[&lock]
                );
                let readers = self.readers.get(&lock).map_or(0, Vec::len);
                assert!(
                    readers == 0,
                    "exclusion violation: write grant of {lock} to {t:?} with {readers} readers"
                );
                self.writer.insert(lock, t);
            }
            Mode::Read => {
                assert!(
                    self.writer.get(&lock).is_none(),
                    "exclusion violation: read grant of {lock} to {t:?} while {:?} writes",
                    self.writer[&lock]
                );
                let rs = self.readers.entry(lock).or_default();
                assert!(!rs.contains(&t), "double read grant of {lock} to {t:?}");
                rs.push(t);
                self.max_concurrent_readers = self.max_concurrent_readers.max(rs.len());
            }
        }
    }

    /// Records a release.
    ///
    /// # Panics
    ///
    /// Panics if the releaser does not hold the lock in `mode`.
    pub fn on_release(&mut self, lock: Addr, t: ThreadId, mode: Mode) {
        match mode {
            Mode::Write => {
                let w = self.writer.remove(&lock);
                assert_eq!(w, Some(t), "write release of {lock} by non-writer {t:?}");
            }
            Mode::Read => {
                let rs = self.readers.get_mut(&lock).expect("release of unread lock");
                let pos = rs
                    .iter()
                    .position(|&r| r == t)
                    .unwrap_or_else(|| panic!("read release of {lock} by non-reader {t:?}"));
                rs.swap_remove(pos);
            }
        }
    }

    /// Current holder counts `(writers, readers)` for a lock.
    pub fn holders(&self, lock: Addr) -> (usize, usize) {
        (
            usize::from(self.writer.contains_key(&lock)),
            self.readers.get(&lock).map_or(0, Vec::len),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: Addr = Addr(0x40);

    #[test]
    fn write_then_release_then_write() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        assert_eq!(c.holders(L), (1, 0));
        c.on_release(L, ThreadId(0), Mode::Write);
        c.on_grant(L, ThreadId(1), Mode::Write);
        assert_eq!(c.grants_checked, 2);
    }

    #[test]
    fn concurrent_readers_tracked() {
        let mut c = Checker::new();
        for i in 0..5 {
            c.on_grant(L, ThreadId(i), Mode::Read);
        }
        assert_eq!(c.max_concurrent_readers, 5);
        assert_eq!(c.holders(L), (0, 5));
    }

    #[test]
    #[should_panic(expected = "exclusion violation")]
    fn write_while_read_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Read);
        c.on_grant(L, ThreadId(1), Mode::Write);
    }

    #[test]
    #[should_panic(expected = "exclusion violation")]
    fn read_while_write_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        c.on_grant(L, ThreadId(1), Mode::Read);
    }

    #[test]
    #[should_panic(expected = "non-writer")]
    fn bogus_release_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        c.on_release(L, ThreadId(1), Mode::Write);
    }

    #[test]
    fn independent_locks() {
        let mut c = Checker::new();
        c.on_grant(Addr(1), ThreadId(0), Mode::Write);
        c.on_grant(Addr(2), ThreadId(1), Mode::Write);
        assert_eq!(c.holders(Addr(1)), (1, 0));
        assert_eq!(c.holders(Addr(2)), (1, 0));
    }
}
