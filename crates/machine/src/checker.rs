//! Runtime reader-writer exclusion checker.
//!
//! The backend feeds every grant and release through this checker, so any
//! protocol bug that violates mutual exclusion aborts the simulation at the
//! exact violating grant instead of corrupting results downstream.

use std::collections::HashMap;

use locksim_trace::{LockStats, Tracer};

use crate::addr::Addr;
use crate::lock::Mode;
use crate::prog::ThreadId;

/// Default number of trace records to dump when a violation aborts the run;
/// override with the `LOCKSIM_ABORT_DUMP` environment variable.
const ABORT_DUMP_RECORDS: usize = 32;

/// Records to include in an abort dump: `LOCKSIM_ABORT_DUMP` when set,
/// else the built-in default of 32. Unset or empty means the default; a
/// set-but-unparseable value is a configuration error and panics naming the
/// variable and the offending value — silently falling back would hide a
/// typo exactly when the user is trying to widen a violation dump.
///
/// # Panics
///
/// Panics if `LOCKSIM_ABORT_DUMP` is set to a non-empty value that does not
/// parse as an unsigned record count.
fn abort_dump_records() -> usize {
    match std::env::var("LOCKSIM_ABORT_DUMP") {
        Err(_) => ABORT_DUMP_RECORDS,
        Ok(v) if v.trim().is_empty() => ABORT_DUMP_RECORDS,
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            panic!("LOCKSIM_ABORT_DUMP: expected a record count (e.g. 64), got {v:?}")
        }),
    }
}

/// Tracks, per lock, the current writer and reader set, and asserts the
/// reader-writer exclusion invariant on every transition.
///
/// # Example
///
/// ```
/// use locksim_machine::{Addr, Checker, Mode, ThreadId};
///
/// let mut c = Checker::new();
/// c.on_grant(Addr(8), ThreadId(0), Mode::Read);
/// c.on_grant(Addr(8), ThreadId(1), Mode::Read); // concurrent readers: fine
/// c.on_release(Addr(8), ThreadId(0), Mode::Read);
/// c.on_release(Addr(8), ThreadId(1), Mode::Read);
/// c.on_grant(Addr(8), ThreadId(2), Mode::Write);
/// ```
#[derive(Debug, Default)]
pub struct Checker {
    writer: HashMap<Addr, ThreadId>,
    readers: HashMap<Addr, Vec<ThreadId>>,
    /// Highest number of concurrent readers observed on any lock.
    pub max_concurrent_readers: usize,
    /// Total grants checked.
    pub grants_checked: u64,
}

impl Checker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a grant.
    ///
    /// # Panics
    ///
    /// Panics if the grant violates reader-writer exclusion.
    pub fn on_grant(&mut self, lock: Addr, t: ThreadId, mode: Mode) {
        if let Err(msg) = self.try_grant(lock, t, mode) {
            panic!("{msg}");
        }
    }

    /// Records a grant; on a violation, aborts with the last trace records
    /// touching the violating lock (count configurable via
    /// `LOCKSIM_ABORT_DUMP`) plus that lock's lockstat snapshot appended to
    /// the panic message.
    ///
    /// # Panics
    ///
    /// Panics if the grant violates reader-writer exclusion.
    pub fn on_grant_traced(
        &mut self,
        lock: Addr,
        t: ThreadId,
        mode: Mode,
        tracer: &Tracer,
        lockstat: &LockStats,
    ) {
        if let Err(msg) = self.try_grant(lock, t, mode) {
            panic!(
                "{msg}\n{}{}",
                tracer.lock_history_report(lock.0, abort_dump_records()),
                lockstat.lock_snapshot(lock.0)
            );
        }
    }

    fn try_grant(&mut self, lock: Addr, t: ThreadId, mode: Mode) -> Result<(), String> {
        self.grants_checked += 1;
        if let Some(w) = self.writer.get(&lock) {
            return Err(format!(
                "exclusion violation: {} grant of {lock} to {t:?} while {w:?} writes",
                mode_name(mode)
            ));
        }
        match mode {
            Mode::Write => {
                let readers = self.readers.get(&lock).map_or(0, Vec::len);
                if readers != 0 {
                    return Err(format!(
                        "exclusion violation: write grant of {lock} to {t:?} with {readers} readers"
                    ));
                }
                self.writer.insert(lock, t);
            }
            Mode::Read => {
                let rs = self.readers.entry(lock).or_default();
                if rs.contains(&t) {
                    return Err(format!("double read grant of {lock} to {t:?}"));
                }
                rs.push(t);
                self.max_concurrent_readers = self.max_concurrent_readers.max(rs.len());
            }
        }
        Ok(())
    }

    /// Records a release.
    ///
    /// # Panics
    ///
    /// Panics if the releaser does not hold the lock in `mode`.
    pub fn on_release(&mut self, lock: Addr, t: ThreadId, mode: Mode) {
        if let Err(msg) = self.try_release(lock, t, mode) {
            panic!("{msg}");
        }
    }

    /// Records a release; on a violation, aborts with the last trace records
    /// touching the violating lock (count configurable via
    /// `LOCKSIM_ABORT_DUMP`) plus that lock's lockstat snapshot appended to
    /// the panic message.
    ///
    /// # Panics
    ///
    /// Panics if the releaser does not hold the lock in `mode`.
    pub fn on_release_traced(
        &mut self,
        lock: Addr,
        t: ThreadId,
        mode: Mode,
        tracer: &Tracer,
        lockstat: &LockStats,
    ) {
        if let Err(msg) = self.try_release(lock, t, mode) {
            panic!(
                "{msg}\n{}{}",
                tracer.lock_history_report(lock.0, abort_dump_records()),
                lockstat.lock_snapshot(lock.0)
            );
        }
    }

    fn try_release(&mut self, lock: Addr, t: ThreadId, mode: Mode) -> Result<(), String> {
        match mode {
            Mode::Write => match self.writer.remove(&lock) {
                Some(w) if w == t => Ok(()),
                w => Err(format!(
                    "write release of {lock} by non-writer {t:?} (writer: {w:?})"
                )),
            },
            Mode::Read => {
                let Some(rs) = self.readers.get_mut(&lock) else {
                    return Err(format!("release of unread lock {lock} by {t:?}"));
                };
                let Some(pos) = rs.iter().position(|&r| r == t) else {
                    return Err(format!("read release of {lock} by non-reader {t:?}"));
                };
                rs.swap_remove(pos);
                Ok(())
            }
        }
    }

    /// Current holder counts `(writers, readers)` for a lock.
    pub fn holders(&self, lock: Addr) -> (usize, usize) {
        (
            usize::from(self.writer.contains_key(&lock)),
            self.readers.get(&lock).map_or(0, Vec::len),
        )
    }
}

fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Read => "read",
        Mode::Write => "write",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use locksim_engine::Time;
    use locksim_trace::{Ep, TraceEvent, TraceKind};

    const L: Addr = Addr(0x40);

    #[test]
    fn write_then_release_then_write() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        assert_eq!(c.holders(L), (1, 0));
        c.on_release(L, ThreadId(0), Mode::Write);
        c.on_grant(L, ThreadId(1), Mode::Write);
        assert_eq!(c.grants_checked, 2);
    }

    #[test]
    fn concurrent_readers_tracked() {
        let mut c = Checker::new();
        for i in 0..5 {
            c.on_grant(L, ThreadId(i), Mode::Read);
        }
        assert_eq!(c.max_concurrent_readers, 5);
        assert_eq!(c.holders(L), (0, 5));
    }

    #[test]
    #[should_panic(expected = "exclusion violation")]
    fn write_while_read_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Read);
        c.on_grant(L, ThreadId(1), Mode::Write);
    }

    #[test]
    #[should_panic(expected = "exclusion violation")]
    fn read_while_write_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        c.on_grant(L, ThreadId(1), Mode::Read);
    }

    #[test]
    #[should_panic(expected = "non-writer")]
    fn bogus_release_panics() {
        let mut c = Checker::new();
        c.on_grant(L, ThreadId(0), Mode::Write);
        c.on_release(L, ThreadId(1), Mode::Write);
    }

    #[test]
    fn independent_locks() {
        let mut c = Checker::new();
        c.on_grant(Addr(1), ThreadId(0), Mode::Write);
        c.on_grant(Addr(2), ThreadId(1), Mode::Write);
        assert_eq!(c.holders(Addr(1)), (1, 0));
        assert_eq!(c.holders(Addr(2)), (1, 0));
    }

    #[test]
    fn traced_violation_dumps_lock_history_and_lockstat() {
        let mut tracer = Tracer::new();
        tracer.enable(16);
        tracer.record(|| TraceEvent {
            t: Time::from_cycles(10),
            ep: Ep::Thread(0),
            kind: TraceKind::LockGrant {
                lock: L.0,
                thread: 0,
                write: true,
                wait: 3,
            },
        });
        let mut ls = LockStats::new();
        ls.enable(None);
        ls.on_request(L.0, 0, true, 7);
        ls.on_grant(L.0, 0, true, 3, 10);
        let mut c = Checker::new();
        c.on_grant_traced(L, ThreadId(0), Mode::Write, &tracer, &ls);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.on_grant_traced(L, ThreadId(1), Mode::Write, &tracer, &ls);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("exclusion violation"), "{msg}");
        assert!(msg.contains("lock_grant"), "history missing from: {msg}");
        assert!(
            msg.contains("acquires r=0 w=1"),
            "lockstat snapshot missing from: {msg}"
        );
    }

    #[test]
    fn traced_release_violation_reports() {
        let tracer = Tracer::new(); // disabled: report still renders
        let mut c = Checker::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.on_release_traced(L, ThreadId(3), Mode::Read, &tracer, &LockStats::new());
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("unread lock"), "{msg}");
    }

    #[test]
    fn abort_dump_count_reads_env_override() {
        // Serialized by being the only test touching this env var.
        assert_eq!(abort_dump_records(), 32);
        std::env::set_var("LOCKSIM_ABORT_DUMP", "7");
        assert_eq!(abort_dump_records(), 7);
        std::env::set_var("LOCKSIM_ABORT_DUMP", " 64 ");
        assert_eq!(abort_dump_records(), 64, "surrounding whitespace is fine");
        std::env::set_var("LOCKSIM_ABORT_DUMP", "");
        assert_eq!(abort_dump_records(), 32, "empty means unset");
        std::env::remove_var("LOCKSIM_ABORT_DUMP");
    }

    #[test]
    fn abort_dump_garbage_is_rejected_with_the_value_named() {
        // Runs in a child process so the env var and the panic cannot leak
        // into sibling tests sharing this process.
        let exe = std::env::current_exe().expect("test exe");
        let out = std::process::Command::new(exe)
            .args([
                "--exact",
                "checker::tests::abort_dump_garbage_inner",
                "--nocapture",
            ])
            .env("LOCKSIM_ABORT_DUMP", "junk")
            .env("LOCKSIM_ABORT_DUMP_INNER", "1")
            .output()
            .expect("spawn child test");
        assert!(!out.status.success(), "garbage value must abort");
        let text = String::from_utf8_lossy(&out.stdout).into_owned()
            + &String::from_utf8_lossy(&out.stderr);
        assert!(
            text.contains("LOCKSIM_ABORT_DUMP") && text.contains("\"junk\""),
            "message must name the variable and the bad value: {text}"
        );
    }

    #[test]
    fn abort_dump_garbage_inner() {
        // Child half of the test above: only panics when dispatched by it.
        if std::env::var("LOCKSIM_ABORT_DUMP_INNER").is_ok() {
            let _ = abort_dump_records();
        }
    }
}
