//! Machine configuration (the paper's Figure 8 parameter table).

use locksim_engine::Cycles;

/// Which machine organization to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineModel {
    /// 32 single-core chips under a hierarchical switch network
    /// (SunFire-E25K-like; the paper's *Model A, in-order*).
    A,
    /// Multi-CMP: 4 chips × 8 cores with coherence hubs
    /// (Sun-T5440-like; the paper's *Model B, m-CMP*).
    B,
}

/// All timing and sizing parameters of the simulated machine.
///
/// Defaults mirror the paper's Figure 8; constructors [`MachineConfig::model_a`]
/// and [`MachineConfig::model_b`] produce the two evaluated systems.
///
/// # Example
///
/// ```
/// use locksim_machine::MachineConfig;
///
/// let cfg = MachineConfig::model_a(32);
/// assert_eq!(cfg.n_cores(), 32);
/// let cfg = MachineConfig::model_b();
/// assert_eq!(cfg.n_cores(), 32);
/// assert_eq!(cfg.n_mems(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Machine organization.
    pub model: MachineModel,
    /// Number of chips.
    pub chips: usize,
    /// Cores per chip.
    pub cores_per_chip: usize,
    /// L1 access latency (cycles).
    pub l1_latency: Cycles,
    /// Extra latency of an atomic read-modify-write over a plain access
    /// (pipeline serialization of the atomic, as on real SPARC/x86 cores).
    pub rmw_latency: Cycles,
    /// Directory/L2 processing latency per request (cycles).
    pub dir_latency: Cycles,
    /// DRAM access latency (cycles).
    pub dram_latency: Cycles,
    /// Ordinary LCU entries per core (8 in Model A, 16 in Model B;
    /// nonblocking local-request/remote-request entries are extra).
    pub lcu_entries: usize,
    /// LCU lookup/processing latency (cycles).
    pub lcu_latency: Cycles,
    /// LRT entries per memory controller.
    pub lrt_entries: usize,
    /// LRT associativity.
    pub lrt_assoc: usize,
    /// LRT processing latency (cycles).
    pub lrt_latency: Cycles,
    /// Extra latency for LRT entries overflowed to the in-memory hash table.
    pub lrt_overflow_latency: Cycles,
    /// Scheduler time slice when threads exceed cores (cycles). Scaled down
    /// from a real OS quantum so oversubscription effects appear within
    /// simulatable runs.
    pub quantum: Cycles,
    /// Context-switch overhead when installing a thread on a core.
    pub ctx_switch: Cycles,
    /// LCU grant-timeout threshold: a received grant not taken by the local
    /// thread within this window is forwarded onwards (paper §III-C).
    pub grant_timeout: Cycles,
    /// SSB retry backoff base (cycles between remote retries).
    pub ssb_retry_backoff: Cycles,
    /// Lifetime of an LRT anti-starvation reservation before it lapses
    /// (paper §III-D: a timeout prevents a reservation from blocking the
    /// system after, e.g., a trylock expiration).
    pub reservation_timeout: Cycles,
    /// Backoff between software retries when a thread's LCU has no free
    /// entry or a nonblocking request was denied.
    pub retry_backoff: Cycles,
    /// Ablation: direct LCU→LCU transfers (the paper's design). When off,
    /// every transfer routes through the home LRT.
    pub lcu_direct_transfer: bool,
    /// Ablation: fast local re-acquisition of RD_REL reader entries.
    pub lcu_fast_reacquire: bool,
    /// Ablation: the LRT's anti-starvation reservation for nonblocking
    /// requestors.
    pub lcu_reservation: bool,
    /// Free Lock Table entries per core (the paper's §IV-C future-work
    /// extension): released-but-unrequested locks are parked locally so a
    /// repeat acquire by the same thread is a local hit, restoring the
    /// implicit biasing coherence-based locks get for private locks.
    /// `0` disables the FLT (the paper's evaluated configuration).
    pub flt_entries: usize,
}

impl MachineConfig {
    /// The paper's Model A with `chips` single-core chips (32 in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `chips == 0`.
    pub fn model_a(chips: usize) -> Self {
        assert!(chips > 0);
        MachineConfig {
            model: MachineModel::A,
            chips,
            cores_per_chip: 1,
            l1_latency: 3,
            rmw_latency: 20,
            dir_latency: 10,
            dram_latency: 90,
            lcu_entries: 8,
            lcu_latency: 3,
            lrt_entries: 512,
            lrt_assoc: 16,
            lrt_latency: 6,
            lrt_overflow_latency: 90,
            quantum: 100_000,
            ctx_switch: 2_000,
            grant_timeout: 1_000,
            ssb_retry_backoff: 24,
            reservation_timeout: 20_000,
            retry_backoff: 200,
            lcu_direct_transfer: true,
            lcu_fast_reacquire: true,
            lcu_reservation: true,
            flt_entries: 0,
        }
    }

    /// The paper's Model B: 4 chips × 8 cores.
    pub fn model_b() -> Self {
        MachineConfig {
            model: MachineModel::B,
            chips: 4,
            cores_per_chip: 8,
            l1_latency: 3,
            rmw_latency: 20,
            dir_latency: 16,
            dram_latency: 110,
            lcu_entries: 16,
            lcu_latency: 3,
            lrt_entries: 512,
            lrt_assoc: 16,
            lrt_latency: 6,
            lrt_overflow_latency: 110,
            quantum: 100_000,
            ctx_switch: 2_000,
            grant_timeout: 1_000,
            ssb_retry_backoff: 24,
            reservation_timeout: 20_000,
            retry_backoff: 200,
            lcu_direct_transfer: true,
            lcu_fast_reacquire: true,
            lcu_reservation: true,
            flt_entries: 0,
        }
    }

    /// Total core count.
    pub fn n_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// Number of memory controllers (Model A: one per chip; Model B: two per
    /// chip, the T5440 arrangement).
    pub fn n_mems(&self) -> usize {
        match self.model {
            MachineModel::A => self.chips,
            MachineModel::B => self.chips * 2,
        }
    }

    /// Builds the matching network topology.
    pub fn build_network(&self) -> locksim_topo::Network {
        match self.model {
            MachineModel::A => locksim_topo::Network::model_a(self.chips),
            MachineModel::B => locksim_topo::Network::model_b(self.chips, self.cores_per_chip),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_a_counts() {
        let cfg = MachineConfig::model_a(32);
        assert_eq!(cfg.n_cores(), 32);
        assert_eq!(cfg.n_mems(), 32);
        assert_eq!(cfg.lcu_entries, 8);
    }

    #[test]
    fn model_b_counts() {
        let cfg = MachineConfig::model_b();
        assert_eq!(cfg.n_cores(), 32);
        assert_eq!(cfg.n_mems(), 8);
        assert_eq!(cfg.lcu_entries, 16);
    }

    #[test]
    fn networks_match_config() {
        let cfg = MachineConfig::model_a(8);
        let net = cfg.build_network();
        assert_eq!(net.n_cores(), cfg.n_cores());
        assert_eq!(net.n_mems(), cfg.n_mems());
        let cfg = MachineConfig::model_b();
        let net = cfg.build_network();
        assert_eq!(net.n_cores(), 32);
        assert_eq!(net.n_mems(), 8);
    }
}
