//! An idealized, zero-latency fair reader-writer lock backend.
//!
//! [`IdealBackend`] resolves every lock operation instantly with a central
//! FIFO queue per lock. It is *not* a realistic implementation — no
//! messages, no occupancy, no hardware budget — but serves two purposes:
//!
//! 1. a correctness harness for machine-level tests (blocking semantics,
//!    scheduler interaction) independent of any real protocol, and
//! 2. the lower-bound "perfect lock" baseline in ablation benches.

use std::collections::{HashMap, VecDeque};

use locksim_engine::stats::Counters;
use locksim_engine::Cycles;

use crate::addr::Addr;
use crate::lock::{LockBackend, Mode};
use crate::prog::ThreadId;
use crate::world::Mach;

#[derive(Debug, Default)]
struct LockState {
    writer: Option<ThreadId>,
    readers: Vec<ThreadId>,
    queue: VecDeque<(ThreadId, Mode)>,
}

impl LockState {
    fn is_free_for(&self, mode: Mode) -> bool {
        match mode {
            Mode::Write => self.writer.is_none() && self.readers.is_empty(),
            Mode::Read => self.writer.is_none(),
        }
    }
}

/// The idealized backend. See the module docs.
///
/// Fairness: strict FIFO. A waiting writer blocks later readers (no reader
/// barging), so writers cannot starve.
#[derive(Debug, Default)]
pub struct IdealBackend {
    locks: HashMap<Addr, LockState>,
    counters: Counters,
}

impl IdealBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        Self::default()
    }

    fn grant_from_queue(&mut self, m: &mut Mach, lock: Addr) {
        let st = self.locks.entry(lock).or_default();
        while let Some(&(t, mode)) = st.queue.front() {
            match mode {
                Mode::Write => {
                    if st.writer.is_none() && st.readers.is_empty() {
                        st.queue.pop_front();
                        st.writer = Some(t);
                        m.grant_lock(t);
                    }
                    break;
                }
                Mode::Read => {
                    if st.writer.is_none() {
                        st.queue.pop_front();
                        st.readers.push(t);
                        m.grant_lock(t);
                        // Continue: consecutive readers enter together.
                        continue;
                    }
                    break;
                }
            }
        }
    }
}

impl LockBackend for IdealBackend {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        mode: Mode,
        try_for: Option<Cycles>,
    ) {
        self.counters.incr("ideal_acquires");
        let st = self.locks.entry(lock).or_default();
        if st.queue.is_empty() && st.is_free_for(mode) {
            match mode {
                Mode::Write => st.writer = Some(t),
                Mode::Read => st.readers.push(t),
            }
            m.grant_lock(t);
        } else if try_for == Some(0) {
            // An impatient trylock that will not wait at all.
            self.counters.incr("ideal_tryfails");
            m.fail_lock(t);
        } else {
            // The ideal backend has no timeouts: a positive try budget waits
            // in queue like a blocking acquire (granted in FIFO order, and
            // the queue always drains). This keeps the ideal model simple;
            // realistic backends implement real abort paths.
            st.queue.push_back((t, mode));
        }
    }

    fn on_release(&mut self, m: &mut Mach, t: ThreadId, lock: Addr, mode: Mode) {
        let st = self
            .locks
            .get_mut(&lock)
            .unwrap_or_else(|| panic!("release of unknown lock {lock}"));
        match mode {
            Mode::Write => {
                assert_eq!(st.writer, Some(t), "release by non-owner");
                st.writer = None;
            }
            Mode::Read => {
                let pos = st
                    .readers
                    .iter()
                    .position(|&r| r == t)
                    .expect("read-release by non-reader");
                st.readers.swap_remove(pos);
            }
        }
        m.complete_release(t);
        self.grant_from_queue(m, lock);
    }

    fn counters(&self) -> Counters {
        self.counters.clone()
    }
}
