//! The simulated multiprocessor that every lock implementation runs on.
//!
//! This crate glues the discrete-event kernel (`locksim-engine`), the
//! network (`locksim-topo`) and the MESI protocol (`locksim-coherence`)
//! into a machine with:
//!
//! * **cores and threads** — workloads are [`Program`] state machines
//!   resumed with [`Outcome`]s and returning [`Action`]s;
//! * **an OS scheduler** — threads beyond the core count are time-sliced
//!   (with preemption, migration and context-switch costs), which is what
//!   exposes the queue-lock starvation anomaly of the paper's Figure 10;
//! * **a timed memory system** — loads/stores/RMWs run through the MESI
//!   directory protocol over the network, with real word values so software
//!   lock algorithms execute their actual pointer manipulation;
//! * **the [`LockBackend`] trait** — the plug-in point for the paper's LCU
//!   (`locksim-core`), the SSB baseline (`locksim-ssb`) and software locks
//!   (`locksim-swlocks`), plus the built-in idealized [`IdealBackend`].
//!
//! See [`World`] for the top-level API and an example.

mod addr;
mod checker;
mod config;
mod ideal;
mod lock;
mod prog;
pub mod testing;
mod wire;
mod world;

pub use addr::{home_of, Addr, Alloc, WORDS_PER_LINE};
pub use checker::Checker;
pub use config::{MachineConfig, MachineModel};
pub use ideal::IdealBackend;
pub use lock::{BackendFault, LockBackend, Mode};
pub use locksim_coherence::LineAddr;
pub use prog::{Action, CoreId, Ctx, Outcome, Program, RmwOp, ThreadId};
pub use wire::WirePayload;
pub use world::{CycleDissection, Ep, Mach, MemKind, PendingWaiter, RunExit, ThreadStats, World};

// Observability types, re-exported so downstream crates (backends, harness)
// can emit and consume traces/metrics without depending on `locksim-trace`
// directly. The trace crate's endpoint enum is re-exported as `TraceEp` to
// avoid clashing with the machine's own [`Ep`].
pub use locksim_trace::{
    blocking_chains, render_chains, render_html, ChainLink, Ep as TraceEp, FlagOutcome, HtmlSeries,
    LatencyHist, LockChain, LockStat, LockStats, MetricsRegistry, MetricsSnapshot, StarvationFlag,
    TraceEvent, TraceKind, Tracer,
};
