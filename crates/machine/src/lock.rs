//! The lock-backend interface: how lock implementations (hardware LCU/SSB
//! units or software algorithms) plug into the machine.

use locksim_coherence::LineAddr;
use locksim_engine::stats::Counters;
use locksim_engine::Cycles;

use crate::addr::Addr;
use crate::prog::{CoreId, ThreadId};
use crate::wire::WirePayload;
use crate::world::Mach;

/// Reader or writer lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Shared (reader) access.
    Read,
    /// Exclusive (writer) access.
    Write,
}

impl Mode {
    /// True for [`Mode::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, Mode::Write)
    }
}

/// A capacity fault injected into a lock backend (see
/// [`crate::World::inject_backend_fault`]). Backends opt in per fault class
/// via [`LockBackend::on_fault`]; unsupported classes are reported back to
/// the injector as unapplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendFault {
    /// Force-evict one parked free-lock-table entry on `core`, as capacity
    /// pressure would (LCU backends only).
    FltEvict {
        /// The core whose FLT loses an entry.
        core: usize,
    },
}

/// A lock implementation driven by the machine's event loop.
///
/// Exactly one backend exists per [`crate::World`]. The world forwards
/// program lock actions and asynchronous events (wire messages, timers,
/// memory completions, invalidation wakeups, scheduling changes); the
/// backend eventually resolves each acquire with [`Mach::grant_lock`] or
/// [`Mach::fail_lock`] and each release with [`Mach::complete_release`].
///
/// Backends model their own timing through [`Mach`] services:
/// [`Mach::send_wire`] for protocol messages between hardware units,
/// [`Mach::backend_mem`] for memory operations executed on a thread's
/// behalf (software locks), [`Mach::watch_line`] for local spinning, and
/// [`Mach::set_timer`] for timeouts.
pub trait LockBackend {
    /// Short name for reports (e.g. `"lcu"`, `"mcs"`).
    fn name(&self) -> &'static str;

    /// Thread `t` requests `lock` in `mode`. `try_for` of `Some(budget)`
    /// means the attempt must fail after `budget` cycles if not granted.
    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        mode: Mode,
        try_for: Option<Cycles>,
    );

    /// Thread `t` releases `lock` (held in `mode`). Must eventually call
    /// [`Mach::complete_release`].
    fn on_release(&mut self, m: &mut Mach, t: ThreadId, lock: Addr, mode: Mode);

    /// A wire message sent earlier via [`Mach::send_wire`] has arrived.
    fn on_wire(&mut self, m: &mut Mach, payload: WirePayload) {
        let _ = (m, payload);
    }

    /// A timer set via [`Mach::set_timer`] fired.
    fn on_timer(&mut self, m: &mut Mach, token: u64) {
        let _ = (m, token);
    }

    /// A memory operation issued via [`Mach::backend_mem`] for thread `t`
    /// completed; `value` is the loaded / pre-RMW value.
    fn on_mem_value(&mut self, m: &mut Mach, t: ThreadId, value: u64) {
        let _ = (m, t, value);
    }

    /// A line watched via [`Mach::watch_line`] for thread `t` was
    /// invalidated (one-shot; re-arm if still interested).
    fn on_line_invalidated(&mut self, m: &mut Mach, t: ThreadId, line: LineAddr) {
        let _ = (m, t, line);
    }

    /// Thread `t` was installed on `core` (initial placement, reschedule
    /// after preemption, or migration).
    fn on_thread_scheduled(&mut self, m: &mut Mach, t: ThreadId, core: CoreId) {
        let _ = (m, t, core);
    }

    /// Thread `t` was preempted off its core.
    fn on_thread_descheduled(&mut self, m: &mut Mach, t: ThreadId) {
        let _ = (m, t);
    }

    /// A capacity fault was injected. Returns `true` if the backend applied
    /// it; the default declines every fault class.
    fn on_fault(&mut self, m: &mut Mach, fault: BackendFault) -> bool {
        let _ = (m, fault);
        false
    }

    /// Protocol counters for reports.
    fn counters(&self) -> Counters {
        Counters::new()
    }

    /// Human-readable internal state dump for stall diagnostics.
    fn debug_state(&self) -> String {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(Mode::Write.is_write());
        assert!(!Mode::Read.is_write());
    }
}
