//! Workload programs: explicit state machines driven by the event loop.
//!
//! A simulated thread runs a [`Program`]. The world resumes the program with
//! the [`Outcome`] of its previous action; the program returns the next
//! [`Action`]. Blocking is implicit: a program issuing
//! [`Action::Acquire`] is not resumed until the lock backend grants or
//! fails the request.

use locksim_engine::{Cycles, RngStream, Time};

use crate::addr::Addr;
use crate::lock::Mode;

/// Identifies a simulated software thread (the paper's `threadid`, which
/// decouples locks from physical cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifies a core (and its L1 cache and LCU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

/// Atomic read-modify-write operations. All return the *old* value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// Unconditionally store the operand.
    Swap(u64),
    /// Store `new` iff the current value equals `expect`.
    CompareSwap {
        /// Expected current value.
        expect: u64,
        /// Replacement value.
        new: u64,
    },
    /// Wrapping add.
    FetchAdd(u64),
}

impl RmwOp {
    /// Applies the operation to `old`, returning the new stored value.
    pub fn apply(self, old: u64) -> u64 {
        match self {
            RmwOp::Swap(v) => v,
            RmwOp::CompareSwap { expect, new } => {
                if old == expect {
                    new
                } else {
                    old
                }
            }
            RmwOp::FetchAdd(d) => old.wrapping_add(d),
        }
    }
}

/// What a program asks the machine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Execute locally for the given number of cycles.
    Compute(Cycles),
    /// Load a word; resumes with [`Outcome::Value`].
    Read(Addr),
    /// Store a word; resumes with [`Outcome::Completed`].
    Write(Addr, u64),
    /// Atomic RMW; resumes with [`Outcome::Value`] carrying the old value.
    Rmw(Addr, RmwOp),
    /// Acquire `lock` in `mode`. With `try_for: None` this blocks until
    /// granted ([`Outcome::Granted`]); with `Some(budget)` the backend
    /// abandons the attempt after `budget` cycles ([`Outcome::Failed`]).
    Acquire {
        /// Word address of the lock.
        lock: Addr,
        /// Read or write mode.
        mode: Mode,
        /// Trylock budget, if any.
        try_for: Option<Cycles>,
    },
    /// Release `lock`; resumes with [`Outcome::Completed`].
    Release {
        /// Word address of the lock.
        lock: Addr,
        /// Mode it was held in.
        mode: Mode,
    },
    /// Voluntarily yield the core; resumes with [`Outcome::Completed`] when
    /// rescheduled.
    Yield,
    /// Terminate this thread.
    Done,
}

/// Why a program was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// First resume after spawn.
    Started,
    /// The previous action completed (compute, write, release, yield).
    Completed,
    /// A read or RMW completed with this (old) value.
    Value(u64),
    /// The lock was acquired.
    Granted,
    /// A trylock gave up.
    Failed,
}

/// Per-resume context handed to programs.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// This thread.
    pub tid: ThreadId,
    /// Core the thread is currently scheduled on.
    pub core: CoreId,
    /// The thread's private random stream.
    pub rng: &'a mut RngStream,
}

/// A workload state machine. See the crate docs for the execution model.
pub trait Program {
    /// Delivers the outcome of the previous action and obtains the next.
    /// First call passes [`Outcome::Started`].
    fn resume(&mut self, ctx: &mut Ctx<'_>, outcome: Outcome) -> Action;

    /// Short label for traces.
    fn label(&self) -> &'static str {
        "program"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_swap() {
        assert_eq!(RmwOp::Swap(7).apply(3), 7);
    }

    #[test]
    fn rmw_cas_success_and_failure() {
        assert_eq!(RmwOp::CompareSwap { expect: 3, new: 9 }.apply(3), 9);
        assert_eq!(RmwOp::CompareSwap { expect: 3, new: 9 }.apply(4), 4);
    }

    #[test]
    fn rmw_fetch_add_wraps() {
        assert_eq!(RmwOp::FetchAdd(1).apply(u64::MAX), 0);
        assert_eq!(RmwOp::FetchAdd(5).apply(10), 15);
    }
}
