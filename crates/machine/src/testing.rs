//! Program helpers for tests and examples.

use std::collections::VecDeque;

use crate::prog::{Action, Ctx, Outcome, Program};

/// Runs a fixed list of actions in order, ignoring outcomes, then finishes.
///
/// # Example
///
/// ```
/// use locksim_machine::testing::ScriptProgram;
/// use locksim_machine::Action;
///
/// let p = ScriptProgram::new(vec![Action::Compute(10), Action::Compute(20)]);
/// assert_eq!(p.remaining(), 2);
/// ```
#[derive(Debug)]
pub struct ScriptProgram {
    steps: VecDeque<Action>,
}

impl ScriptProgram {
    /// Creates a program from a list of actions.
    pub fn new(steps: Vec<Action>) -> Self {
        ScriptProgram {
            steps: steps.into(),
        }
    }

    /// Actions not yet executed.
    pub fn remaining(&self) -> usize {
        self.steps.len()
    }
}

impl Program for ScriptProgram {
    fn resume(&mut self, _ctx: &mut Ctx<'_>, _outcome: Outcome) -> Action {
        self.steps.pop_front().unwrap_or(Action::Done)
    }

    fn label(&self) -> &'static str {
        "script"
    }
}

/// Wraps a closure as a program: called with each outcome, returns the next
/// action. Useful for ad-hoc state machines in tests.
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: FnMut(&mut Ctx<'_>, Outcome) -> Action,
{
    fn resume(&mut self, ctx: &mut Ctx<'_>, outcome: Outcome) -> Action {
        (self.0)(ctx, outcome)
    }

    fn label(&self) -> &'static str {
        "fn"
    }
}

impl<F> std::fmt::Debug for FnProgram<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnProgram(..)")
    }
}
