//! Inline storage for backend wire-message payloads.
//!
//! Backend protocol messages ride inside [`crate::world::Ev::Wire`] events.
//! They used to be `Box<dyn Any>`, which cost one heap allocation and one
//! free per message — the single largest allocation source in a contended
//! run (every LCU/SSB request, grant, handoff and loopback is a wire
//! message). [`WirePayload`] keeps the type-erasure but stores payloads up
//! to [`WIRE_INLINE`] bytes directly inside the event, falling back to a
//! box only for oversized types.

use std::any::{Any, TypeId};
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::ptr;

/// Inline capacity in bytes. Sized to fit every backend message type in
/// the workspace (the largest, `locksim-core`'s LCU `Msg` wrapper, is well
/// under this) with room for growth; oversized payloads still work via the
/// boxed fallback.
pub const WIRE_INLINE: usize = 88;

/// Maximum alignment the inline buffer guarantees.
const WIRE_ALIGN: usize = 16;

#[repr(align(16))]
struct Buf([MaybeUninit<u8>; WIRE_INLINE]);

/// A type-erased value stored inline: the payload bytes plus enough
/// metadata to drop it or cast it back.
struct InlineAny {
    tid: TypeId,
    drop_fn: unsafe fn(*mut u8),
    buf: Buf,
}

impl InlineAny {
    // The fat `Err` is the point: returning the payload by value (not a box)
    // is what keeps the failure path allocation-free.
    #[allow(clippy::result_large_err)]
    fn downcast<T: Any>(self) -> Result<T, Self> {
        if self.tid == TypeId::of::<T>() {
            // Ownership of the stored value moves to the caller; suppress
            // our Drop so it is not dropped twice.
            let this = ManuallyDrop::new(self);
            // SAFETY: the TypeId matched, so the buffer holds a valid `T`
            // written by `WirePayload::new`.
            Ok(unsafe { ptr::read(this.buf.0.as_ptr().cast::<T>()) })
        } else {
            Err(self)
        }
    }
}

impl Drop for InlineAny {
    fn drop(&mut self) {
        // SAFETY: `drop_fn` was instantiated for the exact type written
        // into the buffer, and the value is still live (downcast suppresses
        // this Drop on success).
        unsafe { (self.drop_fn)(self.buf.0.as_mut_ptr().cast::<u8>()) }
    }
}

enum Repr {
    Inline(InlineAny),
    Boxed(Box<dyn Any>),
}

/// A backend protocol message in flight (opaque to the machine; only the
/// backend that sent it knows the type). Small payloads live inline in the
/// event, so sending one allocates nothing.
pub struct WirePayload(Repr);

unsafe fn drop_raw<T>(p: *mut u8) {
    // SAFETY: caller guarantees `p` points at a live, properly-aligned `T`.
    unsafe { ptr::drop_in_place(p.cast::<T>()) }
}

impl WirePayload {
    /// Wraps `value`, storing it inline when it fits.
    pub fn new<P: Any>(value: P) -> Self {
        if size_of::<P>() <= WIRE_INLINE && align_of::<P>() <= WIRE_ALIGN {
            let mut buf = Buf([MaybeUninit::uninit(); WIRE_INLINE]);
            // SAFETY: the buffer is large enough and aligned for `P` (just
            // checked); `write` takes ownership of `value`.
            unsafe { ptr::write(buf.0.as_mut_ptr().cast::<P>(), value) };
            WirePayload(Repr::Inline(InlineAny {
                tid: TypeId::of::<P>(),
                drop_fn: drop_raw::<P>,
                buf,
            }))
        } else {
            WirePayload(Repr::Boxed(Box::new(value)))
        }
    }

    /// True if the payload is a `T`.
    pub fn is<T: Any>(&self) -> bool {
        match &self.0 {
            Repr::Inline(i) => i.tid == TypeId::of::<T>(),
            Repr::Boxed(b) => b.is::<T>(),
        }
    }

    /// Takes the payload back out as a `T`, or returns `self` unchanged if
    /// it holds some other type (mirrors `Box::<dyn Any>::downcast`).
    // `Err` carries the inline buffer by value; boxing it would defeat the
    // allocation-free miss path.
    #[allow(clippy::result_large_err)]
    pub fn downcast<T: Any>(self) -> Result<T, Self> {
        match self.0 {
            Repr::Inline(i) => i.downcast::<T>().map_err(|i| WirePayload(Repr::Inline(i))),
            Repr::Boxed(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(b) => Err(WirePayload(Repr::Boxed(b))),
            },
        }
    }
}

impl std::fmt::Debug for WirePayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Inline(_) => f.write_str("WirePayload(inline)"),
            Repr::Boxed(_) => f.write_str("WirePayload(boxed)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_roundtrip() {
        let p = WirePayload::new((3u64, 4u32));
        assert!(p.is::<(u64, u32)>());
        assert_eq!(p.downcast::<(u64, u32)>().unwrap(), (3, 4));
    }

    #[test]
    fn wrong_type_returns_payload() {
        let p = WirePayload::new(7u64);
        let p = p.downcast::<u32>().unwrap_err();
        assert_eq!(p.downcast::<u64>().unwrap(), 7);
    }

    #[test]
    fn boxed_fallback_roundtrip() {
        let big = [0u8; WIRE_INLINE + 1];
        let p = WirePayload::new(big);
        assert!(p.is::<[u8; WIRE_INLINE + 1]>());
        assert_eq!(p.downcast::<[u8; WIRE_INLINE + 1]>().unwrap()[0], 0);
    }

    #[test]
    fn drops_inline_payload_exactly_once() {
        let rc = Rc::new(());
        let p = WirePayload::new(Rc::clone(&rc));
        assert_eq!(Rc::strong_count(&rc), 2);
        drop(p);
        assert_eq!(Rc::strong_count(&rc), 1);

        // Downcast transfers ownership: dropping the result is the only drop.
        let p = WirePayload::new(Rc::clone(&rc));
        let out = p.downcast::<Rc<()>>().unwrap();
        assert_eq!(Rc::strong_count(&rc), 2);
        drop(out);
        assert_eq!(Rc::strong_count(&rc), 1);
    }

    #[test]
    fn failed_downcast_still_drops_once() {
        let rc = Rc::new(());
        let p = WirePayload::new(Rc::clone(&rc));
        let p = p.downcast::<u32>().unwrap_err();
        assert_eq!(Rc::strong_count(&rc), 2);
        drop(p);
        assert_eq!(Rc::strong_count(&rc), 1);
    }
}
