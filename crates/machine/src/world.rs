//! The simulated multiprocessor: event dispatch, memory system glue,
//! thread scheduling, and backend services.

use std::any::Any;
use std::collections::{HashMap, VecDeque};

use locksim_coherence::{
    CacheAction, CacheCtrl, CacheId, CacheOpResult, CacheState, CacheToDir, CpuOp, DirAction,
    DirCtrl, DirId, DirToCache, LineAddr,
};
use locksim_engine::stats::Counters;
use locksim_engine::{Cycles, RngStream, Simulator, Time};
use locksim_topo::{MsgClass, Network, NodeId};
use locksim_trace::{
    prof, Ep as TraceEp, LockStats, MetricsRegistry, MetricsSnapshot, SeriesCollector,
    SeriesSnapshot, StarvationFlag, TraceEvent, TraceKind, Tracer,
};

use crate::addr::{home_of, Addr, Alloc};
use crate::config::MachineConfig;
use crate::lock::{BackendFault, LockBackend, Mode};
use crate::prog::{Action, CoreId, Ctx, Outcome, Program, RmwOp, ThreadId};
use crate::wire::WirePayload;

/// A memory operation kind carried through the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// Load a word.
    Load,
    /// Store a word.
    Store(u64),
    /// Atomic read-modify-write.
    Rmw(RmwOp),
}

fn cache_state_name(s: CacheState) -> &'static str {
    match s {
        CacheState::I => "I",
        CacheState::S => "S",
        CacheState::E => "E",
        CacheState::M => "M",
    }
}

impl MemKind {
    fn cpu_op(self) -> CpuOp {
        match self {
            MemKind::Load => CpuOp::Load,
            MemKind::Store(_) => CpuOp::Store,
            MemKind::Rmw(_) => CpuOp::Rmw,
        }
    }
}

/// Who issued a memory operation (and therefore who gets the completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemIssuer {
    /// The thread's program; resumed with the resulting outcome.
    Prog(ThreadId),
    /// The lock backend acting for a thread; gets `on_mem_value`.
    Backend(ThreadId),
}

#[derive(Debug, Clone, Copy)]
struct PendingMem {
    addr: Addr,
    kind: MemKind,
    issuer: MemIssuer,
    /// When the op was issued — end-to-end latency lands in the
    /// `mem_op_cycles` histogram at completion.
    issued: Time,
    /// Value effect already applied at the directory's serialization point;
    /// the completion returns this instead of re-sampling memory.
    result: Option<u64>,
}

/// Simulation events.
#[derive(Debug)]
enum Ev {
    /// Deliver an outcome to a thread's program. The generation tag lets
    /// preemption cancel a stale compute completion.
    Resume(ThreadId, Outcome, u64),
    /// A cache hit's latency elapsed.
    MemDone { cache: usize, line: LineAddr },
    /// A directory→cache message arrives.
    CacheMsg {
        cache: usize,
        line: LineAddr,
        msg: DirToCache,
    },
    /// A cache→directory message arrives.
    DirMsg {
        dir: usize,
        line: LineAddr,
        from: CacheId,
        msg: CacheToDir,
    },
    /// A backend wire message arrives, payload in the event itself. The
    /// self-profiler showed the former id→payload side-table costing two
    /// hash operations per backend message on the hottest dispatch arm.
    Wire(WirePayload),
    /// A backend timer fires.
    Timer(u64),
    /// End of a scheduling quantum on a core.
    Quantum(usize, u64),
    /// A thread finished its context switch onto a core.
    Installed(ThreadId, usize),
    /// Immediate wake for a watch on a line that was already invalid.
    WakeNow(ThreadId, LineAddr),
    /// A thread voluntarily yields its core (spin-then-yield backends).
    YieldNow(ThreadId),
}

/// Where a thread's simulated cycles went. Every cycle from spawn to
/// finish lands in exactly one bucket, so the buckets sum to the thread's
/// lifetime (see [`Mach::thread_dissection`]).
///
/// Bucket semantics: `preempted` wins whenever the thread is off-core
/// (ready queue or mid context switch), regardless of what it was doing;
/// on-core cycles inside a critical section (any lock held) are `lock_hold`
/// whether computing or waiting on memory; `lock_acquire` / `lock_release`
/// are on-core waits for the backend to grant / finish a release; `compute`
/// and `memory` are on-core work outside any critical section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleDissection {
    /// On-core compute outside any critical section.
    pub compute: Cycles,
    /// On-core memory-operation stalls outside any critical section.
    pub memory: Cycles,
    /// On-core cycles waiting for a lock grant.
    pub lock_acquire: Cycles,
    /// On-core cycles inside a critical section (≥1 lock held).
    pub lock_hold: Cycles,
    /// On-core cycles completing a release.
    pub lock_release: Cycles,
    /// Off-core cycles: ready queue, context switches, suspension.
    pub preempted: Cycles,
}

impl CycleDissection {
    /// Sum of all buckets — the thread's accounted lifetime.
    pub fn total(&self) -> Cycles {
        self.compute
            + self.memory
            + self.lock_acquire
            + self.lock_hold
            + self.lock_release
            + self.preempted
    }

    fn add(&mut self, cat: CycleCat, c: Cycles) {
        match cat {
            CycleCat::Compute => self.compute += c,
            CycleCat::Memory => self.memory += c,
            CycleCat::LockAcquire => self.lock_acquire += c,
            CycleCat::LockHold => self.lock_hold += c,
            CycleCat::LockRelease => self.lock_release += c,
            CycleCat::Preempted => self.preempted += c,
        }
    }

    /// Folds another dissection into this one (for machine-wide totals).
    pub fn merge(&mut self, other: &CycleDissection) {
        self.compute += other.compute;
        self.memory += other.memory;
        self.lock_acquire += other.lock_acquire;
        self.lock_hold += other.lock_hold;
        self.lock_release += other.lock_release;
        self.preempted += other.preempted;
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum CycleCat {
    Compute,
    Memory,
    LockAcquire,
    LockHold,
    LockRelease,
    #[default]
    Preempted,
}

/// Per-thread machine-level statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Lock acquisitions granted.
    pub acquires: u64,
    /// Trylock attempts that failed.
    pub fails: u64,
    /// Total cycles spent waiting in acquire.
    pub wait_cycles: Cycles,
    /// Times the thread was preempted.
    pub preemptions: u64,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum ThreadRun {
    #[default]
    Ready,
    Running,
    Finished,
}

struct ThreadState {
    program: Option<Box<dyn Program>>,
    core: Option<CoreId>,
    run: ThreadRun,
    pending_outcome: Option<Outcome>,
    rng: RngStream,
    deferred_mem: VecDeque<(Addr, MemKind)>,
    stats: ThreadStats,
    waiting_since: Option<Time>,
    /// The lock and mode of the outstanding acquire, if any.
    waiting_on: Option<(Addr, Mode)>,
    /// Locks currently held, with grant times (for hold-time accounting).
    holding: Vec<(Addr, Time)>,
    /// Current cycle-accounting category and the time it was entered.
    acct_cat: CycleCat,
    acct_since: Time,
    dissect: CycleDissection,
    finished_at: Option<Time>,
    /// End time of an in-progress Compute action, if any.
    computing: Option<Time>,
    /// Compute cycles left over after a mid-compute preemption.
    compute_left: Cycles,
    /// Bumped to invalidate in-flight Resume events on preemption.
    resume_gen: u64,
    /// Suspended by fault injection: off-core and *not* in the ready queue
    /// until [`World::resume_thread`].
    suspended: bool,
}

impl std::fmt::Debug for ThreadState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadState")
            .field("core", &self.core)
            .field("run", &self.run)
            .field("pending_outcome", &self.pending_outcome)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// One thread blocked on a lock acquire — the quiescence probe's view of
/// the waiting graph, consumed by the chaos deadlock detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingWaiter {
    /// The blocked thread.
    pub thread: ThreadId,
    /// The lock it is queued on.
    pub lock: Addr,
    /// True for a write-mode acquire.
    pub write: bool,
    /// True when the waiter is suspended by fault injection (exempt from
    /// deadlock verdicts: it cannot take a grant by design).
    pub suspended: bool,
}

/// A backend-visible network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ep {
    /// The LCU / cache side of a core.
    Core(usize),
    /// A memory controller (home of directories, LRTs, SSB banks).
    Mem(usize),
}

/// Everything in the simulated machine *except* the lock backend. Backends
/// receive `&mut Mach` and use its services; programs interact only through
/// [`crate::Ctx`] and [`Action`]s.
#[derive(Debug)]
pub struct Mach {
    cfg: MachineConfig,
    sim: Simulator<Ev>,
    net: Network,
    caches: Vec<CacheCtrl>,
    dirs: Vec<DirCtrl>,
    mem_values: HashMap<Addr, u64>,
    threads: Vec<ThreadState>,
    cores: Vec<Option<ThreadId>>,
    ready: VecDeque<ThreadId>,
    pending_mem: HashMap<(usize, LineAddr), PendingMem>,
    mem_waitq: HashMap<(usize, LineAddr), VecDeque<PendingMem>>,
    watchers: HashMap<(usize, LineAddr), Vec<ThreadId>>,
    alloc: Alloc,
    metrics: MetricsRegistry,
    tracer: Tracer,
    lockstat: LockStats,
    series: SeriesCollector,
    /// Threads with an acquire outstanding right now (feeds the series
    /// queue-depth waterline without scanning the thread table).
    waiting_threads: u64,
    seed: u64,
    next_stream: u64,
    alive: usize,
    quantum_gen: u64,
    quantum_active: bool,
    /// Deterministic wire-delay fault: every `period`-th network message is
    /// delayed by `extra` cycles (fault injection).
    wire_fault: Option<WireFault>,
    /// Debug tracing configuration, parsed once from the environment
    /// (LOCKSIM_TRACE, LOCKSIM_TRACELINE, LOCKSIM_WATCHLINE) so the hot
    /// dispatch paths never touch the environment.
    dbg: DebugCfg,
    /// Reusable scratch for cache-controller outputs: the dispatch loop
    /// takes it, drains it, and puts it back so steady-state coherence
    /// traffic never allocates.
    cache_scratch: Vec<CacheAction>,
    /// Same, for directory-controller outputs.
    dir_scratch: Vec<DirAction>,
}

/// Counter-based message-delay fault (see [`Mach::set_wire_fault`]).
#[derive(Debug, Clone, Copy)]
struct WireFault {
    period: u64,
    extra: Cycles,
    counter: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct DebugCfg {
    trace_all: bool,
    trace_line: Option<u64>,
    watch_line: Option<u64>,
}

impl DebugCfg {
    fn from_env() -> Self {
        let line = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<u64>().ok());
        DebugCfg {
            trace_all: std::env::var_os("LOCKSIM_TRACE").is_some(),
            trace_line: line("LOCKSIM_TRACELINE"),
            watch_line: line("LOCKSIM_WATCHLINE"),
        }
    }
}

impl Mach {
    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sim.now()
    }

    /// Machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// World RNG seed (recorded in run manifests).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of memory controllers.
    pub fn n_mems(&self) -> usize {
        self.dirs.len()
    }

    /// Home memory controller of an address.
    pub fn home_of(&self, a: Addr) -> usize {
        home_of(a.line(), self.dirs.len())
    }

    /// The core thread `t` currently runs on, if scheduled.
    pub fn core_of(&self, t: ThreadId) -> Option<CoreId> {
        self.threads[t.0 as usize].core
    }

    /// Whether thread `t` is currently installed on a core.
    pub fn is_scheduled(&self, t: ThreadId) -> bool {
        self.threads[t.0 as usize].core.is_some()
    }

    /// Whether thread `t` is suspended by fault injection (off-core and not
    /// runnable until [`World::resume_thread`]).
    pub fn is_suspended(&self, t: ThreadId) -> bool {
        self.threads[t.0 as usize].suspended
    }

    /// The lock and mode of thread `t`'s outstanding acquire, if any.
    pub fn waiting_on(&self, t: ThreadId) -> Option<(Addr, Mode)> {
        self.threads[t.0 as usize].waiting_on
    }

    /// Whether thread `t` has run to completion.
    pub fn is_finished(&self, t: ThreadId) -> bool {
        self.threads[t.0 as usize].finished_at.is_some()
    }

    /// Total simulation events dispatched so far — the raw progress probe.
    /// Note that background noise (scheduler quantum ticks, backoff timers)
    /// keeps this moving even in a wedged run; the chaos detector combines
    /// it with lock-protocol progress counters.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Total simulation events ever scheduled.
    pub fn events_scheduled(&self) -> u64 {
        self.sim.events_scheduled()
    }

    /// High-water mark of the event queue's backlog — the occupancy
    /// waterline `benchsim` tracks per scenario.
    pub fn evq_peak_pending(&self) -> usize {
        self.sim.peak_pending()
    }

    /// Every unfinished thread with an acquire outstanding, in thread order
    /// — the quiescence hook the chaos deadlock detector snapshots when
    /// progress stops.
    pub fn pending_waiters(&self) -> Vec<PendingWaiter> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, th)| th.finished_at.is_none())
            .filter_map(|(i, th)| {
                th.waiting_on.map(|(lock, mode)| PendingWaiter {
                    thread: ThreadId(i as u32),
                    lock,
                    write: mode == Mode::Write,
                    suspended: th.suspended,
                })
            })
            .collect()
    }

    /// Threads currently holding `lock`, in thread order — the other half
    /// of the waiting graph for blocking-chain dumps.
    pub fn holders_of(&self, lock: Addr) -> Vec<ThreadId> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, th)| th.holding.iter().any(|&(a, _)| a == lock))
            .map(|(i, _)| ThreadId(i as u32))
            .collect()
    }

    /// Number of locks thread `t` currently holds.
    pub fn holding_count(&self, t: ThreadId) -> usize {
        self.threads[t.0 as usize].holding.len()
    }

    /// Installs a deterministic wire-delay fault: every `period`-th network
    /// message (counted machine-wide from this call) is delayed by `extra`
    /// cycles. Replaces any previous fault; `period` of 0 is rejected.
    pub fn set_wire_fault(&mut self, period: u64, extra: Cycles) {
        assert!(period > 0, "wire fault period must be positive");
        self.wire_fault = Some(WireFault {
            period,
            extra,
            counter: 0,
        });
    }

    /// Removes any installed wire-delay fault.
    pub fn clear_wire_fault(&mut self) {
        self.wire_fault = None;
    }

    /// Global machine counters (mutable for backends).
    pub fn counters_mut(&mut self) -> &mut Counters {
        self.metrics.counters_mut()
    }

    /// The metrics registry (counters plus latency histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable metrics access for backends recording their own histograms.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The structured event tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (enable/disable, export).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The per-lock contention statistics (disabled unless
    /// [`World::enable_lockstat`] was called).
    pub fn lockstat(&self) -> &LockStats {
        &self.lockstat
    }

    /// Mutable lockstat access for backends recording protocol-specific
    /// per-lock events.
    pub fn lockstat_mut(&mut self) -> &mut LockStats {
        &mut self.lockstat
    }

    /// The windowed time-series collector (disabled unless
    /// [`World::enable_series`] was called).
    pub fn series(&self) -> &SeriesCollector {
        &self.series
    }

    /// Records a marked event (fault injection, oracle firing, ...) on the
    /// time-series at the current simulated time. No-op while the series
    /// collector is disabled.
    #[inline]
    pub fn series_mark(&mut self, kind: &'static str) {
        if self.series.enabled() {
            let now = self.sim.now().cycles();
            self.series.mark(now, kind);
        }
    }

    /// Backend hook: bumps a protocol-specific per-lock counter (no-op while
    /// lockstat is disabled).
    #[inline]
    pub fn lockstat_bump(&mut self, lock: Addr, name: &'static str) {
        self.lockstat.bump(lock.0, name);
    }

    /// Records a starvation-watchdog firing: a `starve` trace record plus
    /// the machine-wide `starvation_flags` counter.
    fn note_starvation(&mut self, flag: StarvationFlag) {
        self.metrics.incr("starvation_flags");
        self.series.mark(flag.at, "starvation_flag");
        self.tracer.record(|| TraceEvent {
            t: Time::from_cycles(flag.at),
            ep: TraceEp::Thread(flag.thread),
            kind: TraceKind::Starve {
                lock: flag.lock,
                thread: flag.thread,
                write: flag.write,
                waited: flag.waited,
            },
        });
    }

    /// Records a trace event stamped with the current simulated time. The
    /// closure only runs when tracing is enabled.
    #[inline]
    pub fn trace(&mut self, f: impl FnOnce(Time) -> TraceEvent) {
        let now = self.sim.now();
        self.tracer.record(|| f(now));
    }

    /// Backend hook for LCU/LRT/SSB entry state-change records.
    #[inline]
    pub fn trace_entry_state(&mut self, ep: Ep, lock: Addr, state: &'static str) {
        let now = self.sim.now();
        self.tracer.record(|| TraceEvent {
            t: now,
            ep: match ep {
                Ep::Core(c) => TraceEp::Core(c as u32),
                Ep::Mem(m) => TraceEp::Dir(m as u32),
            },
            kind: TraceKind::EntryState {
                lock: lock.0,
                state,
            },
        });
    }

    /// Flushes the current accounting period of thread `ti` into its
    /// dissection and switches to category `new`.
    fn acct_switch(&mut self, ti: usize, new: CycleCat) {
        let now = self.sim.now();
        let th = &mut self.threads[ti];
        th.dissect
            .add(th.acct_cat, now.saturating_since(th.acct_since));
        th.acct_since = now;
        th.acct_cat = new;
    }

    /// Thread `t`'s cycle dissection, accounted up to now (or up to its
    /// finish time if it is done). Buckets sum to the thread's lifetime.
    pub fn thread_dissection(&self, t: ThreadId) -> CycleDissection {
        let th = &self.threads[t.0 as usize];
        let mut d = th.dissect;
        if th.finished_at.is_none() {
            d.add(th.acct_cat, self.sim.now().saturating_since(th.acct_since));
        }
        d
    }

    /// Allocates simulated memory (delegates to [`Alloc`]).
    pub fn alloc(&mut self) -> &mut Alloc {
        &mut self.alloc
    }

    /// Reads a word's current value directly (no timing). For backends that
    /// model hardware units holding their own state, and for tests.
    pub fn mem_peek(&self, a: Addr) -> u64 {
        self.mem_values.get(&a).copied().unwrap_or(0)
    }

    /// Writes a word directly (no timing, no coherence). For initialization
    /// only — using this during a run bypasses the memory model.
    pub fn mem_poke(&mut self, a: Addr, v: u64) {
        self.mem_values.insert(a, v);
    }

    /// A fresh deterministic RNG stream (seeded from the world seed).
    pub fn rng_stream(&mut self) -> RngStream {
        let s = self.next_stream;
        self.next_stream += 1;
        RngStream::new(self.seed, s)
    }

    /// Grants thread `t`'s outstanding acquire after `delay` cycles of
    /// additional processing latency.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no acquire outstanding.
    pub fn grant_lock_in(&mut self, t: ThreadId, delay: Cycles) {
        let ti = t.0 as usize;
        let since = self.threads[ti]
            .waiting_since
            .take()
            .expect("grant_lock without outstanding acquire");
        let granted_at = self.sim.now() + delay;
        let wait = granted_at - since;
        self.threads[ti].stats.acquires += 1;
        self.threads[ti].stats.wait_cycles += wait;
        self.metrics.incr("locks_granted");
        self.metrics.observe("lock_wait_cycles", wait);
        self.waiting_threads = self.waiting_threads.saturating_sub(1);
        self.series.on_grant(granted_at.cycles(), wait);
        if let Some((lock, mode)) = self.threads[ti].waiting_on.take() {
            self.threads[ti].holding.push((lock, granted_at));
            self.tracer.record(|| TraceEvent {
                t: granted_at,
                ep: TraceEp::Thread(t.0),
                kind: TraceKind::LockGrant {
                    lock: lock.0,
                    thread: t.0,
                    write: mode == Mode::Write,
                    wait,
                },
            });
            if let Some(flag) =
                self.lockstat
                    .on_grant(lock.0, t.0, mode == Mode::Write, wait, granted_at.cycles())
            {
                self.note_starvation(flag);
            }
        }
        // The grant ends the acquire period; if the thread is off-core
        // (suspension backends) it stays in `preempted` until rescheduled.
        if self.threads[ti].core.is_some() {
            self.acct_switch(ti, CycleCat::LockHold);
        }
        self.sched_resume(t, Outcome::Granted, delay);
    }

    /// Fails thread `t`'s outstanding trylock after `delay` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no acquire outstanding.
    pub fn fail_lock_in(&mut self, t: ThreadId, delay: Cycles) {
        let ti = t.0 as usize;
        let since = self.threads[ti]
            .waiting_since
            .take()
            .expect("fail_lock without outstanding acquire");
        self.threads[ti].stats.fails += 1;
        self.threads[ti].stats.wait_cycles += (self.sim.now() + delay) - since;
        self.metrics.incr("locks_failed");
        self.waiting_threads = self.waiting_threads.saturating_sub(1);
        if let Some((lock, _)) = self.threads[ti].waiting_on.take() {
            let now = self.sim.now();
            self.tracer.record(|| TraceEvent {
                t: now,
                ep: TraceEp::Thread(t.0),
                kind: TraceKind::LockFail {
                    lock: lock.0,
                    thread: t.0,
                },
            });
            if let Some(flag) = self.lockstat.on_fail(lock.0, t.0, now.cycles()) {
                self.note_starvation(flag);
            }
        }
        self.sched_resume(t, Outcome::Failed, delay);
    }

    /// Completes thread `t`'s outstanding release after `delay` cycles.
    pub fn complete_release_in(&mut self, t: ThreadId, delay: Cycles) {
        self.sched_resume(t, Outcome::Completed, delay);
    }

    /// Grants thread `t`'s outstanding acquire.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no acquire outstanding.
    pub fn grant_lock(&mut self, t: ThreadId) {
        self.grant_lock_in(t, 0);
    }

    /// Fails thread `t`'s outstanding trylock.
    ///
    /// # Panics
    ///
    /// Panics if `t` has no acquire outstanding.
    pub fn fail_lock(&mut self, t: ThreadId) {
        self.fail_lock_in(t, 0);
    }

    /// Completes thread `t`'s outstanding release.
    pub fn complete_release(&mut self, t: ThreadId) {
        self.sched_resume(t, Outcome::Completed, 0);
    }

    fn sched_resume(&mut self, t: ThreadId, outcome: Outcome, delay: Cycles) {
        let gen = self.threads[t.0 as usize].resume_gen;
        self.sim.schedule_in(delay, Ev::Resume(t, outcome, gen));
    }

    /// Sends a backend protocol message from `src` to `dst`; it arrives at
    /// the backend's [`LockBackend::on_wire`] after network latency plus
    /// `extra` cycles of processing delay. Small payloads are stored inline
    /// in the event (see [`WirePayload`]) — pass the message value itself,
    /// not a box.
    pub fn send_wire<P: Any>(
        &mut self,
        src: Ep,
        dst: Ep,
        class: MsgClass,
        extra: Cycles,
        payload: P,
    ) {
        let s = self.ep_node(src);
        let d = self.ep_node(dst);
        let now = self.sim.now();
        let arrival = if s == d {
            now + extra + 1
        } else {
            self.net_send(now + extra, s, d, class)
        };
        self.metrics.incr("backend_wire_msgs");
        self.sim
            .schedule_at(arrival, Ev::Wire(WirePayload::new(payload)));
    }

    /// Sends on the network, counting the message class and recording a
    /// trace record on the link track. All machine traffic goes through
    /// here so the `net_*` counters and the trace agree by construction.
    fn net_send(&mut self, t0: Time, src: NodeId, dst: NodeId, class: MsgClass) -> Time {
        let t0 = match &mut self.wire_fault {
            Some(f) => {
                f.counter += 1;
                if f.counter % f.period == 0 {
                    self.metrics.incr("wire_fault_delays");
                    t0 + f.extra
                } else {
                    t0
                }
            }
            None => t0,
        };
        self.metrics.incr(match class {
            MsgClass::Control => "net_control_msgs",
            MsgClass::Data => "net_data_msgs",
        });
        self.tracer.record(|| TraceEvent {
            t: t0,
            ep: TraceEp::Link(src.index() as u16, dst.index() as u16),
            kind: TraceKind::MsgSend {
                class: match class {
                    MsgClass::Control => "control",
                    MsgClass::Data => "data",
                },
                from: src.index() as u16,
                to: dst.index() as u16,
            },
        });
        self.net.send(t0, src, dst, class)
    }

    /// Arms a one-shot backend timer; [`LockBackend::on_timer`] receives
    /// `token` after `delay` cycles.
    pub fn set_timer(&mut self, delay: Cycles, token: u64) {
        self.sim.schedule_in(delay, Ev::Timer(token));
    }

    /// Issues a memory operation on behalf of thread `t` from its current
    /// core. Completion arrives at [`LockBackend::on_mem_value`]. If `t` is
    /// preempted, the operation is deferred until it is rescheduled (a
    /// preempted thread executes nothing).
    pub fn backend_mem(&mut self, t: ThreadId, addr: Addr, kind: MemKind) {
        let ti = t.0 as usize;
        match self.threads[ti].core {
            Some(core) => self.issue_mem(core.0 as usize, addr, kind, MemIssuer::Backend(t)),
            None => self.threads[ti].deferred_mem.push_back((addr, kind)),
        }
    }

    /// One-shot watch: when thread `t`'s current core loses `line` to an
    /// invalidation, [`LockBackend::on_line_invalidated`] fires. A watch
    /// requested while `t` is descheduled is dropped — the backend's
    /// `on_thread_scheduled` hook is the place to re-drive spin loops after
    /// a preemption or migration. If the line is already absent from the
    /// core's cache (an invalidation raced with the read that observed the
    /// stale value), the wake fires immediately — the spin loop's next read
    /// would miss and refetch.
    pub fn watch_line(&mut self, t: ThreadId, line: LineAddr) {
        if self.dbg.watch_line == Some(line.0) {
            eprintln!(
                "[{}] watch_line t={:?} core={:?} state={:?}",
                self.sim.now(),
                t,
                self.threads[t.0 as usize].core,
                self.threads[t.0 as usize]
                    .core
                    .map(|c| self.caches[c.0 as usize].state(line))
            );
        }

        let Some(core) = self.threads[t.0 as usize].core else {
            self.metrics.incr("watches_dropped_descheduled");
            return;
        };
        let core = core.0 as usize;
        if !self.caches[core].state(line).readable() {
            self.metrics.incr("watches_fired_immediately");
            self.sim.schedule_in(0, Ev::WakeNow(t, line));
            return;
        }
        self.watchers.entry((core, line)).or_default().push(t);
    }

    /// Whether runnable threads are waiting for a core — the oversubscribed
    /// regime where a spinning thread should donate its timeslice instead
    /// of burning it (spin-then-yield).
    pub fn has_ready_threads(&self) -> bool {
        !self.ready.is_empty()
    }

    /// Requests that thread `t` yield its core to the next ready thread.
    /// Processed as an event so backend callbacks (which hold only `Mach`)
    /// can trigger a reschedule; a no-op by the time it fires if `t` is
    /// already off-core or no thread is waiting for a core.
    pub fn request_yield(&mut self, t: ThreadId) {
        self.metrics.incr("yield_requests");
        self.sim.schedule_in(0, Ev::YieldNow(t));
    }

    /// Removes any watches registered for `t` on `line` at its current core.
    pub fn unwatch_line(&mut self, t: ThreadId, line: LineAddr) {
        if let Some(core) = self.threads[t.0 as usize].core {
            if let Some(v) = self.watchers.get_mut(&(core.0 as usize, line)) {
                v.retain(|&w| w != t);
            }
        }
    }

    /// Per-thread statistics.
    pub fn thread_stats(&self, t: ThreadId) -> ThreadStats {
        self.threads[t.0 as usize].stats
    }

    /// Number of spawned threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// The network (for calibration probes and link statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    fn ep_node(&self, ep: Ep) -> NodeId {
        match ep {
            Ep::Core(c) => self.net.core_endpoint(c),
            Ep::Mem(m) => self.net.mem_endpoint(m),
        }
    }

    fn issue_mem(&mut self, cache: usize, addr: Addr, kind: MemKind, issuer: MemIssuer) {
        if self.dbg.watch_line == Some(addr.line().0) {
            eprintln!(
                "[{}] issue_mem cache={cache} addr={addr} kind={kind:?} issuer={issuer:?}",
                self.sim.now()
            );
        }

        let line = addr.line();
        let key = (cache, line);
        let pm = PendingMem {
            addr,
            kind,
            issuer,
            issued: self.sim.now(),
            result: None,
        };
        if self.pending_mem.contains_key(&key) {
            self.mem_waitq.entry(key).or_default().push_back(pm);
            return;
        }
        self.start_mem(cache, pm);
    }

    fn start_mem(&mut self, cache: usize, pm: PendingMem) {
        let line = pm.addr.line();
        let key = (cache, line);
        let prev = self.pending_mem.insert(key, pm);
        debug_assert!(prev.is_none(), "mem op clobbered at {key:?}");
        let rmw_extra = match pm.kind {
            MemKind::Rmw(_) => self.cfg.rmw_latency,
            _ => 0,
        };
        match self.caches[cache].cpu_op(line, pm.kind.cpu_op()) {
            CacheOpResult::Hit => {
                let l1 = self.cfg.l1_latency + rmw_extra;
                self.sim.schedule_in(l1, Ev::MemDone { cache, line });
            }
            CacheOpResult::Miss(req) => {
                let home = home_of(line, self.dirs.len());
                let src = self.net.core_endpoint(cache);
                let dst = self.net.mem_endpoint(home);
                let t0 = self.sim.now() + self.cfg.l1_latency + rmw_extra;
                let arrival = self.net_send(t0, src, dst, MsgClass::Control);
                self.sim.schedule_at(
                    arrival,
                    Ev::DirMsg {
                        dir: home,
                        line,
                        from: CacheId(cache as u32),
                        msg: CacheToDir::Req(req),
                    },
                );
            }
        }
    }

    /// Applies the value semantics of a completed memory op; returns the
    /// outcome value (loaded / pre-RMW value; 0 for stores).
    fn apply_mem(&mut self, pm: PendingMem) -> u64 {
        match pm.kind {
            MemKind::Load => self.mem_peek(pm.addr),
            MemKind::Store(v) => {
                self.mem_values.insert(pm.addr, v);
                0
            }
            MemKind::Rmw(op) => {
                let old = self.mem_peek(pm.addr);
                self.mem_values.insert(pm.addr, op.apply(old));
                old
            }
        }
    }
}

/// Exit status of [`World::run_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every spawned thread finished.
    AllFinished,
    /// The time limit was reached with work remaining.
    TimeLimit,
    /// No events remain but threads are still alive (deadlock) — only
    /// returned by [`World::run_for`]; [`World::run_to_completion`] panics.
    Stalled,
}

/// The complete simulated machine: [`Mach`] plus the lock backend.
///
/// # Example
///
/// ```
/// use locksim_machine::{testing::ScriptProgram, Action, IdealBackend, MachineConfig, World};
///
/// let mut w = World::new(MachineConfig::model_a(2), Box::new(IdealBackend::new()), 1);
/// let a = w.mach().alloc().alloc_line();
/// w.spawn(Box::new(ScriptProgram::new(vec![
///     Action::Write(a, 7),
///     Action::Compute(100),
/// ])));
/// w.run_to_completion();
/// assert_eq!(w.mach().mem_peek(a), 7);
/// ```
pub struct World {
    mach: Mach,
    backend: Box<dyn LockBackend>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("backend", &self.backend.name())
            .field("now", &self.mach.now())
            .field("threads", &self.mach.threads.len())
            .finish_non_exhaustive()
    }
}

impl World {
    /// Builds a machine from `cfg` with the given lock backend and master
    /// RNG seed.
    pub fn new(cfg: MachineConfig, backend: Box<dyn LockBackend>, seed: u64) -> Self {
        let net = cfg.build_network();
        let caches = (0..cfg.n_cores())
            .map(|i| CacheCtrl::new(CacheId(i as u32)))
            .collect();
        let dirs = (0..cfg.n_mems())
            .map(|i| DirCtrl::new(DirId(i as u32)))
            .collect();
        let n_cores = cfg.n_cores();
        World {
            mach: Mach {
                cfg,
                sim: Simulator::new(),
                net,
                caches,
                dirs,
                mem_values: HashMap::new(),
                threads: Vec::new(),
                cores: vec![None; n_cores],
                ready: VecDeque::new(),
                pending_mem: HashMap::new(),
                mem_waitq: HashMap::new(),
                watchers: HashMap::new(),
                alloc: Alloc::new(),
                metrics: MetricsRegistry::new(),
                tracer: Tracer::new(),
                lockstat: LockStats::new(),
                series: SeriesCollector::new(),
                waiting_threads: 0,
                seed,
                next_stream: 0,
                alive: 0,
                quantum_gen: 0,
                quantum_active: false,
                wire_fault: None,
                dbg: DebugCfg::from_env(),
                cache_scratch: Vec::new(),
                dir_scratch: Vec::new(),
            },
            backend,
        }
    }

    /// Starts recording a bounded structured event trace (newest records
    /// win once the bound is hit). See [`Mach::tracer`] for export and the
    /// `locksim-trace` crate for the record schema.
    pub fn enable_trace(&mut self, cap: usize) {
        self.mach.tracer.enable(cap);
    }

    /// Starts collecting per-lock contention statistics; `watchdog_cycles`
    /// additionally arms the starvation watchdog, which flags (as `starve`
    /// trace records, the `starvation_flags` counter, and report entries)
    /// any wait exceeding that many cycles.
    pub fn enable_lockstat(&mut self, watchdog_cycles: Option<u64>) {
        self.mach.lockstat.enable(watchdog_cycles);
    }

    /// Starts windowed time-series collection (per-window grant
    /// throughput, wait-latency sketch, queue-depth waterline, and event
    /// marks). `window` is the initial width in simulated cycles; 0 picks
    /// the default. Memory stays bounded: the width doubles (merging
    /// windows pairwise) when a run outgrows the cap.
    pub fn enable_series(&mut self, window: u64) {
        self.mach.series.enable(window);
    }

    /// Deterministic export of the collected time-series (empty when
    /// [`World::enable_series`] was never called).
    pub fn series_snapshot(&self) -> SeriesSnapshot {
        self.mach.series.snapshot()
    }

    /// The collected per-lock statistics.
    pub fn lockstat(&self) -> &LockStats {
        self.mach.lockstat()
    }

    /// The recorded trace as `(time, rendered record)` entries, oldest
    /// first — a convenience view over [`Mach::tracer`] for tests and
    /// debugging.
    pub fn trace_entries(&self) -> Vec<(Time, String)> {
        self.mach
            .tracer
            .events()
            .map(|e| (e.t, format!("{:?}", e.kind)))
            .collect()
    }

    /// Access to machine state (allocation, peeking, stats).
    pub fn mach(&mut self) -> &mut Mach {
        &mut self.mach
    }

    /// Immutable machine access.
    pub fn mach_ref(&self) -> &Mach {
        &self.mach
    }

    /// The lock backend's internal state dump (diagnostics).
    pub fn backend_debug(&self) -> String {
        self.backend.debug_state()
    }

    /// The lock backend's counters plus machine counters (network message
    /// counts are folded into the machine counters at each send).
    pub fn report_counters(&self) -> Counters {
        let mut c = self.mach.metrics.counters().clone();
        c.merge(&self.backend.counters());
        for d in &self.mach.dirs {
            c.merge(d.counters());
        }
        c
    }

    /// End-of-run metrics: machine counters merged with backend, directory,
    /// and network-derived counters, plus all latency histograms. The
    /// rendering of this snapshot is deterministic for a given seed.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut net = Counters::new();
        net.add("net_queue_delay_cycles", self.mach.net.total_queue_delay());
        let (mut busy, mut msgs) = (0u64, 0u64);
        for l in self.mach.net.link_stats() {
            busy += l.busy_cycles;
            msgs += l.messages;
        }
        net.add("net_link_busy_cycles", busy);
        net.add("net_link_msgs", msgs);
        // Event-queue telemetry: all simulation-derived, so deterministic
        // for a given seed like every other counter here.
        net.add("evq_events", self.mach.sim.events_processed());
        net.add("evq_scheduled", self.mach.sim.events_scheduled());
        net.add("evq_peak_pending", self.mach.sim.peak_pending() as u64);
        let backend = self.backend.counters();
        let mut extra: Vec<&Counters> = vec![&backend, &net];
        for d in &self.mach.dirs {
            extra.push(d.counters());
        }
        self.mach.metrics.snapshot(extra)
    }

    /// Thread `t`'s cycle dissection (see [`CycleDissection`]).
    pub fn thread_dissection(&self, t: ThreadId) -> CycleDissection {
        self.mach.thread_dissection(t)
    }

    /// Spawns a thread running `prog`. Threads are installed on free cores
    /// in spawn order; excess threads wait in the ready queue and the
    /// scheduler starts time-slicing.
    pub fn spawn(&mut self, prog: Box<dyn Program>) -> ThreadId {
        let tid = ThreadId(self.mach.threads.len() as u32);
        let rng = self.mach.rng_stream();
        let now = self.mach.sim.now();
        self.mach.threads.push(ThreadState {
            program: Some(prog),
            core: None,
            run: ThreadRun::Ready,
            pending_outcome: Some(Outcome::Started),
            rng,
            deferred_mem: VecDeque::new(),
            stats: ThreadStats::default(),
            waiting_since: None,
            computing: None,
            compute_left: 0,
            resume_gen: 0,
            suspended: false,
            waiting_on: None,
            holding: Vec::new(),
            acct_cat: CycleCat::default(),
            acct_since: now,
            dissect: CycleDissection::default(),
            finished_at: None,
        });
        self.mach.alive += 1;
        if let Some(core) = self.mach.cores.iter().position(|c| c.is_none()) {
            self.install(tid, core, 0);
        } else {
            self.mach.ready.push_back(tid);
        }
        self.maybe_activate_quantum();
        tid
    }

    /// Explicitly migrates a scheduled thread to another core (used by
    /// migration experiments). The target core must be free.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not scheduled or the target core is occupied.
    pub fn migrate(&mut self, t: ThreadId, to: usize) {
        let ti = t.0 as usize;
        let from = self.mach.threads[ti]
            .core
            .expect("migrating unscheduled thread");
        assert!(self.mach.cores[to].is_none(), "target core busy");
        self.mach.cores[from.0 as usize] = None;
        self.mach.threads[ti].core = None;
        self.backend.on_thread_descheduled(&mut self.mach, t);
        self.mach.metrics.incr("migrations");
        self.mach.acct_switch(ti, CycleCat::Preempted);
        self.mach.trace(|now| TraceEvent {
            t: now,
            ep: TraceEp::Thread(t.0),
            kind: TraceKind::SchedMigrate {
                thread: t.0,
                from: from.0,
                to: to as u32,
            },
        });
        self.install(t, to, self.mach.cfg.ctx_switch);
    }

    /// Forcibly deschedules a thread (simulating OS preemption for tests and
    /// suspension experiments). The thread rejoins the ready queue.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not scheduled.
    pub fn preempt(&mut self, t: ThreadId) {
        let ti = t.0 as usize;
        let core = self.mach.threads[ti]
            .core
            .expect("preempting unscheduled thread");
        self.suspend_compute(t);
        self.mach.acct_switch(ti, CycleCat::Preempted);
        self.mach.trace(|now| TraceEvent {
            t: now,
            ep: TraceEp::Thread(t.0),
            kind: TraceKind::SchedPreempt {
                thread: t.0,
                core: core.0,
            },
        });
        self.mach.cores[core.0 as usize] = None;
        self.mach.threads[ti].core = None;
        self.mach.threads[ti].stats.preemptions += 1;
        self.mach.ready.push_back(t);
        self.backend.on_thread_descheduled(&mut self.mach, t);
        // Give the freed core to the next ready thread (possibly t itself if
        // alone in the queue).
        if let Some(next) = self.mach.ready.pop_front() {
            self.install(next, core.0 as usize, self.mach.cfg.ctx_switch);
        }
    }

    /// Force-deschedules a running thread to the ready queue; its core is
    /// left empty for the caller to refill.
    fn deschedule_to_ready(&mut self, t: ThreadId) {
        let ti = t.0 as usize;
        let core = self.mach.threads[ti]
            .core
            .expect("descheduling off-core thread");
        self.suspend_compute(t);
        self.mach.acct_switch(ti, CycleCat::Preempted);
        self.mach.trace(|now| TraceEvent {
            t: now,
            ep: TraceEp::Thread(t.0),
            kind: TraceKind::SchedPreempt {
                thread: t.0,
                core: core.0,
            },
        });
        self.mach.cores[core.0 as usize] = None;
        self.mach.threads[ti].core = None;
        self.mach.threads[ti].run = ThreadRun::Ready;
        self.mach.threads[ti].stats.preemptions += 1;
        self.mach.ready.push_back(t);
        self.backend.on_thread_descheduled(&mut self.mach, t);
    }

    /// Suspends a thread by fault injection: it leaves its core (or the
    /// ready queue) and will not run again until [`World::resume_thread`].
    /// Unlike [`World::preempt`] the thread does *not* rejoin the ready
    /// queue — this models a thread the OS has descheduled for an unbounded
    /// time, the robustness regime of the paper's Section 3.5. Returns
    /// `false` (no-op) if the thread is already suspended or finished.
    pub fn suspend(&mut self, t: ThreadId) -> bool {
        let ti = t.0 as usize;
        if self.mach.threads[ti].suspended || self.mach.threads[ti].run == ThreadRun::Finished {
            return false;
        }
        self.mach.threads[ti].suspended = true;
        self.mach.metrics.incr("fault_suspensions");
        let core = self.mach.threads[ti].core;
        if core.is_some() {
            self.deschedule_to_ready(t);
        }
        self.mach.ready.retain(|&x| x != t);
        if let Some(c) = core {
            if let Some(next) = self.mach.ready.pop_front() {
                self.install(next, c.0 as usize, self.mach.cfg.ctx_switch);
            }
        }
        true
    }

    /// Resumes a thread suspended by [`World::suspend`]: it is installed on
    /// a free core immediately or rejoins the ready queue. Returns `false`
    /// if the thread is not suspended.
    pub fn resume_thread(&mut self, t: ThreadId) -> bool {
        let ti = t.0 as usize;
        if !self.mach.threads[ti].suspended {
            return false;
        }
        self.mach.threads[ti].suspended = false;
        self.mach.metrics.incr("fault_resumes");
        if let Some(core) = self.mach.cores.iter().position(|c| c.is_none()) {
            self.install(t, core, self.mach.cfg.ctx_switch);
        } else {
            self.mach.ready.push_back(t);
        }
        self.maybe_activate_quantum();
        true
    }

    /// Forcibly migrates a thread to core `to`, evicting any thread
    /// currently running there to the ready queue (unlike
    /// [`World::migrate`], which requires a free target core). Works on
    /// both running and ready threads. Returns `false` (no-op) if the
    /// thread is suspended, finished, or already on `to`.
    pub fn force_migrate(&mut self, t: ThreadId, to: usize) -> bool {
        let ti = t.0 as usize;
        let th = &self.mach.threads[ti];
        if th.suspended || th.run == ThreadRun::Finished || th.core == Some(CoreId(to as u32)) {
            return false;
        }
        if let Some(victim) = self.mach.cores[to] {
            self.deschedule_to_ready(victim);
        }
        self.mach.metrics.incr("migrations");
        match self.mach.threads[ti].core {
            Some(from) => {
                self.mach.cores[from.0 as usize] = None;
                self.mach.threads[ti].core = None;
                self.backend.on_thread_descheduled(&mut self.mach, t);
                self.mach.acct_switch(ti, CycleCat::Preempted);
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(t.0),
                    kind: TraceKind::SchedMigrate {
                        thread: t.0,
                        from: from.0,
                        to: to as u32,
                    },
                });
                // Refill the vacated source core (possibly with the thread
                // just evicted from the target).
                if let Some(next) = self.mach.ready.pop_front() {
                    self.install(next, from.0 as usize, self.mach.cfg.ctx_switch);
                }
            }
            None => {
                self.mach.ready.retain(|&x| x != t);
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(t.0),
                    kind: TraceKind::SchedMigrate {
                        thread: t.0,
                        from: u32::MAX,
                        to: to as u32,
                    },
                });
            }
        }
        self.install(t, to, self.mach.cfg.ctx_switch);
        true
    }

    /// Routes a capacity fault to the lock backend; returns whether the
    /// backend applied it (see [`BackendFault`]).
    pub fn inject_backend_fault(&mut self, fault: BackendFault) -> bool {
        self.backend.on_fault(&mut self.mach, fault)
    }

    /// Runs until simulated time reaches exactly `cycle`, draining every
    /// event scheduled at or before it — the stepping primitive for
    /// exact-cycle fault injection. On [`RunExit::TimeLimit`] and
    /// [`RunExit::Stalled`] the clock is advanced to exactly `cycle` so a
    /// subsequent injection lands at that cycle; [`RunExit::AllFinished`]
    /// leaves the clock at the final event.
    pub fn run_until_cycle(&mut self, cycle: u64) -> RunExit {
        let lim = Time::from_cycles(cycle);
        let exit = self.run_for(Some(lim));
        if exit != RunExit::AllFinished {
            self.mach.sim.advance_to(lim);
        }
        exit
    }

    /// Runs until every thread finishes.
    ///
    /// # Panics
    ///
    /// Panics if the event queue drains while threads are alive (deadlock or
    /// lost wakeup — a simulator or protocol bug).
    pub fn run_to_completion(&mut self) {
        match self.run_for(None) {
            RunExit::AllFinished => {}
            RunExit::Stalled => {
                let blocked: Vec<String> = self
                    .mach
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, th)| th.run != ThreadRun::Finished)
                    .map(|(i, th)| format!("t{i}: core={:?} waiting={:?} computing={:?} left={} pending={:?} run={:?} gen={}", th.core, th.waiting_since, th.computing, th.compute_left, th.pending_outcome, th.run, th.resume_gen))
                    .collect();
                panic!(
                    "simulation stalled with live threads: {blocked:?}\nbackend state:\n{}",
                    self.backend.debug_state()
                );
            }
            RunExit::TimeLimit => unreachable!("no limit was set"),
        }
    }

    /// Runs until all threads finish, the event queue drains, or simulated
    /// time passes `limit`.
    pub fn run_for(&mut self, limit: Option<Time>) -> RunExit {
        let _prof = prof::span("sim/run_for");
        // The alloc run-phase window brackets the event loop only, so
        // benchsim's per-scenario churn excludes world setup/teardown.
        locksim_trace::alloc::run_phase_start();
        let exit = loop {
            if self.mach.alive == 0 {
                break RunExit::AllFinished;
            }
            if let (Some(lim), Some(next)) = (limit, self.mach.sim.peek_time()) {
                if next > lim {
                    break RunExit::TimeLimit;
                }
            }
            let Some((_, ev)) = self.mach.sim.pop() else {
                break RunExit::Stalled;
            };
            self.dispatch(ev);
        };
        locksim_trace::alloc::run_phase_end();
        exit
    }

    fn dispatch(&mut self, ev: Ev) {
        let _prof = prof::span(match &ev {
            Ev::Resume(..) => "sim/dispatch/resume",
            Ev::MemDone { .. } => "sim/dispatch/mem_done",
            Ev::CacheMsg { .. } => "sim/dispatch/cache_msg",
            Ev::DirMsg { .. } => "sim/dispatch/dir_msg",
            Ev::Wire(..) => "sim/dispatch/wire",
            Ev::Timer(..) => "sim/dispatch/timer",
            Ev::Quantum(..) => "sim/dispatch/quantum",
            Ev::Installed(..) => "sim/dispatch/installed",
            Ev::WakeNow(..) => "sim/dispatch/wake",
            Ev::YieldNow(..) => "sim/dispatch/yield",
        });
        if self.mach.dbg.trace_all {
            eprintln!("[{}] {:?}", self.mach.sim.now(), ev);
        }
        if let Some(l) = self.mach.dbg.trace_line {
            match &ev {
                Ev::CacheMsg { cache, line, msg } if line.0 == l => {
                    eprintln!(
                        "[{}] cachemsg cache={cache} {:?} (state {:?})",
                        self.mach.sim.now(),
                        msg,
                        self.mach.caches[*cache].state(*line)
                    );
                }
                Ev::DirMsg {
                    line, from, msg, ..
                } if line.0 == l => {
                    eprintln!("[{}] dirmsg from={:?} {:?}", self.mach.sim.now(), from, msg);
                }
                _ => {}
            }
        }
        match ev {
            Ev::Resume(t, outcome, gen) => {
                if gen == self.mach.threads[t.0 as usize].resume_gen {
                    self.drive(t, outcome);
                }
            }
            Ev::MemDone { cache, line } => self.complete_mem(cache, line),
            Ev::CacheMsg { cache, line, msg } => {
                // Trace-prep (endpoint lookups, class naming, state reads)
                // only when tracing is on: this is the hottest dispatch arm
                // and the lazy record closure alone doesn't guard work done
                // to build its captures.
                let before = if self.mach.tracer.is_enabled() {
                    let home = home_of(line, self.mach.dirs.len());
                    let from = self.mach.net.mem_endpoint(home).index() as u16;
                    let to = self.mach.net.core_endpoint(cache).index() as u16;
                    let class = match msg {
                        DirToCache::DataS { .. } | DirToCache::DataM => "data",
                        _ => "control",
                    };
                    self.mach.trace(|now| TraceEvent {
                        t: now,
                        ep: TraceEp::Core(cache as u32),
                        kind: TraceKind::MsgRecv { class, from, to },
                    });
                    Some(self.mach.caches[cache].state(line))
                } else {
                    None
                };
                let mut actions = std::mem::take(&mut self.mach.cache_scratch);
                self.mach.caches[cache].handle(line, msg, &mut actions);
                if let Some(b) = before {
                    let a = self.mach.caches[cache].state(line);
                    if a != b {
                        self.mach.trace(|now| TraceEvent {
                            t: now,
                            ep: TraceEp::Core(cache as u32),
                            kind: TraceKind::Coherence {
                                line: line.0,
                                from: cache_state_name(b),
                                to: cache_state_name(a),
                            },
                        });
                    }
                }
                for act in actions.drain(..) {
                    match act {
                        CacheAction::Send(m) => {
                            let home = home_of(line, self.mach.dirs.len());
                            let src = self.mach.net.core_endpoint(cache);
                            let dst = self.mach.net.mem_endpoint(home);
                            let class = match m {
                                CacheToDir::InvAck { dirty: true }
                                | CacheToDir::DowngradeAck { dirty: true } => MsgClass::Data,
                                _ => MsgClass::Control,
                            };
                            let now = self.mach.sim.now();
                            let arrival = self.mach.net_send(now, src, dst, class);
                            self.mach.sim.schedule_at(
                                arrival,
                                Ev::DirMsg {
                                    dir: home,
                                    line,
                                    from: CacheId(cache as u32),
                                    msg: m,
                                },
                            );
                        }
                        CacheAction::CpuDone => self.complete_mem(cache, line),
                        CacheAction::Invalidated => self.fire_watchers(cache, line),
                        CacheAction::Downgraded => {}
                    }
                }
                self.mach.cache_scratch = actions;
            }
            Ev::DirMsg {
                dir,
                line,
                from,
                msg,
            } => {
                // Same guard as the CacheMsg arm: skip endpoint/class prep
                // entirely when tracing is off.
                if self.mach.tracer.is_enabled() {
                    let src = self.mach.net.core_endpoint(from.0 as usize).index() as u16;
                    let dst = self.mach.net.mem_endpoint(dir).index() as u16;
                    let class = match msg {
                        CacheToDir::InvAck { dirty: true }
                        | CacheToDir::DowngradeAck { dirty: true } => "data",
                        _ => "control",
                    };
                    self.mach.trace(|now| TraceEvent {
                        t: now,
                        ep: TraceEp::Dir(dir as u32),
                        kind: TraceKind::MsgRecv {
                            class,
                            from: src,
                            to: dst,
                        },
                    });
                }
                let mut actions = std::mem::take(&mut self.mach.dir_scratch);
                self.mach.dirs[dir].handle(line, from, msg, &mut actions);
                for act in actions.drain(..) {
                    // A data grant is the transaction's serialization point:
                    // apply the requestor's pending value effect now so that
                    // values linearize in directory order, not in message-
                    // arrival order (grants can be overtaken in the network).
                    if matches!(act.msg, DirToCache::DataS { .. } | DirToCache::DataM) {
                        let key = (act.to.0 as usize, line);
                        if let Some(pm) = self.mach.pending_mem.get(&key).copied() {
                            if pm.result.is_none() {
                                let v = self.mach.apply_mem(pm);
                                if let Some(slot) = self.mach.pending_mem.get_mut(&key) {
                                    slot.result = Some(v);
                                }
                            }
                        }
                    }
                    let delay = self.mach.cfg.dir_latency
                        + if act.dram {
                            self.mach.cfg.dram_latency
                        } else {
                            0
                        };
                    let class = if act.carries_data {
                        MsgClass::Data
                    } else {
                        MsgClass::Control
                    };
                    let src = self.mach.net.mem_endpoint(dir);
                    let dst = self.mach.net.core_endpoint(act.to.0 as usize);
                    let t0 = self.mach.sim.now() + delay;
                    let arrival = self.mach.net_send(t0, src, dst, class);
                    self.mach.sim.schedule_at(
                        arrival,
                        Ev::CacheMsg {
                            cache: act.to.0 as usize,
                            line,
                            msg: act.msg,
                        },
                    );
                }
                self.mach.dir_scratch = actions;
            }
            Ev::Wire(payload) => {
                let _prof = prof::span("backend/on_wire");
                self.backend.on_wire(&mut self.mach, payload);
            }
            Ev::Timer(token) => {
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Global,
                    kind: TraceKind::TimerFire { label: "backend" },
                });
                let _prof = prof::span("backend/on_timer");
                self.backend.on_timer(&mut self.mach, token)
            }
            Ev::Quantum(core, gen) => self.quantum_tick(core, gen),
            Ev::Installed(t, core) => self.finish_install(t, core),
            Ev::WakeNow(t, line) => self.backend.on_line_invalidated(&mut self.mach, t, line),
            Ev::YieldNow(t) => self.yield_now(t),
        }
    }

    /// A requested yield fires: hand the core to the next ready thread. By
    /// the time the event is dispatched the requester may already be
    /// off-core (quantum preemption raced it) or alone (ready queue
    /// drained) — both are no-ops.
    fn yield_now(&mut self, t: ThreadId) {
        let ti = t.0 as usize;
        let th = &self.mach.threads[ti];
        if th.core.is_none()
            || th.run == ThreadRun::Finished
            || th.suspended
            || self.mach.ready.is_empty()
        {
            return;
        }
        let core = th.core.expect("checked on-core");
        self.mach.metrics.incr("yields_taken");
        self.deschedule_to_ready(t);
        if let Some(next) = self.mach.ready.pop_front() {
            self.install(next, core.0 as usize, self.mach.cfg.ctx_switch);
        }
    }

    fn fire_watchers(&mut self, cache: usize, line: LineAddr) {
        if self.mach.dbg.watch_line == Some(line.0) {
            eprintln!(
                "[{}] fire_watchers cache={cache} watchers={:?}",
                self.mach.sim.now(),
                self.mach.watchers.get(&(cache, line))
            );
        }

        if let Some(ws) = self.mach.watchers.remove(&(cache, line)) {
            for t in ws {
                self.backend.on_line_invalidated(&mut self.mach, t, line);
            }
        }
    }

    fn complete_mem(&mut self, cache: usize, line: LineAddr) {
        let key = (cache, line);
        let pm = self
            .mach
            .pending_mem
            .remove(&key)
            .expect("completion without pending mem op");
        let value = match pm.result {
            Some(v) => v,
            None => self.mach.apply_mem(pm),
        };
        let served_in = self.mach.sim.now().saturating_since(pm.issued);
        self.mach.metrics.observe("mem_op_cycles", served_in);
        if self.mach.dbg.watch_line == Some(line.0) {
            eprintln!(
                "[{}] complete_mem cache={cache} addr={} kind={:?} issuer={:?} val={value:#x}",
                self.mach.sim.now(),
                pm.addr,
                pm.kind,
                pm.issuer
            );
        }
        match pm.issuer {
            MemIssuer::Prog(t) => {
                let outcome = match pm.kind {
                    MemKind::Load | MemKind::Rmw(_) => Outcome::Value(value),
                    MemKind::Store(_) => Outcome::Completed,
                };
                self.drive(t, outcome);
            }
            MemIssuer::Backend(t) => self.backend.on_mem_value(&mut self.mach, t, value),
        }
        // Start the next queued op for this (cache, line), if any — unless
        // the completion callback above already issued a fresh op on the
        // same line (the slot is taken again; the queue drains at that
        // op's completion).
        if self.mach.pending_mem.contains_key(&key) {
            return;
        }
        if let Some(q) = self.mach.mem_waitq.get_mut(&key) {
            if let Some(next) = q.pop_front() {
                if q.is_empty() {
                    self.mach.mem_waitq.remove(&key);
                }
                self.mach.start_mem(cache, next);
            } else {
                self.mach.mem_waitq.remove(&key);
            }
        }
    }

    fn drive(&mut self, t: ThreadId, outcome: Outcome) {
        let ti = t.0 as usize;
        if self.mach.threads[ti].run == ThreadRun::Finished {
            return;
        }
        let Some(core) = self.mach.threads[ti].core else {
            debug_assert!(
                self.mach.threads[ti].pending_outcome.is_none(),
                "thread {ti} already has a stashed outcome"
            );
            self.mach.threads[ti].pending_outcome = Some(outcome);
            return;
        };
        self.mach.threads[ti].computing = None;
        let mut prog = self.mach.threads[ti]
            .program
            .take()
            .expect("thread has no program");
        let action = {
            let now = self.mach.sim.now();
            let mut ctx = Ctx {
                now,
                tid: t,
                core,
                rng: &mut self.mach.threads[ti].rng,
            };
            prog.resume(&mut ctx, outcome)
        };
        self.mach.threads[ti].program = Some(prog);
        self.apply_action(t, core, action);
    }

    fn apply_action(&mut self, t: ThreadId, core: CoreId, action: Action) {
        let ti = t.0 as usize;
        // Cycle-dissection bookkeeping: the action decides what the thread
        // spends its next cycles on. Time inside a critical section counts
        // as lock_hold whatever the instruction mix.
        let in_cs = !self.mach.threads[ti].holding.is_empty();
        match action {
            Action::Compute(c) => {
                self.mach.acct_switch(
                    ti,
                    if in_cs {
                        CycleCat::LockHold
                    } else {
                        CycleCat::Compute
                    },
                );
                self.mach.threads[ti].computing = Some(self.mach.sim.now() + c);
                self.mach.sched_resume(t, Outcome::Completed, c);
            }
            Action::Read(a) => {
                self.mach.acct_switch(
                    ti,
                    if in_cs {
                        CycleCat::LockHold
                    } else {
                        CycleCat::Memory
                    },
                );
                self.mach
                    .issue_mem(core.0 as usize, a, MemKind::Load, MemIssuer::Prog(t));
            }
            Action::Write(a, v) => {
                self.mach.acct_switch(
                    ti,
                    if in_cs {
                        CycleCat::LockHold
                    } else {
                        CycleCat::Memory
                    },
                );
                self.mach
                    .issue_mem(core.0 as usize, a, MemKind::Store(v), MemIssuer::Prog(t));
            }
            Action::Rmw(a, op) => {
                self.mach.acct_switch(
                    ti,
                    if in_cs {
                        CycleCat::LockHold
                    } else {
                        CycleCat::Memory
                    },
                );
                self.mach
                    .issue_mem(core.0 as usize, a, MemKind::Rmw(op), MemIssuer::Prog(t));
            }
            Action::Acquire {
                lock,
                mode,
                try_for,
            } => {
                self.mach.acct_switch(ti, CycleCat::LockAcquire);
                let req_at = self.mach.sim.now();
                self.mach.threads[ti].waiting_since = Some(req_at);
                self.mach.threads[ti].waiting_on = Some((lock, mode));
                self.mach.waiting_threads += 1;
                let depth = self.mach.waiting_threads;
                self.mach.series.on_queue_depth(req_at.cycles(), depth);
                self.mach
                    .lockstat
                    .on_request(lock.0, t.0, mode == Mode::Write, req_at.cycles());
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(t.0),
                    kind: TraceKind::LockRequest {
                        lock: lock.0,
                        thread: t.0,
                        write: mode == Mode::Write,
                    },
                });
                let _prof = prof::span("backend/on_acquire");
                self.backend
                    .on_acquire(&mut self.mach, t, lock, mode, try_for);
            }
            Action::Release { lock, mode } => {
                self.mach.acct_switch(ti, CycleCat::LockRelease);
                if let Some(pos) = self.mach.threads[ti]
                    .holding
                    .iter()
                    .rposition(|&(a, _)| a == lock)
                {
                    let (_, since) = self.mach.threads[ti].holding.remove(pos);
                    let held = self.mach.sim.now().saturating_since(since);
                    self.mach.metrics.observe("lock_hold_cycles", held);
                    self.mach
                        .lockstat
                        .on_release(lock.0, t.0, mode == Mode::Write, held);
                }
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(t.0),
                    kind: TraceKind::LockRelease {
                        lock: lock.0,
                        thread: t.0,
                        write: mode == Mode::Write,
                    },
                });
                let _prof = prof::span("backend/on_release");
                self.backend.on_release(&mut self.mach, t, lock, mode);
            }
            Action::Yield => {
                self.mach.acct_switch(ti, CycleCat::Preempted);
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(t.0),
                    kind: TraceKind::SchedPreempt {
                        thread: t.0,
                        core: core.0,
                    },
                });
                self.mach.threads[ti].pending_outcome = Some(Outcome::Completed);
                self.mach.cores[core.0 as usize] = None;
                self.mach.threads[ti].core = None;
                self.mach.threads[ti].run = ThreadRun::Ready;
                self.mach.ready.push_back(t);
                self.backend.on_thread_descheduled(&mut self.mach, t);
                if let Some(next) = self.mach.ready.pop_front() {
                    self.install(next, core.0 as usize, self.mach.cfg.ctx_switch);
                }
            }
            Action::Done => {
                self.mach.acct_switch(ti, CycleCat::Preempted);
                self.mach.threads[ti].finished_at = Some(self.mach.sim.now());
                self.mach.threads[ti].run = ThreadRun::Finished;
                self.mach.threads[ti].core = None;
                self.mach.cores[core.0 as usize] = None;
                self.mach.alive -= 1;
                if let Some(next) = self.mach.ready.pop_front() {
                    self.install(next, core.0 as usize, self.mach.cfg.ctx_switch);
                }
            }
        }
    }

    /// If `t` is mid-Compute, cancels the in-flight completion and banks
    /// the remaining cycles for its next turn on a core.
    fn suspend_compute(&mut self, t: ThreadId) {
        let ti = t.0 as usize;
        if let Some(end) = self.mach.threads[ti].computing.take() {
            let now = self.mach.sim.now();
            // The in-flight completion is cancelled by the generation bump,
            // so always bank at least one cycle: a preemption landing on the
            // compute's final cycle must still deliver its completion.
            self.mach.threads[ti].compute_left = end.saturating_since(now).max(1);
            self.mach.threads[ti].resume_gen += 1;
        }
    }

    fn install(&mut self, t: ThreadId, core: usize, delay: Cycles) {
        let ti = t.0 as usize;
        debug_assert!(self.mach.cores[core].is_none());
        debug_assert!(self.mach.threads[ti].run != ThreadRun::Finished);
        self.mach.cores[core] = Some(t);
        self.mach.threads[ti].core = Some(CoreId(core as u32));
        self.mach.threads[ti].run = ThreadRun::Running;
        self.mach.sim.schedule_in(delay, Ev::Installed(t, core));
    }

    fn finish_install(&mut self, t: ThreadId, core: usize) {
        let ti = t.0 as usize;
        // The thread may have been preempted again during the context
        // switch; only proceed if it still owns the core.
        if self.mach.cores[core] != Some(t) || self.mach.threads[ti].run == ThreadRun::Finished {
            return;
        }
        // Back on a core: resume the accounting category the thread was in
        // when it left (acquiring, inside a critical section, or plain work).
        let resumed = if self.mach.threads[ti].waiting_on.is_some() {
            CycleCat::LockAcquire
        } else if !self.mach.threads[ti].holding.is_empty() {
            CycleCat::LockHold
        } else {
            CycleCat::Compute
        };
        self.mach.acct_switch(ti, resumed);
        self.mach.trace(|now| TraceEvent {
            t: now,
            ep: TraceEp::Thread(t.0),
            kind: TraceKind::SchedRun {
                thread: t.0,
                core: core as u32,
            },
        });
        self.backend
            .on_thread_scheduled(&mut self.mach, t, CoreId(core as u32));
        // Replay memory ops the backend issued while the thread was off-core.
        while let Some((addr, kind)) = self.mach.threads[ti].deferred_mem.pop_front() {
            self.mach.issue_mem(core, addr, kind, MemIssuer::Backend(t));
        }
        let left = std::mem::take(&mut self.mach.threads[ti].compute_left);
        if left > 0 {
            self.mach.threads[ti].computing = Some(self.mach.sim.now() + left);
            self.mach.sched_resume(t, Outcome::Completed, left);
        }
        if let Some(outcome) = self.mach.threads[ti].pending_outcome.take() {
            self.drive(t, outcome);
        }
    }

    fn maybe_activate_quantum(&mut self) {
        if self.mach.alive > self.mach.cores.len() && !self.mach.quantum_active {
            self.mach.quantum_active = true;
            self.mach.quantum_gen += 1;
            let gen = self.mach.quantum_gen;
            let q = self.mach.cfg.quantum;
            let n = self.mach.cores.len() as u64;
            for core in 0..self.mach.cores.len() {
                // Stagger expirations so cores do not context-switch in
                // lockstep.
                let offset = q + (core as u64 * q) / n.max(1);
                self.mach.sim.schedule_in(offset, Ev::Quantum(core, gen));
            }
        }
    }

    fn quantum_tick(&mut self, core: usize, gen: u64) {
        if gen != self.mach.quantum_gen || !self.mach.quantum_active {
            return;
        }
        if self.mach.alive <= self.mach.cores.len() {
            self.mach.quantum_active = false;
            return;
        }
        if let Some(cur) = self.mach.cores[core] {
            if !self.mach.ready.is_empty() {
                let ci = cur.0 as usize;
                self.suspend_compute(cur);
                self.mach.acct_switch(ci, CycleCat::Preempted);
                self.mach.trace(|now| TraceEvent {
                    t: now,
                    ep: TraceEp::Thread(cur.0),
                    kind: TraceKind::SchedPreempt {
                        thread: cur.0,
                        core: core as u32,
                    },
                });
                self.mach.cores[core] = None;
                self.mach.threads[ci].core = None;
                self.mach.threads[ci].run = ThreadRun::Ready;
                self.mach.threads[ci].stats.preemptions += 1;
                self.mach.ready.push_back(cur);
                self.backend.on_thread_descheduled(&mut self.mach, cur);
                let next = self.mach.ready.pop_front().expect("checked non-empty");
                self.install(next, core, self.mach.cfg.ctx_switch);
            }
        } else if let Some(next) = self.mach.ready.pop_front() {
            self.install(next, core, self.mach.cfg.ctx_switch);
        }
        let q = self.mach.cfg.quantum;
        self.mach.sim.schedule_in(q, Ev::Quantum(core, gen));
    }
}
