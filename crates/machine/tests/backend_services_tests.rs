//! Tests of the services `Mach` provides to lock backends: wire messages,
//! timers, backend-issued memory operations (including deferral across
//! preemption), and line watches (including the immediate-fire path).

use std::cell::RefCell;
use std::rc::Rc;

use locksim_engine::stats::Counters;
use locksim_engine::Cycles;
use locksim_machine::testing::ScriptProgram;
use locksim_machine::{
    Action, Addr, Ep, LineAddr, LockBackend, Mach, MachineConfig, MemKind, Mode, ThreadId, World,
};
use locksim_topo::MsgClass;

/// Shared observation log for the probe backend.
#[derive(Debug, Default)]
struct Log {
    events: Vec<String>,
}

/// A backend that grants instantly but exercises every Mach service and
/// records what it observes.
struct ProbeBackend {
    log: Rc<RefCell<Log>>,
    /// Addresses to read via `backend_mem` on the first acquire.
    probe_addr: Option<Addr>,
    /// Line to watch on the first acquire.
    watch: Option<Addr>,
}

impl ProbeBackend {
    fn new(log: Rc<RefCell<Log>>) -> Self {
        ProbeBackend {
            log,
            probe_addr: None,
            watch: None,
        }
    }
}

impl LockBackend for ProbeBackend {
    fn name(&self) -> &'static str {
        "probe"
    }

    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        _mode: Mode,
        _try_for: Option<Cycles>,
    ) {
        self.log
            .borrow_mut()
            .events
            .push(format!("acquire t{}", t.0));
        if let Some(a) = self.probe_addr.take() {
            m.backend_mem(t, a, MemKind::Load);
        }
        if let Some(a) = self.watch.take() {
            m.watch_line(t, a.line());
        }
        // Bounce a wire message to ourselves via the lock's home.
        let core = m.core_of(t).unwrap().0 as usize;
        let home = m.home_of(lock);
        m.send_wire(
            Ep::Core(core),
            Ep::Mem(home),
            MsgClass::Control,
            0,
            (t, lock),
        );
        m.set_timer(50, t.0 as u64);
    }

    fn on_release(&mut self, m: &mut Mach, t: ThreadId, _lock: Addr, _mode: Mode) {
        self.log
            .borrow_mut()
            .events
            .push(format!("release t{}", t.0));
        m.complete_release(t);
    }

    fn on_wire(&mut self, m: &mut Mach, payload: locksim_machine::WirePayload) {
        let (t, _lock) = payload.downcast::<(ThreadId, Addr)>().expect("payload");
        self.log.borrow_mut().events.push(format!("wire t{}", t.0));
        m.grant_lock(t);
    }

    fn on_timer(&mut self, _m: &mut Mach, token: u64) {
        self.log.borrow_mut().events.push(format!("timer {token}"));
    }

    fn on_mem_value(&mut self, _m: &mut Mach, t: ThreadId, value: u64) {
        self.log
            .borrow_mut()
            .events
            .push(format!("mem t{} v{value}", t.0));
    }

    fn on_line_invalidated(&mut self, _m: &mut Mach, t: ThreadId, _line: LineAddr) {
        self.log.borrow_mut().events.push(format!("inval t{}", t.0));
    }

    fn counters(&self) -> Counters {
        Counters::new()
    }
}

fn world_with_probe(log: Rc<RefCell<Log>>, make: impl FnOnce(&mut ProbeBackend)) -> World {
    let mut be = ProbeBackend::new(log);
    make(&mut be);
    World::new(MachineConfig::model_a(4), Box::new(be), 1)
}

#[test]
fn wire_round_trip_grants_and_timer_fires() {
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log.clone(), |_| {});
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let ev = log.borrow().events.clone();
    assert_eq!(ev[0], "acquire t0");
    assert!(ev.contains(&"wire t0".to_string()));
    assert!(ev.contains(&"timer 0".to_string()));
    assert!(ev.contains(&"release t0".to_string()));
}

#[test]
fn backend_mem_returns_poked_value() {
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log.clone(), |be| be.probe_addr = Some(Addr(0x1000)));
    w.mach().mem_poke(Addr(0x1000), 1234);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        // Stay alive until the backend's probe load completes (the run
        // stops as soon as every thread finishes).
        Action::Compute(5_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    assert!(
        log.borrow().events.contains(&"mem t0 v1234".to_string()),
        "events: {:?}",
        log.borrow().events
    );
}

#[test]
fn watch_on_uncached_line_fires_immediately() {
    // The probe watches a line its core has never cached: the machine must
    // deliver an immediate wake rather than letting it hang.
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log.clone(), |be| be.watch = Some(Addr(0x2000)));
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    assert!(log.borrow().events.contains(&"inval t0".to_string()));
    assert_eq!(w.report_counters().get("watches_fired_immediately"), 1);
}

#[test]
fn watch_fires_on_remote_write() {
    // Thread 0's program caches a line; thread 1 writes it; the watch that
    // the probe registered for thread 0 must fire.
    let log = Rc::new(RefCell::new(Log::default()));
    let shared = Addr(0x3000);
    let mut w = world_with_probe(log.clone(), |_| {});
    let lock = w.mach().alloc().alloc_line();
    // t0: read the line (caches it), then acquire (probe arms the watch on
    // the now-cached line via probe_addr trick below), then wait.
    // Simpler: t0 reads, then the test registers the watch through a
    // second acquire wired by the probe. Instead we use the program to
    // cache the line and the probe's `watch` hook at acquire time.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Read(shared),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(50_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // t1 writes the shared line after a delay.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(5_000),
        Action::Write(shared, 9),
    ])));
    // Arm the watch when t0 acquires (line already cached by then).
    // Rebuild the world with the watch configured:
    drop(w);
    let log2 = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log2.clone(), |be| be.watch = Some(shared));
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Read(shared),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(50_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(5_000),
        Action::Write(shared, 9),
    ])));
    w.run_to_completion();
    assert!(
        log2.borrow().events.contains(&"inval t0".to_string()),
        "events: {:?}",
        log2.borrow().events
    );
    assert_eq!(w.report_counters().get("watches_fired_immediately"), 0);
}

#[test]
fn unwatch_suppresses_wake() {
    // Registering then unregistering a watch must not deliver a wake.
    struct UnwatchBackend {
        log: Rc<RefCell<Log>>,
        target: Addr,
    }
    impl LockBackend for UnwatchBackend {
        fn name(&self) -> &'static str {
            "unwatch"
        }
        fn on_acquire(
            &mut self,
            m: &mut Mach,
            t: ThreadId,
            _l: Addr,
            _mo: Mode,
            _tf: Option<Cycles>,
        ) {
            m.watch_line(t, self.target.line());
            m.unwatch_line(t, self.target.line());
            m.grant_lock(t);
        }
        fn on_release(&mut self, m: &mut Mach, t: ThreadId, _l: Addr, _mo: Mode) {
            m.complete_release(t);
        }
        fn on_line_invalidated(&mut self, _m: &mut Mach, t: ThreadId, _line: LineAddr) {
            self.log.borrow_mut().events.push(format!("inval t{}", t.0));
        }
    }
    let log = Rc::new(RefCell::new(Log::default()));
    let shared = Addr(0x4000);
    let mut w = World::new(
        MachineConfig::model_a(4),
        Box::new(UnwatchBackend {
            log: log.clone(),
            target: shared,
        }),
        1,
    );
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Read(shared),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(20_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(2_000),
        Action::Write(shared, 1),
    ])));
    w.run_to_completion();
    assert!(
        log.borrow().events.is_empty(),
        "unexpected {:?}",
        log.borrow().events
    );
}

#[test]
fn trace_records_bounded_events() {
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log, |_| {});
    w.enable_trace(8);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(1_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let entries = w.trace_entries();
    assert!(!entries.is_empty());
    assert!(entries.len() <= 8, "bound respected: {}", entries.len());
    // Timestamps are nondecreasing.
    for pair in entries.windows(2) {
        assert!(pair[0].0 <= pair[1].0);
    }
    // Events render as useful debug text.
    assert!(entries
        .iter()
        .any(|(_, e)| e.contains("Lock") || e.contains("Sched")));
}

#[test]
fn trace_captures_full_lock_lifecycle() {
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log, |_| {});
    w.enable_trace(4096);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(1_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let kinds: Vec<&'static str> = w
        .mach_ref()
        .tracer()
        .events()
        .filter(|e| e.kind.lock_addr() == Some(lock.0))
        .map(|e| e.kind.name())
        .collect();
    assert_eq!(kinds, ["lock_request", "lock_grant", "lock_release"]);
    // The grant/hold/release also feed the metrics registry.
    let snap = w.metrics_snapshot();
    assert_eq!(snap.counters.get("locks_granted"), 1);
    assert!(snap
        .hists
        .iter()
        .any(|h| h.name == "lock_wait_cycles" && h.count == 1));
    assert!(snap
        .hists
        .iter()
        .any(|h| h.name == "lock_hold_cycles" && h.count == 1));
}

#[test]
fn dissection_buckets_sum_to_thread_lifetime() {
    let log = Rc::new(RefCell::new(Log::default()));
    let mut w = world_with_probe(log, |_| {});
    let lock = w.mach().alloc().alloc_line();
    let t = w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(500),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(1_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
        Action::Compute(200),
    ])));
    w.run_to_completion();
    let d = w.thread_dissection(t);
    let end = w.mach_ref().now();
    assert_eq!(
        d.total(),
        end.cycles(),
        "buckets must sum to the thread's lifetime"
    );
    assert!(d.compute >= 700, "both compute phases accounted: {d:?}");
    assert!(
        d.lock_hold >= 1_000,
        "critical section counts as hold: {d:?}"
    );
}
