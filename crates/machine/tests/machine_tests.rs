//! Machine-level integration tests: programs + memory system + scheduler +
//! the idealized lock backend.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_machine::testing::{FnProgram, ScriptProgram};
use locksim_machine::{
    Action, Addr, IdealBackend, MachineConfig, Mode, Outcome, RmwOp, RunExit, ThreadId, World,
};

fn world_a(chips: usize) -> World {
    World::new(
        MachineConfig::model_a(chips),
        Box::new(IdealBackend::new()),
        42,
    )
}

#[test]
fn empty_world_finishes_immediately() {
    let mut w = world_a(2);
    w.run_to_completion();
    assert_eq!(w.mach().now().cycles(), 0);
}

#[test]
fn compute_advances_time() {
    let mut w = world_a(2);
    w.spawn(Box::new(ScriptProgram::new(vec![Action::Compute(1000)])));
    w.run_to_completion();
    assert_eq!(w.mach().now().cycles(), 1000);
}

#[test]
fn writes_become_visible() {
    let mut w = world_a(2);
    let a = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Write(a, 11),
        Action::Write(a.add(1), 22),
    ])));
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(a), 11);
    assert_eq!(w.mach().mem_peek(a.add(1)), 22);
}

#[test]
fn read_returns_written_value() {
    let mut w = world_a(2);
    let a = w.mach().alloc().alloc_line();
    w.mach().mem_poke(a, 77);
    let seen = Rc::new(RefCell::new(None));
    let seen2 = seen.clone();
    let mut step = 0;
    w.spawn(Box::new(FnProgram(
        move |_ctx: &mut locksim_machine::Ctx<'_>, outcome: Outcome| {
            step += 1;
            match step {
                1 => Action::Read(a),
                _ => {
                    if let Outcome::Value(v) = outcome {
                        *seen2.borrow_mut() = Some(v);
                    }
                    Action::Done
                }
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*seen.borrow(), Some(77));
}

#[test]
fn rmw_returns_old_value_and_applies() {
    let mut w = world_a(2);
    let a = w.mach().alloc().alloc_line();
    w.mach().mem_poke(a, 5);
    let old = Rc::new(RefCell::new(None));
    let old2 = old.clone();
    let mut step = 0;
    w.spawn(Box::new(FnProgram(
        move |_ctx: &mut locksim_machine::Ctx<'_>, outcome: Outcome| {
            step += 1;
            match step {
                1 => Action::Rmw(a, RmwOp::FetchAdd(10)),
                _ => {
                    if let Outcome::Value(v) = outcome {
                        *old2.borrow_mut() = Some(v);
                    }
                    Action::Done
                }
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*old.borrow(), Some(5));
    assert_eq!(w.mach().mem_peek(a), 15);
}

#[test]
fn memory_latency_in_plausible_band() {
    // A cold load on Model A should take on the order of the paper's
    // 186-cycle memory latency: L1 miss + network + directory + DRAM.
    let mut w = world_a(32);
    let a = Addr(8 * 1000);
    w.spawn(Box::new(ScriptProgram::new(vec![Action::Read(a)])));
    w.run_to_completion();
    let t = w.mach().now().cycles();
    assert!((120..320).contains(&t), "cold load took {t} cycles");
}

#[test]
fn l1_hit_is_cheap() {
    let mut w = world_a(32);
    let a = Addr(8 * 1000);
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Read(a),
        Action::Read(a),
        Action::Read(a),
    ])));
    w.run_to_completion();
    let total = w.mach().now().cycles();
    // Subsequent hits add only L1 latency (3 cycles each).
    let mut w2 = world_a(32);
    w2.spawn(Box::new(ScriptProgram::new(vec![Action::Read(a)])));
    w2.run_to_completion();
    let first = w2.mach().now().cycles();
    assert_eq!(total, first + 2 * 3);
}

#[test]
fn mutual_exclusion_under_ideal_backend() {
    // N threads increment a shared counter under a write lock; no lost
    // updates means the lock provided mutual exclusion (the increment is a
    // non-atomic read/compute/write sequence).
    let mut w = world_a(8);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    const ITERS: usize = 20;
    for _ in 0..8 {
        let mut iter = 0;
        let mut stage = 0;
        let mut val = 0;
        w.spawn(Box::new(FnProgram(
            move |_ctx: &mut locksim_machine::Ctx<'_>, outcome: Outcome| loop {
                match stage {
                    0 => {
                        if iter == ITERS {
                            return Action::Done;
                        }
                        stage = 1;
                        return Action::Acquire {
                            lock,
                            mode: Mode::Write,
                            try_for: None,
                        };
                    }
                    1 => {
                        stage = 2;
                        return Action::Read(counter);
                    }
                    2 => {
                        let Outcome::Value(v) = outcome else {
                            panic!("expected value")
                        };
                        val = v;
                        stage = 3;
                        return Action::Compute(20);
                    }
                    3 => {
                        stage = 4;
                        return Action::Write(counter, val + 1);
                    }
                    4 => {
                        stage = 5;
                        return Action::Release {
                            lock,
                            mode: Mode::Write,
                        };
                    }
                    5 => {
                        stage = 0;
                        iter += 1;
                        continue;
                    }
                    _ => unreachable!(),
                }
            },
        )));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 8 * ITERS as u64);
}

#[test]
fn readers_run_concurrently_writers_alone() {
    // 4 readers acquire the same lock and deliberately overlap (each holds
    // it across a long compute). With concurrent readers the total runtime
    // is ~one CS, not four.
    let mut w = world_a(8);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..4 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(10_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    let readers_time = w.mach().now().cycles();
    assert!(
        readers_time < 2 * 10_000,
        "readers serialized: {readers_time}"
    );

    let mut w = world_a(8);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..4 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Compute(10_000),
            Action::Release {
                lock,
                mode: Mode::Write,
            },
        ])));
    }
    w.run_to_completion();
    let writers_time = w.mach().now().cycles();
    assert!(
        writers_time >= 4 * 10_000,
        "writers overlapped: {writers_time}"
    );
}

#[test]
fn trylock_with_zero_budget_fails_when_held() {
    let mut w = world_a(4);
    let lock = w.mach().alloc().alloc_line();
    let outcome_seen = Rc::new(RefCell::new(None));
    let seen = outcome_seen.clone();
    // Thread 0 holds the lock for a long time.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(50_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    // Thread 1 tries after a delay and must fail fast.
    let mut step = 0;
    w.spawn(Box::new(FnProgram(
        move |_ctx: &mut locksim_machine::Ctx<'_>, outcome: Outcome| {
            step += 1;
            match step {
                1 => Action::Compute(1_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: Some(0),
                },
                _ => {
                    *seen.borrow_mut() = Some(outcome);
                    Action::Done
                }
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*outcome_seen.borrow(), Some(Outcome::Failed));
}

#[test]
fn oversubscription_time_slices_all_threads() {
    // 6 threads on 2 cores: everyone must finish, and preemptions happen.
    let mut cfg = MachineConfig::model_a(2);
    cfg.quantum = 5_000;
    let mut w = World::new(cfg, Box::new(IdealBackend::new()), 7);
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Compute(20_000),
            Action::Compute(20_000),
        ])));
    }
    w.run_to_completion();
    let total_preempts: u64 = (0..6)
        .map(|i| w.mach().thread_stats(ThreadId(i)).preemptions)
        .sum();
    assert!(
        total_preempts > 0,
        "expected preemptions under oversubscription"
    );
    // 6 threads × 40k cycles of work on 2 cores ≥ 120k cycles.
    assert!(w.mach().now().cycles() >= 120_000);
}

#[test]
fn yield_rotates_ready_threads() {
    // One core, two threads; the first yields so the second can run.
    let order = Rc::new(RefCell::new(Vec::new()));
    let o1 = order.clone();
    let o2 = order.clone();
    let mut w = world_a(1);
    let mut step1 = 0;
    w.spawn(Box::new(FnProgram(
        move |_ctx: &mut locksim_machine::Ctx<'_>, _: Outcome| {
            step1 += 1;
            match step1 {
                1 => {
                    o1.borrow_mut().push("t0-start");
                    Action::Yield
                }
                _ => {
                    o1.borrow_mut().push("t0-end");
                    Action::Done
                }
            }
        },
    )));
    let mut step2 = 0;
    w.spawn(Box::new(FnProgram(
        move |_ctx: &mut locksim_machine::Ctx<'_>, _: Outcome| {
            step2 += 1;
            match step2 {
                1 => {
                    o2.borrow_mut().push("t1-run");
                    Action::Compute(10)
                }
                _ => Action::Done,
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*order.borrow(), vec!["t0-start", "t1-run", "t0-end"]);
}

#[test]
fn migration_moves_thread_to_new_core() {
    let mut w = world_a(4);
    // A long-running thread on core 0.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(1_000),
        Action::Compute(1_000),
    ])));
    let t = ThreadId(0);
    // Run a little, then migrate to core 2.
    w.run_for(Some(locksim_engine::Time::from_cycles(500)));
    assert_eq!(w.mach().core_of(t).map(|c| c.0), Some(0));
    w.migrate(t, 2);
    w.run_to_completion();
    assert_eq!(w.mach().counters_mut().get("migrations"), 1);
}

#[test]
fn run_for_returns_time_limit() {
    let mut w = world_a(2);
    w.spawn(Box::new(ScriptProgram::new(vec![Action::Compute(
        1_000_000,
    )])));
    let exit = w.run_for(Some(locksim_engine::Time::from_cycles(1_000)));
    assert_eq!(exit, RunExit::TimeLimit);
}

#[test]
fn thread_stats_record_acquires_and_waits() {
    let mut w = world_a(2);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..2 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Compute(5_000),
            Action::Release {
                lock,
                mode: Mode::Write,
            },
        ])));
    }
    w.run_to_completion();
    let s0 = w.mach().thread_stats(ThreadId(0));
    let s1 = w.mach().thread_stats(ThreadId(1));
    assert_eq!(s0.acquires, 1);
    assert_eq!(s1.acquires, 1);
    // The second thread waited roughly one critical section.
    assert!(s0.wait_cycles + s1.wait_cycles >= 4_000);
}

#[test]
fn report_counters_include_lock_and_network_activity() {
    let mut w = world_a(4);
    let lock = w.mach().alloc().alloc_line();
    let data = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Write(data, 1),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(c.get("locks_granted"), 1);
    assert!(c.get("net_control_msgs") > 0, "cold write misses to memory");
}

#[test]
fn deterministic_across_runs() {
    let run = |seed| {
        let mut w = World::new(
            MachineConfig::model_b(),
            Box::new(IdealBackend::new()),
            seed,
        );
        let lock = w.mach().alloc().alloc_line();
        let data = w.mach().alloc().alloc_line();
        for _ in 0..8 {
            w.spawn(Box::new(ScriptProgram::new(vec![
                Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: None,
                },
                Action::Rmw(data, RmwOp::FetchAdd(1)),
                Action::Release {
                    lock,
                    mode: Mode::Write,
                },
                Action::Compute(100),
            ])));
        }
        w.run_to_completion();
        w.mach().now().cycles()
    };
    assert_eq!(run(9), run(9));
    // Note: with a different seed timing may or may not differ (programs
    // here are deterministic), so only same-seed equality is asserted.
}

#[test]
fn suspend_parks_thread_until_resume() {
    let mut w = world_a(2);
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(1_000),
        Action::Compute(1_000),
    ])));
    let t = ThreadId(0);
    assert_eq!(w.run_until_cycle(500), RunExit::TimeLimit);
    assert!(w.suspend(t));
    assert!(w.mach().is_suspended(t));
    assert!(!w.suspend(t), "double suspend is a no-op");
    // A suspended thread never runs: the queue drains with it still alive.
    assert_eq!(w.run_for(None), RunExit::Stalled);
    assert!(w.resume_thread(t));
    assert!(!w.mach().is_suspended(t));
    w.run_to_completion();
    assert!(w.mach().now().cycles() >= 2_000);
}

#[test]
fn suspend_from_ready_queue_and_resume() {
    // 2 threads on 1 core: t1 waits in the ready queue; suspend it there.
    let mut cfg = MachineConfig::model_a(1);
    cfg.quantum = 100; // slice quickly so both threads make progress
    let mut w = World::new(cfg, Box::new(IdealBackend::new()), 3);
    for _ in 0..2 {
        w.spawn(Box::new(ScriptProgram::new(vec![Action::Compute(5_000)])));
    }
    let t1 = ThreadId(1);
    assert!(!w.mach().is_scheduled(t1), "t1 starts in the ready queue");
    assert!(w.suspend(t1));
    assert_eq!(w.run_for(None), RunExit::Stalled);
    assert!(w.resume_thread(t1));
    w.run_to_completion();
}

#[test]
fn force_migrate_evicts_target_occupant() {
    let mut w = world_a(2);
    let n = w.mach().n_cores();
    assert!(n >= 2);
    for _ in 0..2 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Compute(10_000),
            Action::Compute(10_000),
        ])));
    }
    let (t0, t1) = (ThreadId(0), ThreadId(1));
    w.run_until_cycle(500);
    let c1 = w.mach().core_of(t1).unwrap().0 as usize;
    // Force t0 onto t1's core: t1 is evicted to the ready queue and picks
    // up t0's vacated core.
    assert!(w.force_migrate(t0, c1));
    w.run_to_completion();
    assert!(w.mach().counters_mut().get("migrations") >= 1);
    assert!(w.mach().thread_stats(t1).preemptions >= 1);
}

#[test]
fn run_until_cycle_lands_on_exact_cycle() {
    let mut w = world_a(2);
    w.spawn(Box::new(ScriptProgram::new(vec![Action::Compute(10_000)])));
    assert_eq!(w.run_until_cycle(777), RunExit::TimeLimit);
    assert_eq!(w.mach().now().cycles(), 777);
    w.run_to_completion();
}

#[test]
fn wire_fault_delays_messages_deterministically() {
    let run = |faulty: bool| {
        let mut w = world_a(2);
        if faulty {
            w.mach().set_wire_fault(2, 500);
        }
        let a = w.mach().alloc().alloc_line();
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Write(a, 1),
            Action::Read(a.add(1)),
        ])));
        w.run_to_completion();
        (
            w.mach().now().cycles(),
            w.mach().counters_mut().get("wire_fault_delays"),
        )
    };
    let (clean, d0) = run(false);
    let (faulty, d1) = run(true);
    assert_eq!(d0, 0);
    assert!(d1 > 0, "fault must fire");
    assert!(faulty > clean, "delays must slow the run");
    assert_eq!(run(true), run(true), "fault stays deterministic");
}

#[test]
fn suspended_holder_blocks_then_unblocks_waiters() {
    // Writer t0 takes the lock then gets suspended mid-hold; t1's acquire
    // cannot be granted until t0 resumes and releases.
    let mut w = world_a(4);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..2 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            },
            Action::Compute(2_000),
            Action::Release {
                lock,
                mode: Mode::Write,
            },
        ])));
    }
    let t0 = ThreadId(0);
    w.run_until_cycle(1_000);
    assert_eq!(w.mach().holding_count(t0), 1);
    w.suspend(t0);
    let exit = w.run_for(Some(locksim_engine::Time::from_cycles(200_000)));
    assert_ne!(exit, RunExit::AllFinished, "t1 must still be waiting");
    assert!(w.mach().waiting_on(ThreadId(1)).is_some());
    w.resume_thread(t0);
    w.run_to_completion();
}
