//! The HTML dashboard: one self-contained page aggregating a ledger of
//! run manifests plus the checked-in `BENCH_*.json` trajectory.
//!
//! Self-contained means *no* external references — styling is an inline
//! `<style>` block, charts are inline SVG, and there is no JavaScript at
//! all — so the file can be archived as a CI artifact and opened years
//! later, offline. Rendering is a pure function of the inputs (manifests
//! sorted by file name, baselines sorted by file name), so two identical
//! invocations produce byte-identical HTML; CI relies on that.

use std::fmt::Write as _;

use crate::json;
use crate::manifest::RunManifest;

/// One `BENCH_NNNN.json` reduced to its trend fields.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchPoint {
    /// Source file name (`BENCH_0001.json`), the trend's x label.
    pub file: String,
    /// Suite the report ran.
    pub suite: String,
    /// `(scenario, wall_ms, sim_cycles)` per scenario, in report order.
    pub scenarios: Vec<(String, f64, u64)>,
}

/// Parses one bench report into a [`BenchPoint`] (schema-light: any JSON
/// with a `scenarios` array of `{name, wall_ms, sim_cycles}` works).
///
/// # Errors
///
/// Returns a message on malformed JSON or a missing field.
pub fn parse_bench(file: &str, text: &str) -> Result<BenchPoint, String> {
    let v = json::parse(text)?;
    let suite = v.get_str("suite")?.to_string();
    let mut scenarios = Vec::new();
    for item in v.get_arr("scenarios")? {
        scenarios.push((
            item.get_str("name")?.to_string(),
            item.get_num("wall_ms")?,
            item.get_num("sim_cycles")? as u64,
        ));
    }
    Ok(BenchPoint {
        file: file.to_string(),
        suite,
        scenarios,
    })
}

const CSS: &str = "\
body{font-family:system-ui,sans-serif;margin:2rem;max-width:72rem;color:#1a2733}\
h1{font-size:1.5rem}h2{font-size:1.15rem;margin-top:2rem;border-bottom:2px solid #d7e0e8;padding-bottom:.3rem}\
h3{font-size:1rem;margin-bottom:.3rem}\
table{border-collapse:collapse;margin:.7rem 0;font-size:.85rem}\
th,td{border:1px solid #c8d2dc;padding:.25rem .55rem;text-align:left}\
th{background:#eef3f7}\
td.num{text-align:right;font-variant-numeric:tabular-nums}\
td.ok{background:#e6f4e6}td.bad{background:#fae3e3}td.na{color:#8a97a3}\
.meta{color:#5a6b7a;font-size:.8rem}\
svg{background:#fbfcfe;border:1px solid #d7e0e8;margin:.4rem 0}\
.legend{font-size:.78rem;color:#5a6b7a}\
";

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// An SVG polyline over `(x, y)` samples, scaled into a `w`×`h` box with
/// the given y maximum (x is scaled to the sample span).
fn polyline(points: &[(u64, f64)], x_max: u64, y_max: f64, w: u32, h: u32, color: &str) -> String {
    if points.is_empty() {
        return String::new();
    }
    let xs = x_max.max(1) as f64;
    let ys = if y_max <= 0.0 { 1.0 } else { y_max };
    let coords: Vec<String> = points
        .iter()
        .map(|&(x, y)| {
            let px = (x as f64 / xs) * f64::from(w - 10) + 5.0;
            let py = f64::from(h - 8) - (y / ys) * f64::from(h - 16) + 4.0;
            format!("{px:.1},{py:.1}")
        })
        .collect();
    format!(
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\" points=\"{}\"/>",
        coords.join(" ")
    )
}

/// The per-run time-series panel: grants/window and wait p99 polylines
/// with fault/oracle marks as vertical rules.
fn series_chart(m: &RunManifest) -> String {
    let Some(series) = &m.series else {
        return String::new();
    };
    if series.rows.is_empty() {
        return String::new();
    }
    let (w, h) = (640u32, 140u32);
    let x_max = series
        .rows
        .last()
        .map(|r| r.start_cycle + series.window)
        .unwrap_or(1);
    let g_max = series.rows.iter().map(|r| r.grants).max().unwrap_or(1) as f64;
    let p_max = series.rows.iter().map(|r| r.wait_p99).max().unwrap_or(1) as f64;
    let grants: Vec<(u64, f64)> = series
        .rows
        .iter()
        .map(|r| (r.start_cycle + series.window / 2, r.grants as f64))
        .collect();
    let p99: Vec<(u64, f64)> = series
        .rows
        .iter()
        .map(|r| (r.start_cycle + series.window / 2, r.wait_p99 as f64))
        .collect();
    let mut marks = String::new();
    for r in &series.rows {
        if !r.marks.is_empty() {
            let px = (r.start_cycle as f64 / x_max.max(1) as f64) * f64::from(w - 10) + 5.0;
            let _ = write!(
                marks,
                "<line x1=\"{px:.1}\" y1=\"4\" x2=\"{px:.1}\" y2=\"{}\" stroke=\"#c0392b\" \
                 stroke-width=\"1\" stroke-dasharray=\"3,2\"><title>{}</title></line>",
                h - 4,
                esc(&r.marks)
            );
        }
    }
    format!(
        "<h3>{} / {} — time-series (window {} cycles)</h3>\
         <svg width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\" role=\"img\" \
         aria-label=\"per-window time series\">{}{}{marks}</svg>\
         <div class=\"legend\">blue: grants per window (max {g_max:.0}) &middot; \
         orange: wait p99 per window (max {p_max:.0} cycles) &middot; \
         dashed red: fault/oracle marks</div>",
        esc(&m.bin),
        esc(&m.label),
        series.window,
        polyline(&grants, x_max, g_max, w, h, "#2a6db0"),
        polyline(&p99, x_max, p_max, w, h, "#d07a28"),
    )
}

/// The tail-latency table: one row per (run, histogram).
fn tail_table(manifests: &[(String, RunManifest)]) -> String {
    let mut rows = String::new();
    for (_, m) in manifests {
        for h in &m.hists {
            let _ = write!(
                rows,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                esc(&m.bin),
                esc(&m.label),
                esc(&h.name),
                h.count,
                h.p50,
                h.p99,
                h.p999,
                h.p9999,
                h.max
            );
        }
    }
    if rows.is_empty() {
        return "<p class=\"meta\">No histogram data in the ledger.</p>".to_string();
    }
    format!(
        "<table><tr><th>bin</th><th>run</th><th>histogram</th><th>count</th>\
         <th>p50</th><th>p99</th><th>p99.9</th><th>p99.99</th><th>max</th></tr>{rows}</table>\
         <p class=\"meta\">Cycles; quantiles from mergeable log-bucketed sketches \
         (relative error &le; 1/32). p99.9 and beyond need enough samples to resolve: \
         with fewer than 1000 samples p99.9 equals the empirical maximum rank.</p>"
    )
}

/// The verdict matrix: every oracle/gate outcome across the ledger.
fn verdict_matrix(manifests: &[(String, RunManifest)]) -> String {
    let mut rows = String::new();
    for (_, m) in manifests {
        for v in &m.verdicts {
            let label = v.verdict.to_ascii_lowercase();
            let class = if label.contains("pass") || label == "none" || label.contains("ok") {
                "ok"
            } else if label.contains("n/a") || label.contains("skip") {
                "na"
            } else {
                "bad"
            };
            let _ = write!(
                rows,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"{class}\">{}</td></tr>",
                esc(&m.bin),
                esc(&m.label),
                esc(&v.name),
                esc(&v.verdict)
            );
        }
    }
    if rows.is_empty() {
        return "<p class=\"meta\">No verdicts in the ledger.</p>".to_string();
    }
    format!("<table><tr><th>bin</th><th>run</th><th>check</th><th>verdict</th></tr>{rows}</table>")
}

/// The bench trend: per-scenario wall-time across the baseline trajectory,
/// as a table plus a sparkline per scenario.
fn bench_trend(benches: &[BenchPoint]) -> String {
    if benches.is_empty() {
        return "<p class=\"meta\">No BENCH_*.json baselines found.</p>".to_string();
    }
    // Scenario universe in first-seen order across the trajectory.
    let mut names: Vec<&str> = Vec::new();
    for b in benches {
        for (n, _, _) in &b.scenarios {
            if !names.contains(&n.as_str()) {
                names.push(n);
            }
        }
    }
    let mut head = String::from("<tr><th>scenario</th>");
    for b in benches {
        let _ = write!(head, "<th>{} ({})</th>", esc(&b.file), esc(&b.suite));
    }
    head.push_str("<th>trend (wall ms)</th></tr>");
    let mut rows = String::new();
    for name in names {
        let mut cells = String::new();
        let mut points: Vec<(u64, f64)> = Vec::new();
        let mut y_max = 0.0f64;
        for (i, b) in benches.iter().enumerate() {
            match b.scenarios.iter().find(|(n, _, _)| n == name) {
                Some((_, wall, _)) => {
                    let _ = write!(cells, "<td class=\"num\">{wall:.1}</td>");
                    points.push((i as u64, *wall));
                    y_max = y_max.max(*wall);
                }
                None => cells.push_str("<td class=\"na\">-</td>"),
            }
        }
        let spark = format!(
            "<svg width=\"120\" height=\"26\" viewBox=\"0 0 120 26\">{}</svg>",
            polyline(
                &points,
                (benches.len().saturating_sub(1)).max(1) as u64,
                y_max,
                120,
                26,
                "#2a6db0"
            )
        );
        let _ = write!(
            rows,
            "<tr><td>{}</td>{cells}<td>{spark}</td></tr>",
            esc(name)
        );
    }
    format!(
        "<table>{head}{rows}</table>\
         <p class=\"meta\">Wall milliseconds per scenario across checked-in baselines \
         (host-dependent; the CI gate applies a tolerance). Simulated-cycle drift \
         between baselines marks intentional simulation changes.</p>"
    )
}

/// Renders the full dashboard. `manifests` must already be sorted by file
/// name and `benches` by file name — [`crate::manifest::read_manifests`]
/// and the CLI discovery guarantee that, keeping the output deterministic.
pub fn render_dashboard(manifests: &[(String, RunManifest)], benches: &[BenchPoint]) -> String {
    let mut charts = String::new();
    for (_, m) in manifests {
        charts.push_str(&series_chart(m));
    }
    if charts.is_empty() {
        charts = "<p class=\"meta\">No time-series data in the ledger (run bins with \
                  observability armed to collect it).</p>"
            .to_string();
    }
    let runs_line = format!(
        "{} manifest(s), {} bench baseline(s)",
        manifests.len(),
        benches.len()
    );
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
         <title>locksim experiment dashboard</title><style>{CSS}</style></head><body>\n\
         <h1>locksim experiment dashboard</h1>\n\
         <p class=\"meta\">{runs_line}. Generated by the <code>report</code> bin from \
         <code>results/runs/</code> manifests (<code>locksim-run-v1</code>); fully \
         self-contained, no scripts.</p>\n\
         <h2>Tail latency</h2>\n{}\n\
         <h2>Time series</h2>\n{}\n\
         <h2>Verdicts</h2>\n{}\n\
         <h2>Bench trajectory</h2>\n{}\n\
         </body></html>\n",
        tail_table(manifests),
        charts,
        verdict_matrix(manifests),
        bench_trend(benches)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{HistRow, SeriesOut, SeriesRow, Verdict};

    fn manifest() -> RunManifest {
        RunManifest {
            bin: "obs-fig9".to_string(),
            label: "lcu".to_string(),
            config: "threads=16".to_string(),
            seed: 42,
            end_cycle: 100_000,
            verdicts: vec![Verdict {
                name: "liveness".to_string(),
                verdict: "pass".to_string(),
            }],
            counters: vec![("locks_granted".to_string(), 64)],
            hists: vec![HistRow {
                name: "lock_wait_cycles".to_string(),
                count: 64,
                p50: 120,
                p95: 256,
                p99: 310,
                p999: 420,
                p9999: 420,
                max: 433,
            }],
            sketches: vec![(
                "lock_wait_cycles".to_string(),
                "qsketch-v1 k=5 count=1 min=7 max=7 buckets=7:1".to_string(),
            )],
            series: Some(SeriesOut {
                window: 25_000,
                rows: vec![
                    SeriesRow {
                        start_cycle: 0,
                        grants: 30,
                        wait_p50: 100,
                        wait_p99: 300,
                        wait_max: 400,
                        queue_peak: 5,
                        marks: String::new(),
                    },
                    SeriesRow {
                        start_cycle: 25_000,
                        grants: 34,
                        wait_p50: 110,
                        wait_p99: 310,
                        wait_max: 433,
                        queue_peak: 6,
                        marks: "fault/suspend:1".to_string(),
                    },
                ],
            }),
        }
    }

    fn bench(file: &str, wall: f64) -> BenchPoint {
        BenchPoint {
            file: file.to_string(),
            suite: "standard".to_string(),
            scenarios: vec![("micro/lcu/a16w100".to_string(), wall, 1_000_000)],
        }
    }

    #[test]
    fn dashboard_is_self_contained_and_deterministic() {
        let ms = vec![("a.json".to_string(), manifest())];
        let bs = vec![
            bench("BENCH_0001.json", 120.0),
            bench("BENCH_0002.json", 95.0),
        ];
        let html = render_dashboard(&ms, &bs);
        assert_eq!(html, render_dashboard(&ms, &bs));
        assert!(!html.contains("http://"), "no external references");
        assert!(!html.contains("https://"), "no external references");
        assert!(!html.contains("<script"), "no scripts");
        // The acceptance surfaces: tail rows, a series chart, verdicts, trend.
        assert!(html.contains("p99.9"));
        assert!(html.contains("lock_wait_cycles"));
        assert!(html.contains("<polyline"));
        assert!(html.contains("time-series"));
        assert!(html.contains("liveness"));
        assert!(html.contains("BENCH_0002.json"));
    }

    #[test]
    fn marks_render_as_dashed_rules() {
        let ms = vec![("a.json".to_string(), manifest())];
        let html = render_dashboard(&ms, &[]);
        assert!(html.contains("stroke-dasharray"), "mark rule present");
        assert!(html.contains("fault/suspend:1"));
    }

    #[test]
    fn empty_inputs_render_placeholders() {
        let html = render_dashboard(&[], &[]);
        assert!(html.contains("No histogram data"));
        assert!(html.contains("No time-series data"));
        assert!(html.contains("No verdicts"));
        assert!(html.contains("No BENCH_"));
    }

    #[test]
    fn bench_parse_reads_trend_fields() {
        let text = "{\"schema\": \"locksim-bench-v1\", \"suite\": \"standard\", \
                    \"alloc_counting\": true, \"scenarios\": [{\"name\": \"m/x\", \
                    \"wall_ms\": 12.5, \"sim_cycles\": 1000, \"events\": 5, \
                    \"events_per_sec\": 1, \"mcycles_per_sec\": 1, \"peak_queue\": 1, \
                    \"allocs\": 1, \"alloc_bytes\": 1, \"peak_bytes\": 1}]}";
        let b = parse_bench("BENCH_0001.json", text).unwrap();
        assert_eq!(b.scenarios, vec![("m/x".to_string(), 12.5, 1000)]);
    }

    #[test]
    fn html_escapes_hostile_labels() {
        let mut m = manifest();
        m.label = "<script>alert(1)</script>".to_string();
        let html = render_dashboard(&[("a.json".to_string(), m)], &[]);
        assert!(!html.contains("<script>alert"));
        assert!(html.contains("&lt;script&gt;"));
    }
}
