//! Minimal hand-rolled JSON reader and string escaping — the workspace
//! deliberately has no serde. Moved here from the harness's bench module
//! so every schema (bench reports, run manifests) shares one parser.
//!
//! The reader covers objects, arrays, strings (common escapes only),
//! numbers, booleans, and null; writers in this workspace emit keys in a
//! fixed order by hand so their output diffs cleanly.

/// A parsed JSON value. Object keys keep their input order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `{...}` — key/value pairs in input order.
    Obj(Vec<(String, Value)>),
    /// `[...]`.
    Arr(Vec<Value>),
    /// A string.
    Str(String),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// Field `key` of an object.
    ///
    /// # Errors
    ///
    /// Returns a message when `self` is not an object or the key is absent.
    pub fn get(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(kvs) => kvs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("not an object while reading {key:?}")),
        }
    }

    /// Field `key`, or `None` when absent (still an error on non-objects).
    pub fn get_opt(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(kvs) => kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String field `key`.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or not a string.
    pub fn get_str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            Value::Str(s) => Ok(s),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    /// Numeric field `key`.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or not a number.
    pub fn get_num(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            Value::Num(n) => Ok(*n),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    /// Boolean field `key`.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or not a boolean.
    pub fn get_bool(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("field {key:?} is not a bool: {other:?}")),
        }
    }

    /// Array field `key`.
    ///
    /// # Errors
    ///
    /// Returns a message when absent or not an array.
    pub fn get_arr(&self, key: &str) -> Result<&[Value], String> {
        match self.get(key)? {
            Value::Arr(xs) => Ok(xs),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses `text` as a single JSON value (trailing content is an error).
///
/// # Errors
///
/// Returns a byte-positioned message on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? != c {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                c as char, self.i, self.b[self.i] as char
            ));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'n' => self.lit("null", Value::Null),
            _ => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut kvs = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Value::Obj(kvs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.expect(b':')?;
            kvs.push((k, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Value::Obj(kvs));
                }
                c => return Err(format!("expected ',' or '}}' , found {:?}", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            xs.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Value::Arr(xs));
                }
                c => return Err(format!("expected ',' or ']', found {:?}", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    out.push(match e {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    });
                }
                c => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get_arr("a").unwrap().len(), 3);
        assert!(v.get("b").unwrap().get_bool("c").unwrap());
        assert_eq!(v.get("b").unwrap().get("d").unwrap(), &Value::Null);
        assert!(v.get_opt("zzz").is_none());
    }

    #[test]
    fn rejects_trailing_and_malformed() {
        assert!(parse("{} garbage").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te";
        let text = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&text).unwrap();
        assert_eq!(v.get_str("k").unwrap(), nasty);
    }
}
