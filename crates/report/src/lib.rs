//! Cross-run experiment ledger and dashboard builder for locksim.
//!
//! Three pieces:
//! - [`json`]: the workspace's shared hand-rolled JSON reader (no serde
//!   anywhere in the tree).
//! - [`manifest`]: the `locksim-run-v1` schema — one JSON file per
//!   measured run, all fields simulation-derived so identical runs are
//!   byte-identical.
//! - [`dashboard`]: folds a directory of manifests plus the checked-in
//!   `BENCH_*.json` trajectory into one self-contained HTML page
//!   (tail-latency tables, per-window time-series charts, verdict matrix,
//!   bench trend lines).
//!
//! The `report` bin (root package shim) drives it:
//! `report [--runs results/runs] [--out results/dashboard.html]
//! [--bench-dir .]`.

pub mod dashboard;
pub mod json;
pub mod manifest;

pub use dashboard::{parse_bench, render_dashboard, BenchPoint};
pub use manifest::{
    read_manifests, write_manifest, HistRow, RunManifest, SeriesOut, SeriesRow, Verdict,
};

use std::path::{Path, PathBuf};

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: report [--runs <dir>] [--out <path>] [--bench-dir <dir>]\n\
         \n\
         Aggregates locksim-run-v1 manifests (default results/runs/) and any\n\
         BENCH_*.json baselines (default: current directory) into one\n\
         self-contained HTML dashboard (default results/dashboard.html)."
    );
    std::process::exit(2);
}

/// Discovers `BENCH_*.json` files directly in `dir`, sorted by file name
/// (the `NNNN` zero-padding makes that chronological).
pub fn discover_benches(dir: &Path) -> Vec<PathBuf> {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name().is_some_and(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("BENCH_") && n.ends_with(".json")
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    found.sort();
    found
}

/// Builds the dashboard from a ledger directory and a baseline directory;
/// returns the HTML.
pub fn build_dashboard(runs_dir: &Path, bench_dir: &Path) -> String {
    let manifests = read_manifests(runs_dir);
    let mut benches = Vec::new();
    for p in discover_benches(bench_dir) {
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        match std::fs::read_to_string(&p).map_err(|e| e.to_string()) {
            Ok(text) => match parse_bench(&name, &text) {
                Ok(b) => benches.push(b),
                Err(e) => eprintln!("report: skipping {}: {e}", p.display()),
            },
            Err(e) => eprintln!("report: skipping {}: {e}", p.display()),
        }
    }
    render_dashboard(&manifests, &benches)
}

/// Entry point of the `report` bin (shared by the root-package shim).
pub fn cli_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut runs = PathBuf::from("results/runs");
    let mut out = PathBuf::from("results/dashboard.html");
    let mut bench_dir = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> PathBuf {
            it.next()
                .map(PathBuf::from)
                .unwrap_or_else(|| usage_exit(&format!("{name} requires a value")))
        };
        match a.as_str() {
            "--runs" => runs = take("--runs"),
            "--out" => out = take("--out"),
            "--bench-dir" => bench_dir = take("--bench-dir"),
            other => usage_exit(&format!("unknown argument {other:?}")),
        }
    }
    let html = build_dashboard(&runs, &bench_dir);
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create dashboard output dir");
    }
    std::fs::write(&out, &html)
        .unwrap_or_else(|e| panic!("write dashboard {}: {e}", out.display()));
    eprintln!(
        "report: wrote {} ({} bytes) from {} and {}",
        out.display(),
        html.len(),
        runs.display(),
        bench_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_benches_sorts_and_filters() {
        let dir = std::env::temp_dir().join(format!("locksim-report-disc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for n in [
            "BENCH_0002.json",
            "BENCH_0001.json",
            "other.json",
            "BENCH_x.txt",
        ] {
            std::fs::write(dir.join(n), "{}").unwrap();
        }
        let got: Vec<String> = discover_benches(&dir)
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(got, vec!["BENCH_0001.json", "BENCH_0002.json"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn build_dashboard_handles_missing_dirs() {
        let html = build_dashboard(Path::new("/nonexistent/a"), Path::new("/nonexistent/b"));
        assert!(html.contains("dashboard"));
    }
}
