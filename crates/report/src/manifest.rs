//! The cross-run experiment ledger: `locksim-run-v1` manifests.
//!
//! Every harness bin writes one manifest per measured run into
//! `results/runs/`. A manifest is a self-describing JSON record of what
//! ran (bin, label, config, seed), what the oracles said (verdicts), and
//! what was measured (counters, histogram tail summaries, the serialized
//! quantile sketches behind them, and the windowed time-series). All
//! fields are simulation-derived — no wall times, no timestamps — so two
//! identical runs produce byte-identical manifests, and CI diffs them as a
//! determinism gate. The `report` bin aggregates a directory of manifests
//! into the HTML dashboard.

use std::path::{Path, PathBuf};

use locksim_trace::metrics::MetricsSnapshot;
use locksim_trace::series::SeriesSnapshot;

use crate::json::{self, escape, Value};

/// Schema tag written to (and required of) every manifest.
pub const SCHEMA: &str = "locksim-run-v1";

/// One named oracle/gate outcome, e.g. `("liveness", "pass")`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// What was judged (oracle or gate name).
    pub name: String,
    /// The outcome label (`pass`, `fail`, `LIVENESS`, ...).
    pub verdict: String,
}

/// Tail summary of one histogram, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRow {
    /// Histogram name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile (coarse-histogram bucket).
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
    /// Largest sample.
    pub max: u64,
}

/// One time-series window, as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRow {
    /// First cycle covered.
    pub start_cycle: u64,
    /// Grants completed in the window.
    pub grants: u64,
    /// Median wait of those grants.
    pub wait_p50: u64,
    /// 99th-percentile wait.
    pub wait_p99: u64,
    /// Worst wait.
    pub wait_max: u64,
    /// Queue-depth waterline.
    pub queue_peak: u64,
    /// `kind:count` marks joined with `;` (empty when none).
    pub marks: String,
}

/// The recorded time-series: final window width plus windows in time order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesOut {
    /// Window width in cycles.
    pub window: u64,
    /// Windows in start-cycle order.
    pub rows: Vec<SeriesRow>,
}

/// One run's ledger entry. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Which bin produced the run (`obs-fig9`, `faultsim`, ...).
    pub bin: String,
    /// The run's label within the bin (backend name, matrix cell, ...).
    pub label: String,
    /// Free-form config description (`threads=16 write_pct=100`).
    pub config: String,
    /// Workload seed.
    pub seed: u64,
    /// Simulated cycle the run ended at.
    pub end_cycle: u64,
    /// Oracle/gate outcomes (empty for plain measurement runs).
    pub verdicts: Vec<Verdict>,
    /// End-of-run counters, in name order.
    pub counters: Vec<(String, u64)>,
    /// Histogram tail summaries, in name order.
    pub hists: Vec<HistRow>,
    /// `(name, qsketch-v1 text)` per histogram, in name order.
    pub sketches: Vec<(String, String)>,
    /// The windowed time-series, when collection was enabled.
    pub series: Option<SeriesOut>,
}

impl RunManifest {
    /// Builds a manifest from a run's end-of-run snapshot and (optional)
    /// time-series export.
    #[allow(clippy::too_many_arguments)] // the manifest's full identity tuple
    pub fn from_snapshot(
        bin: &str,
        label: &str,
        config: &str,
        seed: u64,
        end_cycle: u64,
        verdicts: Vec<Verdict>,
        snap: &MetricsSnapshot,
        series: Option<&SeriesSnapshot>,
    ) -> RunManifest {
        RunManifest {
            bin: bin.to_string(),
            label: label.to_string(),
            config: config.to_string(),
            seed,
            end_cycle,
            verdicts,
            counters: snap
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            hists: snap
                .hists
                .iter()
                .map(|h| HistRow {
                    name: h.name.to_string(),
                    count: h.count,
                    p50: h.p50,
                    p95: h.p95,
                    p99: h.p99,
                    p999: h.p999,
                    p9999: h.p9999,
                    max: h.max,
                })
                .collect(),
            sketches: snap.sketches.clone(),
            series: series.filter(|s| !s.is_empty()).map(|s| SeriesOut {
                window: s.window,
                rows: s
                    .rows
                    .iter()
                    .map(|r| SeriesRow {
                        start_cycle: r.start_cycle,
                        grants: r.grants,
                        wait_p50: r.wait_p50,
                        wait_p99: r.wait_p99,
                        wait_max: r.wait_max,
                        queue_peak: r.queue_peak,
                        marks: r
                            .marks
                            .iter()
                            .map(|(k, v)| format!("{k}:{v}"))
                            .collect::<Vec<_>>()
                            .join(";"),
                    })
                    .collect(),
            }),
        }
    }

    /// Serializes in a fixed key order, so manifests diff cleanly and two
    /// identical runs produce byte-identical files.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        s.push_str(&format!("  \"bin\": \"{}\",\n", escape(&self.bin)));
        s.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        s.push_str(&format!("  \"config\": \"{}\",\n", escape(&self.config)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"end_cycle\": {},\n", self.end_cycle));
        s.push_str("  \"verdicts\": [\n");
        for (i, v) in self.verdicts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"verdict\": \"{}\"}}{}\n",
                escape(&v.name),
                escape(&v.verdict),
                comma(i, self.verdicts.len())
            ));
        }
        s.push_str("  ],\n  \"counters\": [\n");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {v}}}{}\n",
                escape(k),
                comma(i, self.counters.len())
            ));
        }
        s.push_str("  ],\n  \"hists\": [\n");
        for (i, h) in self.hists.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"p999\": {}, \"p9999\": {}, \"max\": {}}}{}\n",
                escape(&h.name),
                h.count,
                h.p50,
                h.p95,
                h.p99,
                h.p999,
                h.p9999,
                h.max,
                comma(i, self.hists.len())
            ));
        }
        s.push_str("  ],\n  \"sketches\": [\n");
        for (i, (name, text)) in self.sketches.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"text\": \"{}\"}}{}\n",
                escape(name),
                escape(text),
                comma(i, self.sketches.len())
            ));
        }
        s.push_str("  ],\n");
        match &self.series {
            None => s.push_str("  \"series\": null\n"),
            Some(sr) => {
                s.push_str(&format!(
                    "  \"series\": {{\"window\": {}, \"rows\": [\n",
                    sr.window
                ));
                for (i, r) in sr.rows.iter().enumerate() {
                    s.push_str(&format!(
                        "    {{\"start_cycle\": {}, \"grants\": {}, \"wait_p50\": {}, \
                         \"wait_p99\": {}, \"wait_max\": {}, \"queue_peak\": {}, \
                         \"marks\": \"{}\"}}{}\n",
                        r.start_cycle,
                        r.grants,
                        r.wait_p50,
                        r.wait_p99,
                        r.wait_max,
                        r.queue_peak,
                        escape(&r.marks),
                        comma(i, sr.rows.len())
                    ));
                }
                s.push_str("  ]}\n");
            }
        }
        s.push_str("}\n");
        s
    }

    /// Parses a manifest produced by [`RunManifest::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a wrong `schema` tag, or a
    /// missing required field.
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        let v = json::parse(text)?;
        let schema = v.get_str("schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (expected {SCHEMA:?})"
            ));
        }
        let num = |x: &Value, k: &str| -> Result<u64, String> { Ok(x.get_num(k)? as u64) };
        let mut verdicts = Vec::new();
        for item in v.get_arr("verdicts")? {
            verdicts.push(Verdict {
                name: item.get_str("name")?.to_string(),
                verdict: item.get_str("verdict")?.to_string(),
            });
        }
        let mut counters = Vec::new();
        for item in v.get_arr("counters")? {
            counters.push((item.get_str("name")?.to_string(), num(item, "value")?));
        }
        let mut hists = Vec::new();
        for item in v.get_arr("hists")? {
            hists.push(HistRow {
                name: item.get_str("name")?.to_string(),
                count: num(item, "count")?,
                p50: num(item, "p50")?,
                p95: num(item, "p95")?,
                p99: num(item, "p99")?,
                p999: num(item, "p999")?,
                p9999: num(item, "p9999")?,
                max: num(item, "max")?,
            });
        }
        let mut sketches = Vec::new();
        for item in v.get_arr("sketches")? {
            sketches.push((
                item.get_str("name")?.to_string(),
                item.get_str("text")?.to_string(),
            ));
        }
        let series = match v.get("series")? {
            Value::Null => None,
            sv => {
                let mut rows = Vec::new();
                for item in sv.get_arr("rows")? {
                    rows.push(SeriesRow {
                        start_cycle: num(item, "start_cycle")?,
                        grants: num(item, "grants")?,
                        wait_p50: num(item, "wait_p50")?,
                        wait_p99: num(item, "wait_p99")?,
                        wait_max: num(item, "wait_max")?,
                        queue_peak: num(item, "queue_peak")?,
                        marks: item.get_str("marks")?.to_string(),
                    });
                }
                Some(SeriesOut {
                    window: num(sv, "window")?,
                    rows,
                })
            }
        };
        Ok(RunManifest {
            bin: v.get_str("bin")?.to_string(),
            label: v.get_str("label")?.to_string(),
            config: v.get_str("config")?.to_string(),
            seed: num(&v, "seed")?,
            end_cycle: num(&v, "end_cycle")?,
            verdicts,
            counters,
            hists,
            sketches,
            series,
        })
    }

    /// The manifest's canonical file name within a ledger directory:
    /// `<bin>__<label>.json` with path-hostile characters flattened.
    pub fn file_name(&self) -> String {
        format!("{}__{}.json", sanitize(&self.bin), sanitize(&self.label))
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Flattens a bin/label into a file-name-safe slug.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Writes `m` into `dir` (created if missing) under its canonical name.
///
/// # Errors
///
/// Propagates directory-creation and file-write errors.
pub fn write_manifest(dir: &Path, m: &RunManifest) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(m.file_name());
    std::fs::write(&path, m.to_json())?;
    Ok(path)
}

/// Reads every `*.json` manifest in `dir`, sorted by file name. Files that
/// fail to parse as `locksim-run-v1` are skipped with a note to stderr
/// (the ledger directory may hold other artifacts).
pub fn read_manifests(dir: &Path) -> Vec<(String, RunManifest)> {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    let mut out = Vec::new();
    for p in names {
        let Ok(text) = std::fs::read_to_string(&p) else {
            continue;
        };
        match RunManifest::from_json(&text) {
            Ok(m) => out.push((p.file_name().unwrap().to_string_lossy().into_owned(), m)),
            Err(e) => eprintln!("report: skipping {}: {e}", p.display()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use locksim_trace::MetricsRegistry;

    fn sample() -> RunManifest {
        let mut reg = MetricsRegistry::new();
        reg.incr("locks_granted");
        reg.add("evq_events", 100);
        for v in [10u64, 20, 30, 4000] {
            reg.observe("lock_wait_cycles", v);
        }
        let snap = reg.snapshot([]);
        let mut sc = locksim_trace::SeriesCollector::new();
        sc.enable(100);
        sc.on_grant(10, 5);
        sc.on_grant(150, 7);
        sc.mark(150, "fault/suspend");
        let series = sc.snapshot();
        RunManifest::from_snapshot(
            "obs-fig9",
            "lcu",
            "threads=16 write_pct=100",
            42,
            9_999,
            vec![Verdict {
                name: "liveness".to_string(),
                verdict: "pass".to_string(),
            }],
            &snap,
            Some(&series),
        )
    }

    #[test]
    fn roundtrips_and_is_deterministic() {
        let m = sample();
        let text = m.to_json();
        assert_eq!(text, sample().to_json(), "same inputs, same bytes");
        let parsed = RunManifest::from_json(&text).unwrap();
        assert_eq!(parsed.bin, "obs-fig9");
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.end_cycle, 9_999);
        assert_eq!(parsed.verdicts.len(), 1);
        assert_eq!(parsed.hists.len(), 1);
        assert_eq!(parsed.hists[0].max, 4000);
        assert_eq!(parsed.sketches.len(), 1);
        let series = parsed.series.as_ref().unwrap();
        assert_eq!(series.rows.len(), 2);
        assert_eq!(series.rows[1].marks, "fault/suspend:1");
        // The embedded sketch text is still a parseable sketch.
        let sk = locksim_trace::QuantileSketch::from_text(&parsed.sketches[0].1).unwrap();
        assert_eq!(sk.count(), 4);
        // Full structural round-trip.
        assert_eq!(RunManifest::from_json(&parsed.to_json()).unwrap(), parsed);
    }

    #[test]
    fn empty_series_is_omitted() {
        let reg = MetricsRegistry::new();
        let snap = reg.snapshot([]);
        let empty = locksim_trace::SeriesCollector::new().snapshot();
        let m = RunManifest::from_snapshot("x", "y", "", 1, 2, vec![], &snap, Some(&empty));
        assert!(m.series.is_none());
        assert!(m.to_json().contains("\"series\": null"));
    }

    #[test]
    fn rejects_wrong_schema() {
        assert!(RunManifest::from_json("{\"schema\": \"other\"}").is_err());
        assert!(RunManifest::from_json("nope").is_err());
    }

    #[test]
    fn file_names_are_path_safe() {
        let mut m = sample();
        m.bin = "obs/fig9".to_string();
        m.label = "lcu+flt w=100%".to_string();
        assert_eq!(m.file_name(), "obs-fig9__lcu-flt-w-100-.json");
    }

    #[test]
    fn write_and_read_back() {
        let dir =
            std::env::temp_dir().join(format!("locksim-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = sample();
        write_manifest(&dir, &m).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a manifest").unwrap();
        std::fs::write(dir.join("junk.json"), "{}").unwrap();
        let got = read_manifests(&dir);
        assert_eq!(got.len(), 1, "non-manifest files are skipped");
        assert_eq!(got[0].1, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
