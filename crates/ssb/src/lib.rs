//! The **Synchronization State Buffer (SSB)** baseline — the hardware
//! fine-grain locking mechanism of Zhu et al. (ISCA 2007), as modelled by
//! the paper's evaluation.
//!
//! Each memory controller hosts an SSB bank: a bounded table of
//! `(address → lock state)` entries allocated on demand. All lock
//! operations are **remote**: the requesting core sends a message to the
//! address's home bank, which grants or denies atomically and replies.
//! Denied requestors retry from software after a backoff — there is no
//! queue, no local spinning, and no fairness:
//!
//! * reader-preference reader-writer semantics (readers are granted while
//!   the lock is in read mode even with writers waiting, which can starve
//!   writers — the unfairness the paper contrasts the LCU against);
//! * every transfer costs at least a round trip to the home controller
//!   (the ~30% lock-transfer gap of Figure 9a);
//! * contended locks generate repeated remote retries, which saturate the
//!   inter-chip hub links of Model B (the collapse of Figure 9b).
//!
//! # Example
//!
//! ```
//! use locksim_machine::{testing::ScriptProgram, Action, MachineConfig, Mode, World};
//! use locksim_ssb::SsbBackend;
//!
//! let mut w = World::new(MachineConfig::model_a(4), Box::new(SsbBackend::new()), 1);
//! let lock = w.mach().alloc().alloc_line();
//! w.spawn(Box::new(ScriptProgram::new(vec![
//!     Action::Acquire { lock, mode: Mode::Write, try_for: None },
//!     Action::Compute(100),
//!     Action::Release { lock, mode: Mode::Write },
//! ])));
//! w.run_to_completion();
//! ```

use std::collections::HashMap;

use locksim_engine::stats::Counters;
use locksim_engine::{Cycles, Time};
use locksim_machine::{Addr, Checker, Ep, LockBackend, Mach, Mode, ThreadId, WirePayload};
use locksim_topo::MsgClass;

/// SSB entries per bank (Zhu et al. size their SSB in the hundreds; the
/// paper's evaluation does not stress SSB capacity).
const SSB_ENTRIES: usize = 512;

/// State of one SSB lock entry.
#[derive(Debug, Clone, PartialEq, Eq)]
enum SsbState {
    /// Held exclusively by one thread.
    Write(ThreadId),
    /// Held by `n` readers.
    Read(u32),
}

#[derive(Debug, Clone, Copy)]
enum SsbMsg {
    /// Core → bank: request.
    Req {
        addr: Addr,
        tid: ThreadId,
        mode: Mode,
        core: usize,
    },
    /// Core → bank: release.
    Rel {
        addr: Addr,
        tid: ThreadId,
        mode: Mode,
        core: usize,
        /// Release of an orphaned grant (no thread waits for the ack).
        orphan: bool,
    },
    /// Bank → core: grant.
    Grant {
        addr: Addr,
        tid: ThreadId,
        mode: Mode,
    },
    /// Bank → core: denied (retry from software).
    Deny { addr: Addr, tid: ThreadId },
    /// Bank → core: release acknowledged.
    RelAck { tid: ThreadId, orphan: bool },
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    addr: Addr,
    mode: Mode,
    /// Absolute deadline for a trylock, if any.
    deadline: Option<Time>,
}

/// The SSB lock backend. See the crate docs.
#[derive(Debug, Default)]
pub struct SsbBackend {
    banks: Vec<HashMap<Addr, SsbState>>,
    pending: HashMap<ThreadId, Pending>,
    retry_timers: HashMap<u64, ThreadId>,
    timer_seq: u64,
    counters: Counters,
    checker: Checker,
}

impl SsbBackend {
    /// Creates the backend; banks are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_init(&mut self, m: &Mach) {
        if self.banks.is_empty() {
            self.banks = (0..m.n_mems()).map(|_| HashMap::new()).collect();
        }
    }

    fn send_req(&mut self, m: &mut Mach, t: ThreadId) {
        let Some(p) = self.pending.get(&t).copied() else {
            return;
        };
        let Some(core) = m.core_of(t) else {
            // Preempted: try again next backoff window.
            self.arm_retry(m, t);
            return;
        };
        let core = core.0 as usize;
        let home = m.home_of(p.addr);
        self.counters.incr("ssb_requests");
        let msg = SsbMsg::Req {
            addr: p.addr,
            tid: t,
            mode: p.mode,
            core,
        };
        m.send_wire(Ep::Core(core), Ep::Mem(home), MsgClass::Control, 0, msg);
    }

    fn arm_retry(&mut self, m: &mut Mach, t: ThreadId) {
        let token = self.timer_seq;
        self.timer_seq += 1;
        self.retry_timers.insert(token, t);
        m.set_timer(m.cfg().ssb_retry_backoff, token);
    }

    fn bank_handle(&mut self, m: &mut Mach, msg: SsbMsg) {
        match msg {
            SsbMsg::Req {
                addr,
                tid,
                mode,
                core,
            } => {
                let home = m.home_of(addr);
                let bank = &mut self.banks[home];
                let granted = match (bank.get_mut(&addr), mode) {
                    (None, _) => {
                        if bank.len() >= SSB_ENTRIES {
                            // Table full: deny; the requestor's software
                            // retry loop stands in for the SSB's software
                            // fallback path.
                            self.counters.incr("ssb_overflow_denials");
                            false
                        } else {
                            bank.insert(
                                addr,
                                match mode {
                                    Mode::Write => SsbState::Write(tid),
                                    Mode::Read => SsbState::Read(1),
                                },
                            );
                            true
                        }
                    }
                    (Some(SsbState::Read(n)), Mode::Read) => {
                        // Reader preference: join the read session even if
                        // writers are retrying (they starve).
                        *n += 1;
                        true
                    }
                    _ => false,
                };
                let reply = if granted {
                    self.counters.incr("ssb_grants");
                    m.trace_entry_state(
                        Ep::Mem(home),
                        addr,
                        match mode {
                            Mode::Write => "SsbWrite",
                            Mode::Read => "SsbRead",
                        },
                    );
                    SsbMsg::Grant { addr, tid, mode }
                } else {
                    self.counters.incr("ssb_denials");
                    SsbMsg::Deny { addr, tid }
                };
                let lat = m.cfg().lrt_latency;
                m.send_wire(Ep::Mem(home), Ep::Core(core), MsgClass::Control, lat, reply);
            }
            SsbMsg::Rel {
                addr,
                tid,
                mode,
                core,
                orphan,
            } => {
                let home = m.home_of(addr);
                let bank = &mut self.banks[home];
                match (bank.get_mut(&addr), mode) {
                    (Some(SsbState::Write(owner)), Mode::Write) => {
                        debug_assert_eq!(*owner, tid, "SSB write release by non-owner");
                        bank.remove(&addr);
                    }
                    (Some(SsbState::Read(n)), Mode::Read) => {
                        *n -= 1;
                        if *n == 0 {
                            bank.remove(&addr);
                        }
                    }
                    (st, _) => panic!("SSB release of {addr} in state {st:?}"),
                }
                if !bank.contains_key(&addr) {
                    m.trace_entry_state(Ep::Mem(home), addr, "SsbFree");
                }
                let lat = m.cfg().lrt_latency;
                let reply = SsbMsg::RelAck { tid, orphan };
                m.send_wire(Ep::Mem(home), Ep::Core(core), MsgClass::Control, lat, reply);
            }
            _ => unreachable!("bank only receives Req/Rel"),
        }
    }
}

impl LockBackend for SsbBackend {
    fn name(&self) -> &'static str {
        "ssb"
    }

    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        mode: Mode,
        try_for: Option<Cycles>,
    ) {
        self.ensure_init(m);
        assert!(!self.pending.contains_key(&t), "{t:?} already acquiring");
        let deadline = try_for.map(|b| m.now() + b);
        self.pending.insert(
            t,
            Pending {
                addr: lock,
                mode,
                deadline,
            },
        );
        self.send_req(m, t);
    }

    fn on_release(&mut self, m: &mut Mach, t: ThreadId, lock: Addr, mode: Mode) {
        self.ensure_init(m);
        self.checker
            .on_release_traced(lock, t, mode, m.tracer(), m.lockstat());
        let core = m.core_of(t).expect("release from scheduled thread").0 as usize;
        let home = m.home_of(lock);
        self.counters.incr("ssb_releases");
        let msg = SsbMsg::Rel {
            addr: lock,
            tid: t,
            mode,
            core,
            orphan: false,
        };
        m.send_wire(Ep::Core(core), Ep::Mem(home), MsgClass::Control, 0, msg);
    }

    fn on_wire(&mut self, m: &mut Mach, payload: WirePayload) {
        self.ensure_init(m);
        let msg = payload.downcast::<SsbMsg>().expect("unknown SSB payload");
        match msg {
            SsbMsg::Req { .. } | SsbMsg::Rel { .. } => self.bank_handle(m, msg),
            SsbMsg::Grant { addr, tid, mode } => {
                let wants = self.pending.get(&tid).is_some_and(|p| p.addr == addr);
                if !wants {
                    // Trylock expired while the grant was in flight: give
                    // the lock straight back.
                    self.counters.incr("ssb_orphan_grants");
                    let home = m.home_of(addr);
                    // The ack will go to whatever core; nobody waits on it.
                    let core = m.core_of(tid).map(|c| c.0 as usize).unwrap_or(0);
                    let rel = SsbMsg::Rel {
                        addr,
                        tid,
                        mode,
                        core,
                        orphan: true,
                    };
                    m.send_wire(Ep::Core(core), Ep::Mem(home), MsgClass::Control, 0, rel);
                    return;
                }
                let p = self.pending.remove(&tid).expect("checked");
                self.checker
                    .on_grant_traced(p.addr, tid, p.mode, m.tracer(), m.lockstat());
                m.grant_lock(tid);
            }
            SsbMsg::Deny { addr, tid } => {
                let Some(p) = self.pending.get(&tid).copied() else {
                    return;
                };
                debug_assert_eq!(p.addr, addr);
                if let Some(deadline) = p.deadline {
                    if m.now() >= deadline {
                        self.pending.remove(&tid);
                        self.counters.incr("ssb_try_expires");
                        m.fail_lock(tid);
                        return;
                    }
                }
                self.counters.incr("ssb_retries");
                m.lockstat_bump(addr, "ssb_remote_retries");
                self.arm_retry(m, tid);
            }
            SsbMsg::RelAck { tid, orphan } => {
                if !orphan {
                    m.complete_release(tid);
                }
            }
        }
    }

    fn on_timer(&mut self, m: &mut Mach, token: u64) {
        let Some(t) = self.retry_timers.remove(&token) else {
            return;
        };
        if self.pending.contains_key(&t) {
            self.send_req(m, t);
        }
    }

    fn on_thread_descheduled(&mut self, m: &mut Mach, t: ThreadId) {
        // The SSB keeps retrying from the bank side regardless, but an
        // off-core requester cannot take a grant; count the exposure for
        // fault attribution.
        if let Some(p) = self.pending.get(&t) {
            let addr = p.addr;
            self.counters.incr("ssb_descheduled_midop");
            m.lockstat_bump(addr, "ssb_descheduled_midop");
        }
    }

    fn counters(&self) -> Counters {
        self.counters.clone()
    }
}
