//! End-to-end SSB baseline tests.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_machine::testing::{FnProgram, ScriptProgram};
use locksim_machine::{Action, Addr, Ctx, MachineConfig, Mode, Outcome, Program, World};
use locksim_ssb::SsbBackend;

struct CsLoop {
    lock: Addr,
    counter: Addr,
    iters: u32,
    write: bool,
    i: u32,
    stage: u8,
    val: u64,
}

impl CsLoop {
    fn new(lock: Addr, counter: Addr, iters: u32, write: bool) -> Self {
        CsLoop {
            lock,
            counter,
            iters,
            write,
            i: 0,
            stage: 0,
            val: 0,
        }
    }
}

impl Program for CsLoop {
    fn resume(&mut self, _ctx: &mut Ctx<'_>, outcome: Outcome) -> Action {
        loop {
            match self.stage {
                0 => {
                    if self.i == self.iters {
                        return Action::Done;
                    }
                    self.stage = 1;
                    let mode = if self.write { Mode::Write } else { Mode::Read };
                    return Action::Acquire {
                        lock: self.lock,
                        mode,
                        try_for: None,
                    };
                }
                1 => {
                    self.stage = 2;
                    return Action::Read(self.counter);
                }
                2 => {
                    let Outcome::Value(v) = outcome else { panic!() };
                    self.val = v;
                    self.stage = 3;
                    return Action::Compute(50);
                }
                3 => {
                    self.stage = 4;
                    if self.write {
                        return Action::Write(self.counter, self.val + 1);
                    }
                    continue;
                }
                4 => {
                    self.stage = 5;
                    let mode = if self.write { Mode::Write } else { Mode::Read };
                    return Action::Release {
                        lock: self.lock,
                        mode,
                    };
                }
                5 => {
                    self.i += 1;
                    self.stage = 0;
                    return Action::Compute(100);
                }
                _ => unreachable!(),
            }
        }
    }
}

fn world(chips: usize, seed: u64) -> World {
    World::new(
        MachineConfig::model_a(chips),
        Box::new(SsbBackend::new()),
        seed,
    )
}

#[test]
fn mutual_exclusion_counter() {
    let mut w = world(8, 1);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 20, true)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 8 * 20);
}

#[test]
fn readers_share() {
    let mut w = world(8, 2);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(30_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    assert!(w.mach().now().cycles() < 2 * 30_000);
}

#[test]
fn contended_lock_generates_remote_retries() {
    let mut w = world(8, 3);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 10, true)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert!(c.get("ssb_retries") > 50, "expected heavy retrying: {c:?}");
    // Far more requests than grants: the no-queue cost.
    assert!(c.get("ssb_requests") > c.get("ssb_grants") * 2);
}

#[test]
fn trylock_expires() {
    let mut w = world(4, 4);
    let lock = w.mach().alloc().alloc_line();
    let result = Rc::new(RefCell::new(None));
    let r2 = result.clone();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(60_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    let mut stage = 0;
    w.spawn(Box::new(FnProgram(
        move |_: &mut Ctx<'_>, outcome: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(2_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: Some(5_000),
                },
                3 => {
                    *r2.borrow_mut() = Some(outcome);
                    Action::Done
                }
                _ => Action::Done,
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*result.borrow(), Some(Outcome::Failed));
}

#[test]
fn reader_preference_can_starve_writers_temporarily() {
    // Overlapping readers keep the lock in read mode; the writer's grant
    // only happens after a window where no reader holds it. With staggered
    // long readers, the writer needs far longer than its request latency.
    let mut w = world(8, 5);
    let lock = w.mach().alloc().alloc_line();
    let writer_granted = Rc::new(RefCell::new(None));
    for i in 0..4u64 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Compute(1 + i * 4_000),
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(20_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    let wg = writer_granted.clone();
    let mut stage = 0;
    w.spawn(Box::new(FnProgram(move |ctx: &mut Ctx<'_>, _: Outcome| {
        stage += 1;
        match stage {
            1 => Action::Compute(2_000),
            2 => Action::Acquire {
                lock,
                mode: Mode::Write,
                try_for: None,
            },
            3 => {
                *wg.borrow_mut() = Some(ctx.now.cycles());
                Action::Release {
                    lock,
                    mode: Mode::Write,
                }
            }
            _ => Action::Done,
        }
    })));
    w.run_to_completion();
    let granted_at = writer_granted.borrow().expect("writer finished");
    // The writer requested at ~2k but readers held (in overlapping
    // sessions) until the last one released.
    assert!(granted_at > 15_000, "writer got in at {granted_at}");
}

#[test]
fn determinism() {
    let run = || {
        let mut w = world(8, 6);
        let lock = w.mach().alloc().alloc_line();
        let counter = w.mach().alloc().alloc_line();
        for i in 0..8 {
            w.spawn(Box::new(CsLoop::new(lock, counter, 8, i % 2 == 0)));
        }
        w.run_to_completion();
        w.mach().now().cycles()
    };
    assert_eq!(run(), run());
}

#[test]
fn model_b_works() {
    let mut w = World::new(MachineConfig::model_b(), Box::new(SsbBackend::new()), 7);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..16 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 6, true)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 16 * 6);
}
