//! The transactional workload driver: an object-based STM in the style of
//! Fraser's OSTM, with two commit protocols.
//!
//! * [`StmKind::LockBased`] — the paper's *sw-only/LCU* variant: **visible
//!   readers**. At commit the transaction acquires read locks on its read
//!   set and write locks on its write set (in global object order, so no
//!   deadlock), validates versions, applies, and releases. Read-locking
//!   the root of a tree-shaped structure on every transaction is the
//!   congestion the paper measures.
//! * [`StmKind::Fraser`] — the nonblocking reference: **invisible
//!   readers**. Commit write-locks only the write set (trylock, standing
//!   in for CAS ownership acquisition), validates the read set by
//!   re-reading versions, applies, and releases. No privatization safety,
//!   much shorter commit.
//!
//! Conflict detection is by per-object version stamps stored in simulated
//! memory: every committed write stores a fresh unique stamp; validation
//! re-reads and compares.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_engine::{Cycles, Time};
use locksim_machine::{Action, Alloc, Ctx, Mode, Outcome, Program};

use crate::object::{ObjId, ObjectSpace};
use crate::structures::{Op, Plan, TxStructure};

/// Commit protocol selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmKind {
    /// Visible readers: RW locks on read+write sets at commit.
    LockBased,
    /// Invisible readers: write locks only, read-set validation.
    Fraser,
}

/// Aggregated per-thread transaction statistics.
#[derive(Debug, Default, Clone, Copy)]
pub struct TxStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Total cycles from first attempt to commit, summed over txns.
    pub total_cycles: Cycles,
    /// Cycles in the read/search phase (committed attempts only).
    pub read_cycles: Cycles,
    /// Cycles in the commit phase: locking, validation, write-back,
    /// unlocking (committed attempts only).
    pub commit_cycles: Cycles,
    /// Writes applied to objects outside the planned write set (RB fixups
    /// reaching an uncle node); bumped versions keep readers safe.
    pub unplanned_writes: u64,
}

/// Everything the transaction threads share.
pub struct TxShared {
    /// The structure under test.
    pub structure: RefCell<Box<dyn TxStructure>>,
    /// Object → address mapping.
    pub space: RefCell<ObjectSpace>,
    /// Allocator for the object region (disjoint from the machine's).
    pub alloc: RefCell<Alloc>,
}

impl TxShared {
    /// Wraps a populated structure for sharing between thread programs.
    pub fn new(structure: Box<dyn TxStructure>, space: ObjectSpace, alloc: Alloc) -> Rc<Self> {
        Rc::new(TxShared {
            structure: RefCell::new(structure),
            space: RefCell::new(space),
            alloc: RefCell::new(alloc),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Reading,
    NodeCompute,
    Locking,
    Validating,
    Writing,
    Unlocking,
    AbortUnlocking,
    Backoff,
    ThinkTime,
}

/// One transactional thread: runs `n_txns` transactions against the shared
/// structure and records statistics.
pub struct TxThread {
    kind: StmKind,
    shared: Rc<TxShared>,
    stats: Rc<RefCell<TxStats>>,
    n_txns: u32,
    read_pct: u32,
    key_range: u64,
    per_node_compute: Cycles,
    think_time: Cycles,
    // FSM state
    phase: Phase,
    op: Op,
    plan: Plan,
    versions: Vec<u64>,
    lockset: Vec<(ObjId, Mode)>,
    write_stamps: Vec<(ObjId, u64)>,
    idx: usize,
    done: u32,
    applied: bool,
    tx_start: Time,
    read_start: Time,
    commit_start: Time,
    stamp_counter: u64,
}

impl TxThread {
    /// Creates a transactional thread.
    pub fn new(
        kind: StmKind,
        shared: Rc<TxShared>,
        stats: Rc<RefCell<TxStats>>,
        n_txns: u32,
        read_pct: u32,
        key_range: u64,
    ) -> Self {
        TxThread {
            kind,
            shared,
            stats,
            n_txns,
            read_pct,
            key_range,
            per_node_compute: 20,
            think_time: 200,
            phase: Phase::Idle,
            op: Op::Lookup(0),
            plan: Plan::default(),
            versions: Vec::new(),
            lockset: Vec::new(),
            write_stamps: Vec::new(),
            idx: 0,
            done: 0,
            applied: false,
            tx_start: Time::ZERO,
            read_start: Time::ZERO,
            commit_start: Time::ZERO,
            stamp_counter: 0,
        }
    }

    fn build_lockset(&mut self) {
        self.lockset.clear();
        let writes = &self.plan.writes;
        match self.kind {
            StmKind::LockBased => {
                for &o in &self.plan.reads {
                    if !writes.contains(&o) {
                        self.lockset.push((o, Mode::Read));
                    }
                }
                for &o in writes {
                    self.lockset.push((o, Mode::Write));
                }
            }
            StmKind::Fraser => {
                for &o in writes {
                    self.lockset.push((o, Mode::Write));
                }
            }
        }
        // Global order prevents deadlock.
        self.lockset.sort_by_key(|&(o, _)| o);
        self.lockset.dedup_by_key(|&mut (o, _)| o);
    }

    fn acquire_action(&self, ctx: &mut Ctx<'_>) -> Action {
        let (obj, mode) = self.lockset[self.idx];
        let lock = self.shared.space.borrow().lock_addr(obj);
        let try_for = match self.kind {
            // Trylock stands in for CAS-based ownership in Fraser's OSTM.
            StmKind::Fraser => Some(2_000 + ctx.rng.below(1_000)),
            StmKind::LockBased => None,
        };
        Action::Acquire {
            lock,
            mode,
            try_for,
        }
    }

    fn release_action(&self) -> Action {
        let (obj, mode) = self.lockset[self.idx];
        let lock = self.shared.space.borrow().lock_addr(obj);
        Action::Release { lock, mode }
    }

    /// Starts a new attempt: pick/keep the op, plan, move to Reading.
    fn start_attempt(&mut self, ctx: &mut Ctx<'_>, fresh_op: bool) -> Action {
        if fresh_op {
            let key = ctx.rng.below(self.key_range);
            self.op = if ctx.rng.below(100) < self.read_pct as u64 {
                Op::Lookup(key)
            } else if ctx.rng.chance(0.5) {
                Op::Insert(key)
            } else {
                Op::Delete(key)
            };
            self.tx_start = ctx.now;
        }
        self.plan = self
            .shared
            .structure
            .borrow()
            .plan(self.op, ctx.rng.next_u64());
        self.versions.clear();
        self.idx = 0;
        self.applied = false;
        self.read_start = ctx.now;
        self.phase = Phase::Reading;
        let first = self.plan.reads[0];
        Action::Read(self.shared.space.borrow().data_addr(first))
    }

    fn abort(&mut self, ctx: &mut Ctx<'_>) -> Action {
        self.stats.borrow_mut().aborts += 1;
        if self.idx > 0 {
            // Release locks [0, idx) in reverse; reuse idx as cursor.
            self.idx -= 1;
            self.phase = Phase::AbortUnlocking;
            self.release_action()
        } else {
            self.phase = Phase::Backoff;
            Action::Compute(200 + ctx.rng.below(1_800))
        }
    }

    fn fresh_stamp(&mut self, ctx: &Ctx<'_>) -> u64 {
        self.stamp_counter += 1;
        ((u64::from(ctx.tid.0) + 1) << 40) | self.stamp_counter
    }
}

impl Program for TxThread {
    fn resume(&mut self, ctx: &mut Ctx<'_>, outcome: Outcome) -> Action {
        // The outcome belongs to exactly one FSM step; phases entered by
        // fall-through see `None`.
        let mut out = Some(outcome);
        loop {
            match self.phase {
                Phase::Idle => {
                    if self.done == self.n_txns {
                        return Action::Done;
                    }
                    return self.start_attempt(ctx, true);
                }
                Phase::Reading => {
                    let Some(Outcome::Value(v)) = out.take() else {
                        panic!("reading: expected a value")
                    };
                    self.versions.push(v);
                    self.phase = Phase::NodeCompute;
                    return Action::Compute(self.per_node_compute);
                }
                Phase::NodeCompute => {
                    out.take();
                    self.idx += 1;
                    if self.idx < self.plan.reads.len() {
                        self.phase = Phase::Reading;
                        let obj = self.plan.reads[self.idx];
                        return Action::Read(self.shared.space.borrow().data_addr(obj));
                    }
                    // Read phase over; move to commit.
                    self.stats.borrow_mut().read_cycles += ctx.now - self.read_start;
                    self.commit_start = ctx.now;
                    self.build_lockset();
                    self.idx = 0;
                    if self.lockset.is_empty() {
                        // Fraser read-only transaction: straight to validation.
                        self.phase = Phase::Validating;
                        continue;
                    }
                    self.phase = Phase::Locking;
                    return self.acquire_action(ctx);
                }
                Phase::Locking => {
                    match out.take() {
                        Some(Outcome::Granted) => {
                            self.idx += 1;
                            if self.idx < self.lockset.len() {
                                return self.acquire_action(ctx);
                            }
                            self.phase = Phase::Validating;
                            self.idx = 0;
                            continue;
                        }
                        Some(Outcome::Failed) => {
                            // Fraser trylock lost: abort (releases [0, idx)).
                            return self.abort(ctx);
                        }
                        other => panic!("locking: unexpected {other:?}"),
                    }
                }
                Phase::Validating => {
                    match out.take() {
                        None => {
                            // Entering: issue the first validation read.
                            debug_assert_eq!(self.idx, 0);
                            if self.plan.reads.is_empty() {
                                self.phase = Phase::Writing;
                                continue;
                            }
                            let obj = self.plan.reads[0];
                            return Action::Read(self.shared.space.borrow().data_addr(obj));
                        }
                        Some(Outcome::Value(v)) => {
                            if v != self.versions[self.idx] {
                                // Conflict: release everything we hold.
                                self.idx = self.lockset.len();
                                return self.abort(ctx);
                            }
                            self.idx += 1;
                            if self.idx < self.plan.reads.len() {
                                let obj = self.plan.reads[self.idx];
                                return Action::Read(self.shared.space.borrow().data_addr(obj));
                            }
                            self.phase = Phase::Writing;
                            continue;
                        }
                        other => panic!("validating: unexpected {other:?}"),
                    }
                }
                Phase::Writing => {
                    out.take();
                    if !self.applied {
                        // Apply the operation to the shadow structure and
                        // compute the stamp writes.
                        let modified = {
                            let shared = &self.shared;
                            let mut st = shared.structure.borrow_mut();
                            let mut space = shared.space.borrow_mut();
                            let mut alloc = shared.alloc.borrow_mut();
                            st.perform(&mut space, &mut alloc, self.op, self.plan.aux)
                        };
                        self.write_stamps.clear();
                        for obj in modified {
                            if !self.plan.writes.contains(&obj) {
                                self.stats.borrow_mut().unplanned_writes += 1;
                            }
                            let stamp = self.fresh_stamp(ctx);
                            self.write_stamps.push((obj, stamp));
                        }
                        self.applied = true;
                        self.idx = 0;
                    }
                    if self.idx < self.write_stamps.len() {
                        let (obj, stamp) = self.write_stamps[self.idx];
                        self.idx += 1;
                        let addr = self.shared.space.borrow().data_addr(obj);
                        return Action::Write(addr, stamp);
                    }
                    // All writes issued; unlock.
                    self.idx = self.lockset.len();
                    self.phase = Phase::Unlocking;
                    continue;
                }
                Phase::Unlocking => {
                    out.take();
                    if self.idx == 0 {
                        self.phase = Phase::ThinkTime;
                        continue;
                    }
                    self.idx -= 1;
                    return self.release_action();
                }
                Phase::AbortUnlocking => {
                    out.take();
                    if self.idx == 0 {
                        self.phase = Phase::Backoff;
                        return Action::Compute(200 + ctx.rng.below(1_800));
                    }
                    self.idx -= 1;
                    return self.release_action();
                }
                Phase::Backoff => {
                    out.take();
                    // Retry the same operation with a fresh plan.
                    return self.start_attempt(ctx, false);
                }
                Phase::ThinkTime => {
                    out.take();
                    // Transaction committed.
                    {
                        let mut s = self.stats.borrow_mut();
                        s.commits += 1;
                        s.total_cycles += ctx.now - self.tx_start;
                        s.commit_cycles += ctx.now - self.commit_start;
                    }
                    self.done += 1;
                    self.phase = Phase::Idle;
                    return Action::Compute(self.think_time);
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "tx-thread"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_zeroed() {
        let s = TxStats::default();
        assert_eq!(s.commits + s.aborts, 0);
    }
}
