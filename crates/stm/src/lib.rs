//! Object-based software transactional memory over the simulated machine —
//! the workload layer behind the paper's Figures 11 and 12.
//!
//! The paper evaluates RW-lock-based STM (Dice & Shavit's argument, built
//! on Fraser's OSTM) against Fraser's nonblocking OSTM, on three
//! data-structure microbenchmarks. This crate provides:
//!
//! * [`ObjectSpace`] — transactional objects with simulated lock/data
//!   addresses;
//! * [`structures`] — real red-black tree, skip list and hash table whose
//!   operations map to object read/write sets ([`TxStructure`]);
//! * [`TxThread`] — the transaction driver ([`StmKind::LockBased`] visible
//!   readers vs [`StmKind::Fraser`] invisible readers), run against any
//!   lock backend (MRSW software locks = the paper's *sw-only*, the LCU,
//!   or the SSB).
//!
//! # Example
//!
//! ```
//! use locksim_core::LcuBackend;
//! use locksim_machine::{Alloc, MachineConfig, World};
//! use locksim_stm::{ObjectSpace, RbTree, StmKind, TxShared, TxThread, TxStats, TxStructure, Op};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let mut w = World::new(MachineConfig::model_a(4), Box::new(LcuBackend::new()), 1);
//! let mut alloc = Alloc::starting_at(1 << 40);
//! let mut space = ObjectSpace::new();
//! let mut tree = RbTree::new(&mut space, &mut alloc);
//! for k in 0..64 {
//!     tree.perform(&mut space, &mut alloc, Op::Insert(k * 2), 0);
//! }
//! let shared = TxShared::new(Box::new(tree), space, alloc);
//! let stats = Rc::new(RefCell::new(TxStats::default()));
//! for _ in 0..4 {
//!     w.spawn(Box::new(TxThread::new(
//!         StmKind::LockBased, shared.clone(), stats.clone(), 10, 75, 128,
//!     )));
//! }
//! w.run_to_completion();
//! assert_eq!(stats.borrow().commits, 40);
//! ```

mod driver;
mod object;
pub mod structures;

pub use driver::{StmKind, TxShared, TxStats, TxThread};
pub use object::{ObjId, ObjectSpace};
pub use structures::{HashTable, Op, Plan, RbTree, SkipList, TxStructure};
