//! Transactional objects: identity plus simulated memory placement.

use locksim_machine::{Addr, Alloc};

/// Identifies a transactional object (one data-structure node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub u32);

/// Maps objects to their simulated memory: a lock word (acquired through
/// the machine's lock backend) and a data word holding the object's
/// version number.
///
/// # Example
///
/// ```
/// use locksim_machine::Alloc;
/// use locksim_stm::{ObjId, ObjectSpace};
///
/// let mut alloc = Alloc::new();
/// let mut space = ObjectSpace::new();
/// let a = space.alloc(&mut alloc);
/// let b = space.alloc(&mut alloc);
/// assert_ne!(space.lock_addr(a), space.lock_addr(b));
/// assert_ne!(space.data_addr(a).line(), space.lock_addr(a).line());
/// ```
#[derive(Debug, Default)]
pub struct ObjectSpace {
    locks: Vec<Addr>,
    data: Vec<Addr>,
}

impl ObjectSpace {
    /// Creates an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh object with its own lock and data lines (padded to
    /// avoid false sharing between objects).
    pub fn alloc(&mut self, alloc: &mut Alloc) -> ObjId {
        let id = ObjId(self.locks.len() as u32);
        self.locks.push(alloc.alloc_line());
        self.data.push(alloc.alloc_line());
        id
    }

    /// The object's lock word.
    ///
    /// # Panics
    ///
    /// Panics if `o` was not allocated from this space.
    pub fn lock_addr(&self, o: ObjId) -> Addr {
        self.locks[o.0 as usize]
    }

    /// The object's data (version) word.
    ///
    /// # Panics
    ///
    /// Panics if `o` was not allocated from this space.
    pub fn data_addr(&self, o: ObjId) -> Addr {
        self.data[o.0 as usize]
    }

    /// Number of allocated objects.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no objects exist.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_distinct_lines() {
        let mut alloc = Alloc::new();
        let mut s = ObjectSpace::new();
        let ids: Vec<ObjId> = (0..10).map(|_| s.alloc(&mut alloc)).collect();
        let mut lines = std::collections::BTreeSet::new();
        for &id in &ids {
            assert!(lines.insert(s.lock_addr(id).line()));
            assert!(lines.insert(s.data_addr(id).line()));
        }
        assert_eq!(s.len(), 10);
    }
}
