//! Chained hash table with per-node transactional objects.

use locksim_machine::Alloc;

use crate::object::{ObjId, ObjectSpace};
use crate::structures::{Op, Plan, TxStructure};

/// A chained hash table. Unlike the tree and skip list there is no single
/// entry point: each bucket head is its own object, so transactions touch
/// disjoint objects unless they collide — the paper's "no such pathology"
/// structure in Figure 12.
#[derive(Debug)]
pub struct HashTable {
    buckets: Vec<Bucket>,
    len: usize,
}

#[derive(Debug)]
struct Bucket {
    head_obj: ObjId,
    chain: Vec<(u64, ObjId)>,
}

impl HashTable {
    /// Creates a table with `n_buckets` chains.
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets == 0`.
    pub fn new(space: &mut ObjectSpace, alloc: &mut Alloc, n_buckets: usize) -> Self {
        assert!(n_buckets > 0);
        HashTable {
            buckets: (0..n_buckets)
                .map(|_| Bucket {
                    head_obj: space.alloc(alloc),
                    chain: Vec::new(),
                })
                .collect(),
            len: 0,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % self.buckets.len()
    }

    /// Objects read while searching `key` in its bucket: the head, then
    /// chain nodes up to and including the match.
    fn search(&self, key: u64) -> (Vec<ObjId>, usize, Option<usize>) {
        let b = self.bucket_of(key);
        let bucket = &self.buckets[b];
        let mut reads = vec![bucket.head_obj];
        let mut found = None;
        for (i, &(k, obj)) in bucket.chain.iter().enumerate() {
            reads.push(obj);
            if k == key {
                found = Some(i);
                break;
            }
        }
        (reads, b, found)
    }
}

impl TxStructure for HashTable {
    fn plan(&self, op: Op, _aux_seed: u64) -> Plan {
        let key = op.key();
        let (reads, b, found) = self.search(key);
        let writes = match op {
            Op::Lookup(_) => Vec::new(),
            Op::Insert(_) if found.is_some() => Vec::new(),
            // Insert prepends at the head.
            Op::Insert(_) => vec![self.buckets[b].head_obj],
            Op::Delete(_) => match found {
                None => Vec::new(),
                // Unlinking rewrites the predecessor (head if first).
                Some(0) => vec![self.buckets[b].head_obj, self.buckets[b].chain[0].1],
                Some(i) => vec![self.buckets[b].chain[i - 1].1, self.buckets[b].chain[i].1],
            },
        };
        Plan {
            reads,
            writes,
            aux: 0,
        }
    }

    fn perform(
        &mut self,
        space: &mut ObjectSpace,
        alloc: &mut Alloc,
        op: Op,
        _aux: u64,
    ) -> Vec<ObjId> {
        let key = op.key();
        let (_, b, found) = self.search(key);
        match op {
            Op::Lookup(_) => Vec::new(),
            Op::Insert(_) => {
                if found.is_some() {
                    return Vec::new();
                }
                let obj = space.alloc(alloc);
                self.buckets[b].chain.insert(0, (key, obj));
                self.len += 1;
                vec![self.buckets[b].head_obj]
            }
            Op::Delete(_) => {
                let Some(i) = found else { return Vec::new() };
                let (_, obj) = self.buckets[b].chain.remove(i);
                self.len -= 1;
                let pred = if i == 0 {
                    self.buckets[b].head_obj
                } else {
                    self.buckets[b].chain[i - 1].1
                };
                vec![pred, obj]
            }
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.search(key).2.is_some()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn check_invariants(&self) {
        let mut total = 0;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for &(k, _) in &bucket.chain {
                assert_eq!(self.bucket_of(k), b, "key {k} in wrong bucket");
            }
            let mut keys: Vec<u64> = bucket.chain.iter().map(|&(k, _)| k).collect();
            let before = keys.len();
            keys.dedup();
            assert_eq!(keys.len(), before, "duplicate keys in bucket {b}");
            total += bucket.chain.len();
        }
        assert_eq!(total, self.len, "len bookkeeping broken");
    }

    fn name(&self) -> &'static str {
        "hash-table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn fresh(buckets: usize) -> (HashTable, ObjectSpace, Alloc) {
        let mut alloc = Alloc::new();
        let mut space = ObjectSpace::new();
        let h = HashTable::new(&mut space, &mut alloc, buckets);
        (h, space, alloc)
    }

    #[test]
    fn roundtrip() {
        let (mut h, mut s, mut a) = fresh(8);
        for k in 0..20 {
            h.perform(&mut s, &mut a, Op::Insert(k), 0);
        }
        h.check_invariants();
        assert_eq!(h.len(), 20);
        assert!(h.contains(7));
        h.perform(&mut s, &mut a, Op::Delete(7), 0);
        assert!(!h.contains(7));
        h.check_invariants();
    }

    #[test]
    fn collisions_chain() {
        let (mut h, mut s, mut a) = fresh(1);
        for k in 0..10 {
            h.perform(&mut s, &mut a, Op::Insert(k), 0);
        }
        assert_eq!(h.len(), 10);
        // With one bucket, a lookup's read path can span the chain.
        let p = h.plan(Op::Lookup(0), 0);
        assert!(p.reads.len() >= 2);
    }

    #[test]
    fn distinct_buckets_have_distinct_heads() {
        let (h, _, _) = fresh(16);
        let mut heads = BTreeSet::new();
        for b in &h.buckets {
            assert!(heads.insert(b.head_obj));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_btreeset(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..300)) {
            let (mut h, mut s, mut a) = fresh(16);
            let mut model = BTreeSet::new();
            for (kind, key) in ops {
                match kind {
                    0 => { h.perform(&mut s, &mut a, Op::Insert(key), 0); model.insert(key); }
                    1 => { h.perform(&mut s, &mut a, Op::Delete(key), 0); model.remove(&key); }
                    _ => prop_assert_eq!(h.contains(key), model.contains(&key)),
                }
                h.check_invariants();
                prop_assert_eq!(h.len(), model.len());
            }
        }
    }
}
