//! Transactional data structures: shadow implementations that map each
//! operation to the set of objects a transaction reads and writes.
//!
//! The shadow structure holds the *logical* state; the STM driver times the
//! accesses through the simulated memory and lock system. `plan` computes
//! the access path read-only; `perform` applies the operation (called once,
//! at commit, with all conflicts excluded by validation) and reports every
//! node it actually modified so their versions can be bumped.

mod hashtable;
mod rbtree;
mod skiplist;

pub use hashtable::HashTable;
pub use rbtree::RbTree;
pub use skiplist::SkipList;

use crate::object::ObjId;

/// A transactional operation on a keyed set structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Membership query (read-only).
    Lookup(u64),
    /// Insert a key (no-op if present).
    Insert(u64),
    /// Remove a key (no-op if absent).
    Delete(u64),
}

impl Op {
    /// The key the operation targets.
    pub fn key(self) -> u64 {
        match self {
            Op::Lookup(k) | Op::Insert(k) | Op::Delete(k) => k,
        }
    }

    /// Whether the operation can modify the structure.
    pub fn is_update(self) -> bool {
        !matches!(self, Op::Lookup(_))
    }
}

/// The objects a transaction attempt will read and (estimated) write, plus
/// an auxiliary value threaded to `perform` (e.g. a skip-list level drawn
/// at plan time so the write-set estimate matches the mutation).
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Objects read during the operation (the access path).
    pub reads: Vec<ObjId>,
    /// Objects expected to be modified.
    pub writes: Vec<ObjId>,
    /// Operation-specific value fixed at plan time.
    pub aux: u64,
}

/// A keyed-set structure usable by the STM driver.
pub trait TxStructure {
    /// Computes the access path of `op` against the current state without
    /// modifying anything. `aux_seed` provides plan-time randomness (skip
    /// list levels).
    fn plan(&self, op: Op, aux_seed: u64) -> Plan;

    /// Applies `op` (with the plan's `aux`), allocating new nodes from
    /// `alloc`/`space`, and returns every existing object that was
    /// modified. Called exactly once per committed transaction.
    fn perform(
        &mut self,
        space: &mut crate::object::ObjectSpace,
        alloc: &mut locksim_machine::Alloc,
        op: Op,
        aux: u64,
    ) -> Vec<ObjId>;

    /// Whether `key` is currently present (for tests and drivers).
    fn contains(&self, key: u64) -> bool;

    /// Number of keys stored.
    fn len(&self) -> usize;

    /// Whether the structure is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks internal invariants, panicking on violation (tests).
    fn check_invariants(&self);

    /// Structure name for reports.
    fn name(&self) -> &'static str;
}
