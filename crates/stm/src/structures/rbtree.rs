//! Arena-based red-black tree with per-node transactional objects.

use locksim_machine::Alloc;

use crate::object::{ObjId, ObjectSpace};
use crate::structures::{Op, Plan, TxStructure};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    obj: ObjId,
    red: bool,
    l: usize,
    r: usize,
    p: usize,
}

/// A red-black tree whose nodes are transactional objects. The tree header
/// (root pointer) is itself an object — the single entry point every
/// transaction reads, which is what congests under visible-reader locking
/// (paper Figures 11–12).
#[derive(Debug)]
pub struct RbTree {
    nodes: Vec<Node>,
    free: Vec<usize>,
    root: usize,
    header: ObjId,
    len: usize,
    touched: Vec<ObjId>,
}

impl RbTree {
    /// Creates an empty tree, allocating its header object.
    pub fn new(space: &mut ObjectSpace, alloc: &mut Alloc) -> Self {
        RbTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            header: space.alloc(alloc),
            len: 0,
            touched: Vec::new(),
        }
    }

    /// The header object (root pointer).
    pub fn header(&self) -> ObjId {
        self.header
    }

    fn node_alloc(&mut self, space: &mut ObjectSpace, alloc: &mut Alloc, key: u64) -> usize {
        let obj = space.alloc(alloc);
        let n = Node {
            key,
            obj,
            red: true,
            l: NIL,
            r: NIL,
            p: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = n;
            idx
        } else {
            self.nodes.push(n);
            self.nodes.len() - 1
        }
    }

    fn touch(&mut self, idx: usize) {
        if idx != NIL {
            let obj = self.nodes[idx].obj;
            if !self.touched.contains(&obj) {
                self.touched.push(obj);
            }
        }
    }

    fn touch_header(&mut self) {
        if !self.touched.contains(&self.header) {
            self.touched.push(self.header);
        }
    }

    /// Search path from the root to `key` (or to the leaf where it would
    /// attach). Returns `(path_objs, node_or_NIL, parent_or_NIL)`.
    fn search(&self, key: u64) -> (Vec<ObjId>, usize, usize) {
        let mut path = vec![self.header];
        let mut cur = self.root;
        let mut parent = NIL;
        while cur != NIL {
            path.push(self.nodes[cur].obj);
            match key.cmp(&self.nodes[cur].key) {
                std::cmp::Ordering::Equal => return (path, cur, parent),
                std::cmp::Ordering::Less => {
                    parent = cur;
                    cur = self.nodes[cur].l;
                }
                std::cmp::Ordering::Greater => {
                    parent = cur;
                    cur = self.nodes[cur].r;
                }
            }
        }
        (path, NIL, parent)
    }

    fn minimum(&self, mut x: usize) -> usize {
        while self.nodes[x].l != NIL {
            x = self.nodes[x].l;
        }
        x
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].r;
        self.touch(x);
        self.touch(y);
        let yl = self.nodes[y].l;
        self.nodes[x].r = yl;
        if yl != NIL {
            self.nodes[yl].p = x;
            self.touch(yl);
        }
        let xp = self.nodes[x].p;
        self.nodes[y].p = xp;
        if xp == NIL {
            self.root = y;
            self.touch_header();
        } else {
            self.touch(xp);
            if self.nodes[xp].l == x {
                self.nodes[xp].l = y;
            } else {
                self.nodes[xp].r = y;
            }
        }
        self.nodes[y].l = x;
        self.nodes[x].p = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].l;
        self.touch(x);
        self.touch(y);
        let yr = self.nodes[y].r;
        self.nodes[x].l = yr;
        if yr != NIL {
            self.nodes[yr].p = x;
            self.touch(yr);
        }
        let xp = self.nodes[x].p;
        self.nodes[y].p = xp;
        if xp == NIL {
            self.root = y;
            self.touch_header();
        } else {
            self.touch(xp);
            if self.nodes[xp].l == x {
                self.nodes[xp].l = y;
            } else {
                self.nodes[xp].r = y;
            }
        }
        self.nodes[y].r = x;
        self.nodes[x].p = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.nodes[z].p != NIL && self.nodes[self.nodes[z].p].red {
            let p = self.nodes[z].p;
            let g = self.nodes[p].p;
            if g == NIL {
                break;
            }
            if self.nodes[g].l == p {
                let u = self.nodes[g].r;
                if u != NIL && self.nodes[u].red {
                    self.nodes[p].red = false;
                    self.nodes[u].red = false;
                    self.nodes[g].red = true;
                    self.touch(p);
                    self.touch(u);
                    self.touch(g);
                    z = g;
                } else {
                    if self.nodes[p].r == z {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].p;
                    let g = self.nodes[p].p;
                    self.nodes[p].red = false;
                    self.nodes[g].red = true;
                    self.touch(p);
                    self.touch(g);
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].l;
                if u != NIL && self.nodes[u].red {
                    self.nodes[p].red = false;
                    self.nodes[u].red = false;
                    self.nodes[g].red = true;
                    self.touch(p);
                    self.touch(u);
                    self.touch(g);
                    z = g;
                } else {
                    if self.nodes[p].l == z {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].p;
                    let g = self.nodes[p].p;
                    self.nodes[p].red = false;
                    self.nodes[g].red = true;
                    self.touch(p);
                    self.touch(g);
                    self.rotate_left(g);
                }
            }
        }
        if self.root != NIL && self.nodes[self.root].red {
            self.nodes[self.root].red = false;
            self.touch(self.root);
        }
    }

    fn insert(&mut self, space: &mut ObjectSpace, alloc: &mut Alloc, key: u64) -> bool {
        let (_, found, parent) = self.search(key);
        if found != NIL {
            return false;
        }
        let z = self.node_alloc(space, alloc, key);
        self.nodes[z].p = parent;
        if parent == NIL {
            self.root = z;
            self.touch_header();
        } else {
            self.touch(parent);
            if key < self.nodes[parent].key {
                self.nodes[parent].l = z;
            } else {
                self.nodes[parent].r = z;
            }
        }
        self.insert_fixup(z);
        self.len += 1;
        true
    }

    /// Replaces subtree `u` with subtree `v` (CLRS transplant).
    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].p;
        if up == NIL {
            self.root = v;
            self.touch_header();
        } else {
            self.touch(up);
            if self.nodes[up].l == u {
                self.nodes[up].l = v;
            } else {
                self.nodes[up].r = v;
            }
        }
        if v != NIL {
            self.nodes[v].p = up;
            self.touch(v);
        }
    }

    fn delete_fixup(&mut self, mut x: usize, mut xp: usize) {
        // x may be NIL; xp tracks its parent.
        while x != self.root && (x == NIL || !self.nodes[x].red) {
            if xp == NIL {
                break;
            }
            if self.nodes[xp].l == x {
                let mut w = self.nodes[xp].r;
                if w != NIL && self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[xp].red = true;
                    self.touch(w);
                    self.touch(xp);
                    self.rotate_left(xp);
                    w = self.nodes[xp].r;
                }
                if w == NIL {
                    x = xp;
                    xp = self.nodes[x].p;
                    continue;
                }
                let wl = self.nodes[w].l;
                let wr = self.nodes[w].r;
                let wl_red = wl != NIL && self.nodes[wl].red;
                let wr_red = wr != NIL && self.nodes[wr].red;
                if !wl_red && !wr_red {
                    self.nodes[w].red = true;
                    self.touch(w);
                    x = xp;
                    xp = self.nodes[x].p;
                } else {
                    if !wr_red {
                        if wl != NIL {
                            self.nodes[wl].red = false;
                            self.touch(wl);
                        }
                        self.nodes[w].red = true;
                        self.touch(w);
                        self.rotate_right(w);
                        w = self.nodes[xp].r;
                    }
                    self.nodes[w].red = self.nodes[xp].red;
                    self.nodes[xp].red = false;
                    self.touch(w);
                    self.touch(xp);
                    let wr = self.nodes[w].r;
                    if wr != NIL {
                        self.nodes[wr].red = false;
                        self.touch(wr);
                    }
                    self.rotate_left(xp);
                    x = self.root;
                    xp = NIL;
                }
            } else {
                let mut w = self.nodes[xp].l;
                if w != NIL && self.nodes[w].red {
                    self.nodes[w].red = false;
                    self.nodes[xp].red = true;
                    self.touch(w);
                    self.touch(xp);
                    self.rotate_right(xp);
                    w = self.nodes[xp].l;
                }
                if w == NIL {
                    x = xp;
                    xp = self.nodes[x].p;
                    continue;
                }
                let wl = self.nodes[w].l;
                let wr = self.nodes[w].r;
                let wl_red = wl != NIL && self.nodes[wl].red;
                let wr_red = wr != NIL && self.nodes[wr].red;
                if !wl_red && !wr_red {
                    self.nodes[w].red = true;
                    self.touch(w);
                    x = xp;
                    xp = self.nodes[x].p;
                } else {
                    if !wl_red {
                        if wr != NIL {
                            self.nodes[wr].red = false;
                            self.touch(wr);
                        }
                        self.nodes[w].red = true;
                        self.touch(w);
                        self.rotate_left(w);
                        w = self.nodes[xp].l;
                    }
                    self.nodes[w].red = self.nodes[xp].red;
                    self.nodes[xp].red = false;
                    self.touch(w);
                    self.touch(xp);
                    let wl = self.nodes[w].l;
                    if wl != NIL {
                        self.nodes[wl].red = false;
                        self.touch(wl);
                    }
                    self.rotate_right(xp);
                    x = self.root;
                    xp = NIL;
                }
            }
        }
        if x != NIL && self.nodes[x].red {
            self.nodes[x].red = false;
            self.touch(x);
        }
    }

    fn delete(&mut self, key: u64) -> bool {
        let (_, z, _) = self.search(key);
        if z == NIL {
            return false;
        }
        self.touch(z);
        let mut y = z;
        let mut y_was_red = self.nodes[y].red;
        let x;
        let xp;
        if self.nodes[z].l == NIL {
            x = self.nodes[z].r;
            xp = self.nodes[z].p;
            self.transplant(z, x);
        } else if self.nodes[z].r == NIL {
            x = self.nodes[z].l;
            xp = self.nodes[z].p;
            self.transplant(z, x);
        } else {
            y = self.minimum(self.nodes[z].r);
            self.touch(y);
            y_was_red = self.nodes[y].red;
            x = self.nodes[y].r;
            if self.nodes[y].p == z {
                xp = y;
                if x != NIL {
                    self.nodes[x].p = y;
                    self.touch(x);
                }
            } else {
                xp = self.nodes[y].p;
                self.transplant(y, x);
                let zr = self.nodes[z].r;
                self.nodes[y].r = zr;
                self.nodes[zr].p = y;
                self.touch(zr);
            }
            self.transplant(z, y);
            let zl = self.nodes[z].l;
            self.nodes[y].l = zl;
            self.nodes[zl].p = y;
            self.nodes[y].red = self.nodes[z].red;
            self.touch(zl);
        }
        if !y_was_red {
            self.delete_fixup(x, xp);
        }
        self.free.push(z);
        self.len -= 1;
        true
    }

    /// Depth of the tree (diagnostics).
    pub fn depth(&self) -> usize {
        fn go(t: &RbTree, n: usize) -> usize {
            if n == NIL {
                0
            } else {
                1 + go(t, t.nodes[n].l).max(go(t, t.nodes[n].r))
            }
        }
        go(self, self.root)
    }
}

impl TxStructure for RbTree {
    fn plan(&self, op: Op, _aux_seed: u64) -> Plan {
        let key = op.key();
        let (mut reads, found, _) = self.search(key);
        let writes = match op {
            Op::Lookup(_) => Vec::new(),
            Op::Insert(_) if found != NIL => Vec::new(),
            Op::Insert(_) => {
                // Insertion neighbourhood: the tail of the path (parent,
                // grandparent, uncle-adjacent ancestors).
                let n = reads.len();
                reads[n.saturating_sub(4)..].to_vec()
            }
            Op::Delete(_) if found == NIL => Vec::new(),
            Op::Delete(_) => {
                // Extend the read path with the successor walk.
                if self.nodes[found].l != NIL && self.nodes[found].r != NIL {
                    let mut cur = self.nodes[found].r;
                    while cur != NIL {
                        reads.push(self.nodes[cur].obj);
                        cur = self.nodes[cur].l;
                    }
                }
                let n = reads.len();
                reads[n.saturating_sub(4)..].to_vec()
            }
        };
        Plan {
            reads,
            writes,
            aux: 0,
        }
    }

    fn perform(
        &mut self,
        space: &mut ObjectSpace,
        alloc: &mut Alloc,
        op: Op,
        _aux: u64,
    ) -> Vec<ObjId> {
        self.touched.clear();
        match op {
            Op::Lookup(_) => {}
            Op::Insert(k) => {
                self.insert(space, alloc, k);
            }
            Op::Delete(k) => {
                self.delete(k);
            }
        }
        std::mem::take(&mut self.touched)
    }

    fn contains(&self, key: u64) -> bool {
        self.search(key).1 != NIL
    }

    fn len(&self) -> usize {
        self.len
    }

    fn check_invariants(&self) {
        // BST order, no red-red edges, uniform black height.
        fn go(t: &RbTree, n: usize, lo: Option<u64>, hi: Option<u64>) -> usize {
            if n == NIL {
                return 1;
            }
            let node = &t.nodes[n];
            if let Some(lo) = lo {
                assert!(node.key > lo, "BST order violated");
            }
            if let Some(hi) = hi {
                assert!(node.key < hi, "BST order violated");
            }
            if node.red {
                for c in [node.l, node.r] {
                    assert!(c == NIL || !t.nodes[c].red, "red-red violation");
                }
            }
            if node.l != NIL {
                assert_eq!(t.nodes[node.l].p, n, "parent pointer broken");
            }
            if node.r != NIL {
                assert_eq!(t.nodes[node.r].p, n, "parent pointer broken");
            }
            let bl = go(t, node.l, lo, Some(node.key));
            let br = go(t, node.r, Some(node.key), hi);
            assert_eq!(bl, br, "black height mismatch");
            bl + usize::from(!node.red)
        }
        if self.root != NIL {
            assert!(!self.nodes[self.root].red, "red root");
            assert_eq!(self.nodes[self.root].p, NIL);
            go(self, self.root, None, None);
        }
    }

    fn name(&self) -> &'static str {
        "rb-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn fresh() -> (RbTree, ObjectSpace, Alloc) {
        let mut alloc = Alloc::new();
        let mut space = ObjectSpace::new();
        let t = RbTree::new(&mut space, &mut alloc);
        (t, space, alloc)
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let (mut t, mut s, mut a) = fresh();
        for k in [5u64, 3, 8, 1, 4, 7, 9] {
            t.perform(&mut s, &mut a, Op::Insert(k), 0);
        }
        t.check_invariants();
        assert_eq!(t.len(), 7);
        assert!(t.contains(4));
        assert!(!t.contains(6));
        t.perform(&mut s, &mut a, Op::Delete(3), 0);
        t.check_invariants();
        assert!(!t.contains(3));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let (mut t, mut s, mut a) = fresh();
        t.perform(&mut s, &mut a, Op::Insert(1), 0);
        let touched = t.perform(&mut s, &mut a, Op::Insert(1), 0);
        assert!(touched.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_missing_is_noop() {
        let (mut t, mut s, mut a) = fresh();
        t.perform(&mut s, &mut a, Op::Insert(1), 0);
        assert!(t.perform(&mut s, &mut a, Op::Delete(9), 0).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn plan_reads_start_at_header() {
        let (mut t, mut s, mut a) = fresh();
        for k in 0..32 {
            t.perform(&mut s, &mut a, Op::Insert(k), 0);
        }
        let p = t.plan(Op::Lookup(17), 0);
        assert_eq!(p.reads[0], t.header());
        assert!(p.writes.is_empty());
        let p = t.plan(Op::Insert(100), 0);
        assert!(!p.writes.is_empty());
    }

    #[test]
    fn tree_stays_balanced() {
        let (mut t, mut s, mut a) = fresh();
        for k in 0..1024u64 {
            t.perform(&mut s, &mut a, Op::Insert(k), 0);
        }
        t.check_invariants();
        // RB depth bound: 2*log2(n+1) = 20.
        assert!(t.depth() <= 20, "depth {} too large", t.depth());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_btreeset(ops in proptest::collection::vec((0u8..3, 0u64..64), 1..400)) {
            let (mut t, mut s, mut a) = fresh();
            let mut model = BTreeSet::new();
            for (kind, key) in ops {
                match kind {
                    0 => {
                        t.perform(&mut s, &mut a, Op::Insert(key), 0);
                        model.insert(key);
                    }
                    1 => {
                        t.perform(&mut s, &mut a, Op::Delete(key), 0);
                        model.remove(&key);
                    }
                    _ => {
                        prop_assert_eq!(t.contains(key), model.contains(&key));
                    }
                }
                t.check_invariants();
                prop_assert_eq!(t.len(), model.len());
            }
            for key in 0..64 {
                prop_assert_eq!(t.contains(key), model.contains(&key));
            }
        }

        #[test]
        fn perform_touches_are_bounded(ops in proptest::collection::vec(0u64..128, 1..200)) {
            // Mutations touch O(log n) nodes, not the whole tree.
            let (mut t, mut s, mut a) = fresh();
            for k in &ops {
                let touched = t.perform(&mut s, &mut a, Op::Insert(*k), 0);
                prop_assert!(touched.len() <= 3 * 8, "insert touched {}", touched.len());
            }
            for k in &ops {
                let touched = t.perform(&mut s, &mut a, Op::Delete(*k), 0);
                prop_assert!(touched.len() <= 3 * 8, "delete touched {}", touched.len());
            }
            prop_assert_eq!(t.len(), 0);
        }
    }
}
