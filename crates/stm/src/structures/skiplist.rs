//! Skip list with per-node transactional objects.

use locksim_machine::Alloc;

use crate::object::{ObjId, ObjectSpace};
use crate::structures::{Op, Plan, TxStructure};

const MAX_LEVEL: usize = 16;
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    obj: ObjId,
    /// next[i] = following node at level i.
    next: Vec<usize>,
}

/// A skip list whose head tower is a transactional object read by every
/// operation — the second root-congested structure of Figure 12.
#[derive(Debug)]
pub struct SkipList {
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// Head tower: next[i] per level.
    head: Vec<usize>,
    head_obj: ObjId,
    level: usize,
    len: usize,
}

impl SkipList {
    /// Creates an empty list, allocating the head object.
    pub fn new(space: &mut ObjectSpace, alloc: &mut Alloc) -> Self {
        SkipList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: vec![NIL; MAX_LEVEL],
            head_obj: space.alloc(alloc),
            level: 1,
            len: 0,
        }
    }

    /// The head object.
    pub fn header(&self) -> ObjId {
        self.head_obj
    }

    /// Derives a tower height from plan-time randomness (geometric, p=1/2).
    fn level_from_seed(seed: u64) -> usize {
        let mut lvl = 1;
        let mut bits = seed;
        while lvl < MAX_LEVEL && bits & 1 == 1 {
            lvl += 1;
            bits >>= 1;
        }
        lvl
    }

    fn next_of(&self, node: usize, lvl: usize) -> usize {
        if node == NIL {
            // NIL used as "head" sentinel in traversal context.
            unreachable!("next_of on NIL");
        }
        self.nodes[node].next.get(lvl).copied().unwrap_or(NIL)
    }

    /// Finds predecessors at every level. Returns `(visited_objs, preds,
    /// found_node_or_NIL)`; `preds[i] == NIL` means the head tower.
    fn search(&self, key: u64) -> (Vec<ObjId>, Vec<usize>, usize) {
        let mut visited = vec![self.head_obj];
        let mut preds = vec![NIL; MAX_LEVEL];
        let mut cur = NIL; // NIL = head
        for lvl in (0..self.level).rev() {
            loop {
                let nxt = if cur == NIL {
                    self.head[lvl]
                } else {
                    self.next_of(cur, lvl)
                };
                if nxt != NIL && self.nodes[nxt].key < key {
                    cur = nxt;
                    let obj = self.nodes[nxt].obj;
                    if !visited.contains(&obj) {
                        visited.push(obj);
                    }
                } else {
                    break;
                }
            }
            preds[lvl] = cur;
        }
        let candidate = if cur == NIL {
            self.head[0]
        } else {
            self.next_of(cur, 0)
        };
        let found = if candidate != NIL && self.nodes[candidate].key == key {
            let obj = self.nodes[candidate].obj;
            if !visited.contains(&obj) {
                visited.push(obj);
            }
            candidate
        } else {
            NIL
        };
        (visited, preds, found)
    }

    fn insert(
        &mut self,
        space: &mut ObjectSpace,
        alloc: &mut Alloc,
        key: u64,
        lvl: usize,
    ) -> Vec<ObjId> {
        let (_, preds, found) = self.search(key);
        if found != NIL {
            return Vec::new();
        }
        let mut touched = Vec::new();
        let obj = space.alloc(alloc);
        let mut node = Node {
            key,
            obj,
            next: vec![NIL; lvl],
        };
        let idx = if let Some(i) = self.free.pop() {
            i
        } else {
            self.nodes.push(Node {
                key: 0,
                obj,
                next: Vec::new(),
            });
            self.nodes.len() - 1
        };
        if lvl > self.level {
            self.level = lvl;
        }
        for (l, &pred) in preds.iter().enumerate().take(lvl) {
            if pred == NIL {
                node.next[l] = self.head[l];
                self.head[l] = idx;
                if !touched.contains(&self.head_obj) {
                    touched.push(self.head_obj);
                }
            } else {
                while self.nodes[pred].next.len() <= l {
                    self.nodes[pred].next.push(NIL);
                }
                node.next[l] = self.nodes[pred].next[l];
                self.nodes[pred].next[l] = idx;
                let pobj = self.nodes[pred].obj;
                if !touched.contains(&pobj) {
                    touched.push(pobj);
                }
            }
        }
        self.nodes[idx] = node;
        self.len += 1;
        touched
    }

    fn delete(&mut self, key: u64) -> Vec<ObjId> {
        let (_, preds, found) = self.search(key);
        if found == NIL {
            return Vec::new();
        }
        let mut touched = vec![self.nodes[found].obj];
        let height = self.nodes[found].next.len();
        for (l, &pred) in preds.iter().enumerate().take(height) {
            let nxt = self.nodes[found].next[l];
            if pred == NIL {
                if self.head[l] == found {
                    self.head[l] = nxt;
                    if !touched.contains(&self.head_obj) {
                        touched.push(self.head_obj);
                    }
                }
            } else if self.nodes[pred].next.get(l) == Some(&found) {
                self.nodes[pred].next[l] = nxt;
                let pobj = self.nodes[pred].obj;
                if !touched.contains(&pobj) {
                    touched.push(pobj);
                }
            }
        }
        self.free.push(found);
        self.len -= 1;
        while self.level > 1 && self.head[self.level - 1] == NIL {
            self.level -= 1;
        }
        touched
    }
}

impl TxStructure for SkipList {
    fn plan(&self, op: Op, aux_seed: u64) -> Plan {
        let key = op.key();
        let (reads, preds, found) = self.search(key);
        let (writes, aux) = match op {
            Op::Lookup(_) => (Vec::new(), 0),
            Op::Insert(_) if found != NIL => (Vec::new(), 0),
            Op::Insert(_) => {
                let lvl = Self::level_from_seed(aux_seed);
                let mut w = Vec::new();
                for &pred in preds.iter().take(lvl) {
                    let obj = if pred == NIL {
                        self.head_obj
                    } else {
                        self.nodes[pred].obj
                    };
                    if !w.contains(&obj) {
                        w.push(obj);
                    }
                }
                (w, lvl as u64)
            }
            Op::Delete(_) if found == NIL => (Vec::new(), 0),
            Op::Delete(_) => {
                let mut w = vec![self.nodes[found].obj];
                for &pred in preds.iter().take(self.nodes[found].next.len()) {
                    let obj = if pred == NIL {
                        self.head_obj
                    } else {
                        self.nodes[pred].obj
                    };
                    if !w.contains(&obj) {
                        w.push(obj);
                    }
                }
                (w, 0)
            }
        };
        Plan { reads, writes, aux }
    }

    fn perform(
        &mut self,
        space: &mut ObjectSpace,
        alloc: &mut Alloc,
        op: Op,
        aux: u64,
    ) -> Vec<ObjId> {
        match op {
            Op::Lookup(_) => Vec::new(),
            Op::Insert(k) => self.insert(space, alloc, k, (aux.max(1) as usize).min(MAX_LEVEL)),
            Op::Delete(k) => self.delete(k),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.search(key).2 != NIL
    }

    fn len(&self) -> usize {
        self.len
    }

    fn check_invariants(&self) {
        // Level-0 keys strictly increasing; every higher-level chain is a
        // subsequence of level 0.
        let mut cur = self.head[0];
        let mut prev_key = None;
        let mut level0 = std::collections::BTreeSet::new();
        while cur != NIL {
            let k = self.nodes[cur].key;
            if let Some(p) = prev_key {
                assert!(k > p, "level-0 order violated");
            }
            prev_key = Some(k);
            level0.insert(cur);
            cur = self.nodes[cur].next[0];
        }
        assert_eq!(level0.len(), self.len, "len mismatch");
        for lvl in 1..self.level {
            let mut cur = self.head[lvl];
            let mut prev = None;
            while cur != NIL {
                assert!(level0.contains(&cur), "ghost node at level {lvl}");
                let k = self.nodes[cur].key;
                if let Some(p) = prev {
                    assert!(k > p, "level-{lvl} order violated");
                }
                prev = Some(k);
                cur = self.nodes[cur].next.get(lvl).copied().unwrap_or(NIL);
            }
        }
    }

    fn name(&self) -> &'static str {
        "skip-list"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn fresh() -> (SkipList, ObjectSpace, Alloc) {
        let mut alloc = Alloc::new();
        let mut space = ObjectSpace::new();
        let l = SkipList::new(&mut space, &mut alloc);
        (l, space, alloc)
    }

    #[test]
    fn basic_roundtrip() {
        let (mut l, mut s, mut a) = fresh();
        for (i, k) in [10u64, 5, 20, 15, 1].into_iter().enumerate() {
            l.perform(&mut s, &mut a, Op::Insert(k), (i as u64 % 4) + 1);
        }
        l.check_invariants();
        assert_eq!(l.len(), 5);
        assert!(l.contains(15));
        assert!(!l.contains(7));
        l.perform(&mut s, &mut a, Op::Delete(5), 0);
        l.check_invariants();
        assert!(!l.contains(5));
    }

    #[test]
    fn level_from_seed_is_geometric_ish() {
        assert_eq!(SkipList::level_from_seed(0b000), 1);
        assert_eq!(SkipList::level_from_seed(0b001), 2);
        assert_eq!(SkipList::level_from_seed(0b011), 3);
        assert_eq!(SkipList::level_from_seed(u64::MAX), MAX_LEVEL);
    }

    #[test]
    fn plan_includes_header_in_reads() {
        let (mut l, mut s, mut a) = fresh();
        for k in 0..50 {
            l.perform(&mut s, &mut a, Op::Insert(k), (k % 3) + 1);
        }
        let p = l.plan(Op::Lookup(25), 0);
        assert_eq!(p.reads[0], l.header());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn matches_btreeset(ops in proptest::collection::vec((0u8..3, 0u64..64, 0u64..u64::MAX), 1..300)) {
            let (mut l, mut s, mut a) = fresh();
            let mut model = BTreeSet::new();
            for (kind, key, seed) in ops {
                match kind {
                    0 => {
                        let lvl = SkipList::level_from_seed(seed) as u64;
                        l.perform(&mut s, &mut a, Op::Insert(key), lvl);
                        model.insert(key);
                    }
                    1 => {
                        l.perform(&mut s, &mut a, Op::Delete(key), 0);
                        model.remove(&key);
                    }
                    _ => {
                        prop_assert_eq!(l.contains(key), model.contains(&key));
                    }
                }
                l.check_invariants();
                prop_assert_eq!(l.len(), model.len());
            }
        }
    }
}
