//! Edge-case STM tests: plan/perform consistency, trylock-abort paths,
//! read-only transactions, and statistics accounting.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_core::LcuBackend;
use locksim_machine::{Alloc, MachineConfig, World};
use locksim_ssb::SsbBackend;
use locksim_stm::{
    HashTable, ObjectSpace, Op, Plan, RbTree, SkipList, StmKind, TxShared, TxStats, TxStructure,
    TxThread,
};
use locksim_swlocks::{SwAlg, SwLockBackend};

fn fresh_rb(keys: u64) -> (RbTree, ObjectSpace, Alloc) {
    let mut alloc = Alloc::starting_at(1 << 40);
    let mut space = ObjectSpace::new();
    let mut t = RbTree::new(&mut space, &mut alloc);
    for k in 0..keys {
        t.perform(&mut space, &mut alloc, Op::Insert(k * 2), 0);
    }
    (t, space, alloc)
}

/// Plans are read-only: planning the same op twice yields identical access
/// sets and leaves the structure untouched.
#[test]
fn plan_is_pure() {
    let (t, _, _) = fresh_rb(64);
    let len_before = t.len();
    let p1: Plan = t.plan(Op::Insert(33), 7);
    let p2: Plan = t.plan(Op::Insert(33), 7);
    assert_eq!(p1.reads, p2.reads);
    assert_eq!(p1.writes, p2.writes);
    assert_eq!(t.len(), len_before);
}

/// Lookup plans never have writes; update plans on present/absent keys
/// follow the structure semantics.
#[test]
fn plan_write_sets_match_semantics() {
    let (t, _, _) = fresh_rb(64);
    assert!(t.plan(Op::Lookup(10), 0).writes.is_empty());
    // Key 10 present: inserting it is a no-op (no writes).
    assert!(t.plan(Op::Insert(10), 0).writes.is_empty());
    // Key 11 absent: deleting it is a no-op.
    assert!(t.plan(Op::Delete(11), 0).writes.is_empty());
    // Real insert / delete carry writes.
    assert!(!t.plan(Op::Insert(11), 0).writes.is_empty());
    assert!(!t.plan(Op::Delete(10), 0).writes.is_empty());
}

/// The skip list's plan-time level (aux) bounds the insert's write set:
/// performing with the planned aux touches no more predecessors than
/// planned (modulo the structure's own head bookkeeping).
#[test]
fn skiplist_aux_threads_through() {
    let mut alloc = Alloc::starting_at(1 << 40);
    let mut space = ObjectSpace::new();
    let mut sl = SkipList::new(&mut space, &mut alloc);
    for k in 0..64 {
        sl.perform(&mut space, &mut alloc, Op::Insert(k * 2), (k % 4) + 1);
    }
    let plan = sl.plan(Op::Insert(33), u64::MAX >> 40); // tall tower
    assert!(plan.aux >= 1);
    let touched = sl.perform(&mut space, &mut alloc, Op::Insert(33), plan.aux);
    for obj in &touched {
        assert!(
            plan.writes.contains(obj),
            "modified {obj:?} outside planned writes {:?}",
            plan.writes
        );
    }
}

/// Read-only workloads commit without any aborts under lock-based STM
/// (readers never conflict).
#[test]
fn pure_lookup_workload_never_aborts() {
    let (t, space, alloc) = fresh_rb(128);
    let shared = TxShared::new(Box::new(t), space, alloc);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), 3);
    for _ in 0..8 {
        w.spawn(Box::new(TxThread::new(
            StmKind::LockBased,
            shared.clone(),
            stats.clone(),
            25,
            100, // all lookups
            256,
        )));
    }
    w.run_to_completion();
    let s = *stats.borrow();
    assert_eq!(s.commits, 200);
    assert_eq!(s.aborts, 0, "read-only transactions cannot conflict");
}

/// Fraser's trylock-based commit records failed ownership attempts as
/// aborts and still converges.
#[test]
fn fraser_trylock_aborts_are_counted() {
    let (t, space, alloc) = fresh_rb(4); // tiny tree: heavy write conflicts
    let shared = TxShared::new(Box::new(t), space, alloc);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    let mut w = World::new(
        MachineConfig::model_a(8),
        Box::new(SwLockBackend::new(SwAlg::Tatas)),
        4,
    );
    for _ in 0..8 {
        w.spawn(Box::new(TxThread::new(
            StmKind::Fraser,
            shared.clone(),
            stats.clone(),
            15,
            0, // all updates
            8,
        )));
    }
    w.run_to_completion();
    shared.structure.borrow().check_invariants();
    let s = *stats.borrow();
    assert_eq!(s.commits, 120);
    assert!(s.aborts > 0, "tiny key range must conflict");
}

/// The unplanned-writes statistic captures RB fixups that reach outside the
/// estimated write set (uncle recolouring) without breaking safety.
#[test]
fn unplanned_writes_are_tracked_and_safe() {
    let (t, space, alloc) = fresh_rb(8);
    let shared = TxShared::new(Box::new(t), space, alloc);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), 5);
    for _ in 0..8 {
        w.spawn(Box::new(TxThread::new(
            StmKind::LockBased,
            shared.clone(),
            stats.clone(),
            20,
            0,
            64,
        )));
    }
    w.run_to_completion();
    shared.structure.borrow().check_invariants();
    assert_eq!(stats.borrow().commits, 160);
    // Not asserted > 0 (depends on rotation pattern), only that the run is
    // consistent when they occur; the counter exists for diagnostics.
}

/// Hash-table transactions under the SSB backend: no single entry point, so
/// throughput holds even with the unfair baseline.
#[test]
fn hashtable_on_ssb_converges() {
    let mut alloc = Alloc::starting_at(1 << 40);
    let mut space = ObjectSpace::new();
    let mut h = HashTable::new(&mut space, &mut alloc, 64);
    for k in 0..128 {
        h.perform(&mut space, &mut alloc, Op::Insert(k * 2), 0);
    }
    let shared = TxShared::new(Box::new(h), space, alloc);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    let mut w = World::new(MachineConfig::model_a(8), Box::new(SsbBackend::new()), 6);
    for _ in 0..8 {
        w.spawn(Box::new(TxThread::new(
            StmKind::LockBased,
            shared.clone(),
            stats.clone(),
            20,
            50,
            256,
        )));
    }
    w.run_to_completion();
    shared.structure.borrow().check_invariants();
    assert_eq!(stats.borrow().commits, 160);
}

/// Commit-phase accounting: total ≥ read + commit for every variant.
#[test]
fn phase_accounting_is_consistent() {
    for kind in [StmKind::LockBased, StmKind::Fraser] {
        let (t, space, alloc) = fresh_rb(64);
        let shared = TxShared::new(Box::new(t), space, alloc);
        let stats = Rc::new(RefCell::new(TxStats::default()));
        let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), 7);
        for _ in 0..4 {
            w.spawn(Box::new(TxThread::new(
                kind,
                shared.clone(),
                stats.clone(),
                15,
                75,
                128,
            )));
        }
        w.run_to_completion();
        let s = *stats.borrow();
        assert!(
            s.total_cycles >= s.read_cycles + s.commit_cycles,
            "{kind:?}: {s:?}"
        );
    }
}
