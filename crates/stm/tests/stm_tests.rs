//! STM integration tests: transactions on the simulated machine across
//! lock backends.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_core::LcuBackend;
use locksim_machine::{Alloc, LockBackend, MachineConfig, World};
use locksim_ssb::SsbBackend;
use locksim_stm::{
    HashTable, ObjectSpace, Op, RbTree, SkipList, StmKind, TxShared, TxStats, TxStructure, TxThread,
};
use locksim_swlocks::{SwAlg, SwLockBackend};

enum Structure {
    Rb,
    Skip,
    Hash,
}

fn build_shared(which: Structure, initial_keys: u64, key_range: u64) -> Rc<TxShared> {
    let mut alloc = Alloc::starting_at(1 << 40);
    let mut space = ObjectSpace::new();
    let mut st: Box<dyn TxStructure> = match which {
        Structure::Rb => Box::new(RbTree::new(&mut space, &mut alloc)),
        Structure::Skip => Box::new(SkipList::new(&mut space, &mut alloc)),
        Structure::Hash => Box::new(HashTable::new(&mut space, &mut alloc, 256)),
    };
    // Populate with every other key so inserts and deletes both hit ~50%.
    let mut i = 0;
    let mut lvl_seed = 0x9E3779B97F4A7C15u64;
    while i < initial_keys {
        let key = (i * 2) % key_range;
        lvl_seed = lvl_seed.rotate_left(7).wrapping_mul(0xBF58476D1CE4E5B9);
        let aux = (lvl_seed % 4) + 1;
        st.perform(&mut space, &mut alloc, Op::Insert(key), aux);
        i += 1;
    }
    TxShared::new(st, space, alloc)
}

fn run_stm(
    backend: Box<dyn LockBackend>,
    kind: StmKind,
    which: Structure,
    threads: usize,
    txns: u32,
    read_pct: u32,
    seed: u64,
) -> (TxStats, u64) {
    let mut w = World::new(MachineConfig::model_a(16), backend, seed);
    let key_range = 512;
    let shared = build_shared(which, 128, key_range);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    for _ in 0..threads {
        w.spawn(Box::new(TxThread::new(
            kind,
            shared.clone(),
            stats.clone(),
            txns,
            read_pct,
            key_range,
        )));
    }
    w.run_to_completion();
    shared.structure.borrow().check_invariants();
    let s = *stats.borrow();
    (s, w.mach().now().cycles())
}

#[test]
fn lockbased_rb_on_lcu_commits_everything() {
    let (s, _) = run_stm(
        Box::new(LcuBackend::new()),
        StmKind::LockBased,
        Structure::Rb,
        8,
        15,
        75,
        1,
    );
    assert_eq!(s.commits, 8 * 15);
}

#[test]
fn lockbased_rb_on_mrsw_commits_everything() {
    let (s, _) = run_stm(
        Box::new(SwLockBackend::new(SwAlg::Mrsw)),
        StmKind::LockBased,
        Structure::Rb,
        8,
        10,
        75,
        2,
    );
    assert_eq!(s.commits, 8 * 10);
}

#[test]
fn lockbased_rb_on_ssb_commits_everything() {
    let (s, _) = run_stm(
        Box::new(SsbBackend::new()),
        StmKind::LockBased,
        Structure::Rb,
        8,
        10,
        75,
        3,
    );
    assert_eq!(s.commits, 8 * 10);
}

#[test]
fn fraser_rb_on_tatas_commits_everything() {
    let (s, _) = run_stm(
        Box::new(SwLockBackend::new(SwAlg::Tatas)),
        StmKind::Fraser,
        Structure::Rb,
        8,
        15,
        75,
        4,
    );
    assert_eq!(s.commits, 8 * 15);
}

#[test]
fn skiplist_transactions_work() {
    let (s, _) = run_stm(
        Box::new(LcuBackend::new()),
        StmKind::LockBased,
        Structure::Skip,
        8,
        12,
        75,
        5,
    );
    assert_eq!(s.commits, 8 * 12);
}

#[test]
fn hashtable_transactions_work() {
    let (s, _) = run_stm(
        Box::new(LcuBackend::new()),
        StmKind::LockBased,
        Structure::Hash,
        8,
        12,
        75,
        6,
    );
    assert_eq!(s.commits, 8 * 12);
}

#[test]
fn pure_update_workload_keeps_invariants() {
    let (s, _) = run_stm(
        Box::new(LcuBackend::new()),
        StmKind::LockBased,
        Structure::Rb,
        12,
        12,
        0, // every transaction is an update
        7,
    );
    assert_eq!(s.commits, 12 * 12);
}

#[test]
fn fraser_commit_phase_is_shorter_than_lockbased() {
    // Invisible readers skip read-locking ~log n objects at commit.
    let (lock_based, _) = run_stm(
        Box::new(SwLockBackend::new(SwAlg::Mrsw)),
        StmKind::LockBased,
        Structure::Rb,
        8,
        10,
        75,
        8,
    );
    let (fraser, _) = run_stm(
        Box::new(SwLockBackend::new(SwAlg::Tatas)),
        StmKind::Fraser,
        Structure::Rb,
        8,
        10,
        75,
        8,
    );
    let lb = lock_based.commit_cycles / lock_based.commits.max(1);
    let fr = fraser.commit_cycles / fraser.commits.max(1);
    assert!(fr < lb, "fraser commit {fr} !< lock-based commit {lb}");
}

#[test]
fn conflicting_updates_cause_aborts_but_converge() {
    // Tiny key range: heavy conflicts.
    let mut w = World::new(MachineConfig::model_a(8), Box::new(LcuBackend::new()), 9);
    let shared = build_shared(Structure::Rb, 4, 8);
    let stats = Rc::new(RefCell::new(TxStats::default()));
    for _ in 0..8 {
        w.spawn(Box::new(TxThread::new(
            StmKind::Fraser,
            shared.clone(),
            stats.clone(),
            10,
            0,
            8,
        )));
    }
    w.run_to_completion();
    shared.structure.borrow().check_invariants();
    let s = *stats.borrow();
    assert_eq!(s.commits, 80);
    assert!(s.aborts > 0, "expected conflicts in an 8-key range");
}

#[test]
fn deterministic_across_identical_runs() {
    let run = || {
        run_stm(
            Box::new(LcuBackend::new()),
            StmKind::LockBased,
            Structure::Rb,
            6,
            8,
            50,
            10,
        )
        .1
    };
    assert_eq!(run(), run());
}
