//! The software-lock [`LockBackend`]: routes machine events into the
//! per-algorithm state machines.

use locksim_engine::stats::Counters;
use locksim_engine::Cycles;
use locksim_machine::{Addr, CoreId, LineAddr, LockBackend, Mach, Mode, ThreadId};

use crate::state::{OpKind, Phase, Step, SwState, TimerPurpose};
use crate::{bravo, fissile, mcs, mrsw, tas};

/// Which software lock algorithm the backend runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwAlg {
    /// Test-and-set spin lock.
    Tas,
    /// Test-and-test-and-set spin lock.
    Tatas,
    /// Mellor-Crummey–Scott queue lock (mutual exclusion only).
    Mcs,
    /// Reader-writer queue lock with a shared reader counter.
    Mrsw,
    /// Adaptive mutex (spin-then-park TATAS), the "posix" baseline.
    Posix,
    /// BRAVO-style biased reader-writer lock: readers publish into a
    /// global visible-readers table; writers revoke via the underlying
    /// MRSW lock (Dice & Kogan, ATC '19).
    Bravo,
    /// Fissile-style reader-writer lock: an inner MCS core serializing
    /// writers plus an outer lock word aggregating readers (Dice &
    /// Kogan, 2020).
    Fissile,
}

impl SwAlg {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SwAlg::Tas => "tas",
            SwAlg::Tatas => "tatas",
            SwAlg::Mcs => "mcs",
            SwAlg::Mrsw => "mrsw",
            SwAlg::Posix => "posix",
            SwAlg::Bravo => "bravo",
            SwAlg::Fissile => "fissile",
        }
    }
}

/// Software-lock backend. See the crate docs.
pub struct SwLockBackend {
    alg: SwAlg,
    st: SwState,
}

impl std::fmt::Debug for SwLockBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwLockBackend")
            .field("alg", &self.alg)
            .finish()
    }
}

impl SwLockBackend {
    /// Creates a backend running `alg`.
    pub fn new(alg: SwAlg) -> Self {
        SwLockBackend {
            alg,
            st: SwState::new(alg),
        }
    }

    /// Re-reads whatever a waiting thread spins on (fresh watch included).
    fn redrive(&mut self, m: &mut Mach, t: ThreadId) {
        let Some(tsm) = self.st.threads.get(&t) else {
            return;
        };
        match tsm.phase {
            Phase::TatasWait => {
                let lock = tsm.lock;
                if let Some(x) = self.st.threads.get_mut(&t) {
                    x.phase = Phase::TatasRead;
                }
                crate::state::read(m, t, lock);
            }
            Phase::McsSpinWait | Phase::McsRelSpinWait => mcs::redrive(&mut self.st, m, t),
            Phase::MrswRWait | Phase::MrswWWaitRdr | Phase::MrswWRelSpinWait => {
                mrsw::redrive(&mut self.st, m, t)
            }
            Phase::BravoWScanWait => bravo::redrive(&mut self.st, m, t),
            Phase::FisRWait | Phase::FisWWait => fissile::redrive(&mut self.st, m, t),
            _ => {}
        }
    }

    fn dispatch(&mut self, m: &mut Mach, t: ThreadId, step: Step) {
        let Some(tsm) = self.st.threads.get(&t) else {
            return;
        };
        match tsm.phase {
            Phase::TasRmw
            | Phase::TasUndo
            | Phase::TatasRead
            | Phase::TatasWait
            | Phase::TatasRmw
            | Phase::PosixParked
            | Phase::SimpleRelStore => {
                let posix = self.alg == SwAlg::Posix;
                tas::advance(&mut self.st, m, t, step, posix);
            }
            Phase::McsInit
            | Phase::McsSwap
            | Phase::McsStoreLocked
            | Phase::McsLinkPred
            | Phase::McsSpinRead
            | Phase::McsSpinWait
            | Phase::McsRelReadNext
            | Phase::McsRelCas
            | Phase::McsRelSpinRead
            | Phase::McsRelSpinWait
            | Phase::McsRelUnlock => mcs::advance(&mut self.st, m, t, step),
            Phase::BravoRReadBias
            | Phase::BravoRPublish
            | Phase::BravoRRecheckBias
            | Phase::BravoRUndo
            | Phase::BravoRRelClear
            | Phase::BravoRSetBias
            | Phase::BravoWReadBias
            | Phase::BravoWClearBias
            | Phase::BravoWScanRead
            | Phase::BravoWScanWait => bravo::advance(&mut self.st, m, t, step),
            Phase::FisRInc
            | Phase::FisRDec
            | Phase::FisRWaitCheck
            | Phase::FisRWait
            | Phase::FisRRelDec
            | Phase::FisWSetBit
            | Phase::FisWReadWord
            | Phase::FisWWait
            | Phase::FisWRelClear => fissile::advance(&mut self.st, m, t, step),
            _ => mrsw::advance(&mut self.st, m, t, step),
        }
    }
}

impl LockBackend for SwLockBackend {
    fn name(&self) -> &'static str {
        self.alg.label()
    }

    fn on_acquire(
        &mut self,
        m: &mut Mach,
        t: ThreadId,
        lock: Addr,
        mode: Mode,
        try_for: Option<Cycles>,
    ) {
        assert!(
            !self.st.threads.contains_key(&t),
            "{t:?} already mid-operation"
        );
        if mode == Mode::Read {
            assert!(
                matches!(self.alg, SwAlg::Mrsw | SwAlg::Bravo | SwAlg::Fissile),
                "{} does not support read locking; use a reader-writer alg",
                self.alg.label()
            );
        }
        if try_for.is_some() {
            assert!(
                matches!(self.alg, SwAlg::Tas | SwAlg::Tatas | SwAlg::Posix),
                "{} does not support trylock (no queue-lock trylock exists)",
                self.alg.label()
            );
        }
        self.st
            .threads
            .insert(t, tas::new_tsm(lock, mode, OpKind::Acquire));
        if let Some(budget) = try_for {
            self.st.arm_abort(m, t, budget.max(1));
        }
        match (self.alg, mode) {
            (SwAlg::Tas, _) => tas::start_acquire(&mut self.st, m, t, false),
            (SwAlg::Tatas | SwAlg::Posix, _) => tas::start_acquire(&mut self.st, m, t, true),
            (SwAlg::Mcs, _) => mcs::start_acquire(&mut self.st, m, t),
            (SwAlg::Mrsw, Mode::Read) => mrsw::start_acquire_read(&mut self.st, m, t),
            (SwAlg::Bravo, Mode::Read) => bravo::start_acquire_read(&mut self.st, m, t),
            (SwAlg::Fissile, Mode::Read) => fissile::start_acquire_read(&mut self.st, m, t),
            (SwAlg::Mrsw | SwAlg::Bravo | SwAlg::Fissile, Mode::Write) => {
                mcs::start_acquire(&mut self.st, m, t)
            }
        }
    }

    fn on_release(&mut self, m: &mut Mach, t: ThreadId, lock: Addr, mode: Mode) {
        assert!(
            !self.st.threads.contains_key(&t),
            "{t:?} already mid-operation"
        );
        // The critical section ends here; record it before the release's
        // memory traffic races the next owner's grant messages.
        self.st
            .checker
            .on_release_traced(lock, t, mode, m.tracer(), m.lockstat());
        self.st
            .threads
            .insert(t, tas::new_tsm(lock, mode, OpKind::Release));
        match (self.alg, mode) {
            (SwAlg::Tas | SwAlg::Tatas | SwAlg::Posix, _) => tas::start_release(&mut self.st, m, t),
            (SwAlg::Mcs, _) => mcs::start_release(&mut self.st, m, t),
            (SwAlg::Mrsw, Mode::Read) => mrsw::start_release_read(&mut self.st, m, t),
            (SwAlg::Mrsw | SwAlg::Bravo, Mode::Write) => {
                mrsw::start_release_write(&mut self.st, m, t)
            }
            (SwAlg::Bravo, Mode::Read) => bravo::start_release_read(&mut self.st, m, t),
            (SwAlg::Fissile, Mode::Read) => fissile::start_release_read(&mut self.st, m, t),
            (SwAlg::Fissile, Mode::Write) => fissile::start_release_write(&mut self.st, m, t),
        }
    }

    fn on_mem_value(&mut self, m: &mut Mach, t: ThreadId, value: u64) {
        self.dispatch(m, t, Step::Value(value));
    }

    fn on_line_invalidated(&mut self, m: &mut Mach, t: ThreadId, _line: LineAddr) {
        // A wake can reach a thread that was preempted after arming its
        // watch (watches stay registered at the old core). Acting on it
        // would advance the spin machine into a mid-read phase that
        // neither the fallback timer nor the reschedule re-drive covers —
        // the lost-grant wedge of `tests/corpus/s00025_mrsw_none.txt`.
        // A preempted thread executes nothing: drop the wake and let
        // `on_thread_scheduled` re-drive the spin loop with a fresh read.
        if !m.is_scheduled(t) {
            self.st.counters.incr("sw_wakes_dropped_offcore");
            return;
        }
        // A real invalidation means the line the spin watches changed —
        // the wait is being served, not futile.
        if let Some(tsm) = self.st.threads.get_mut(&t) {
            tsm.futile = 0;
        }
        self.dispatch(m, t, Step::Wake);
    }

    fn on_timer(&mut self, m: &mut Mach, token: u64) {
        let Some((t, purpose)) = self.st.timers.remove(&token) else {
            return;
        };
        match purpose {
            TimerPurpose::Park => self.dispatch(m, t, Step::Timer),
            TimerPurpose::Fallback(phase) => {
                // Only meaningful if the thread is still stuck in the same
                // wait phase (the wake may have been lost to a message
                // race); otherwise it is a stale no-op.
                let stuck = self
                    .st
                    .threads
                    .get(&t)
                    .is_some_and(|tsm| tsm.phase == phase);
                if stuck {
                    // Off-core: the thread cannot re-read; the re-drive on
                    // its next `on_thread_scheduled` covers it.
                    if !m.is_scheduled(t) {
                        return;
                    }
                    self.st.counters.incr("sw_fallback_redrives");
                    if let Some(lock) = self.st.threads.get(&t).map(|tsm| tsm.lock) {
                        m.lockstat_bump(lock, "sw_fallback_redrives");
                    }
                    let futile = {
                        let tsm = self.st.threads.get_mut(&t).expect("stuck checked");
                        tsm.futile += 1;
                        tsm.futile
                    };
                    if futile >= crate::state::YIELD_AFTER_FUTILE && m.has_ready_threads() {
                        // Stuck several full fallback periods with threads
                        // waiting for a core: donate the timeslice
                        // (spin-then-yield) so a preempted predecessor —
                        // possibly the thread this spin is waiting on —
                        // gets a core well before the next quantum tick.
                        // The re-drive runs when this thread is
                        // rescheduled.
                        self.st.counters.incr("sw_spin_yields");
                        m.request_yield(t);
                    } else {
                        self.redrive(m, t);
                    }
                }
            }
            TimerPurpose::Abort => {
                // Only meaningful if the thread is still acquiring.
                let acquiring = self
                    .st
                    .threads
                    .get(&t)
                    .is_some_and(|tsm| tsm.op == OpKind::Acquire);
                if acquiring {
                    tas::abort(&mut self.st, m, t);
                }
            }
        }
    }

    fn on_thread_scheduled(&mut self, m: &mut Mach, t: ThreadId, _core: CoreId) {
        // Watches do not survive preemption/migration: re-drive any
        // spin-wait phase with a fresh read.
        self.redrive(m, t);
    }

    fn on_thread_descheduled(&mut self, m: &mut Mach, t: ThreadId) {
        // A software lock has no hardware agent acting for an off-core
        // thread: its operation simply freezes, leaving queue successors
        // blocked until it runs again. Count the exposure so fault reports
        // can attribute the resulting stalls.
        if let Some(tsm) = self.st.threads.get(&t) {
            let lock = tsm.lock;
            self.st.counters.incr("sw_descheduled_midop");
            m.lockstat_bump(lock, "sw_descheduled_midop");
        }
    }

    fn counters(&self) -> Counters {
        self.st.counters.clone()
    }

    fn debug_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (t, tsm) in &self.st.threads {
            writeln!(
                out,
                "{t:?}: lock={} mode={:?} op={:?} phase={:?} qnode={} scratch={:#x} spins={}",
                tsm.lock, tsm.mode, tsm.op, tsm.phase, tsm.qnode, tsm.scratch, tsm.spins
            )
            .ok();
        }
        out
    }
}
