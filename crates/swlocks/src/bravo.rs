//! A BRAVO-style biased reader-writer lock (Dice & Kogan, USENIX ATC '19,
//! arXiv:1810.01553), executed memory-op by memory-op.
//!
//! When the lock is *biased* (`bias == 1`), a reader publishes itself in a
//! global visible-readers table — one CAS into its hashed slot plus a bias
//! re-check — and never touches the underlying lock's reader counter, so
//! concurrent readers of the same lock hit distinct cache lines instead of
//! ping-ponging one counter. Writers acquire the underlying MRSW write
//! lock (MCS writer queue + reader drain), then *revoke* the bias: clear
//! the flag and scan every table slot, waiting for slots that hold this
//! lock's address to empty. The revocation cost is charged back to
//! readers adaptively: re-biasing is inhibited until `now + N × scan
//! duration` (N = [`BRAVO_INHIBIT_MULT`]), so write-heavy phases keep the
//! lock unbiased and read-heavy phases re-bias it.
//!
//! Ordering is Dekker-style: a reader publishes *then* re-checks the
//! bias; a writer clears the bias *then* scans. Whichever order the
//! coherence protocol serializes, either the reader sees the cleared bias
//! (undoes its slot and falls back to the underlying lock) or the writer
//! sees the published slot (and waits for the reader to leave). A reader
//! always empties its slot before blocking on the underlying lock, so
//! revocation can never deadlock against a waiting reader.

use locksim_machine::{Addr, Mach, RmwOp, ThreadId};

use crate::state::{
    read, rmw, write, Phase, ReaderPath, Step, SwState, BRAVO_INHIBIT_MULT, BRAVO_SLOTS,
};

/// Hashed visible-readers table slot for `(thread, lock)` (Fibonacci
/// mixing; collisions just divert the reader to the slow path).
pub(crate) fn slot_of(t: ThreadId, lock: Addr) -> usize {
    let h = (u64::from(t.0).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        ^ lock.0.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    ((h >> 32) as usize) % BRAVO_SLOTS
}

pub(crate) fn start_acquire_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let meta = st.bravo_meta(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::BravoRReadBias;
    read(m, t, meta.bias);
}

pub(crate) fn start_release_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let path = st
        .rpaths
        .remove(&(t, lock))
        .expect("bravo read release without recorded path");
    match path {
        ReaderPath::Fast(i) => {
            let slot = st.rtable_slot(m, i);
            let tsm = st.threads.get_mut(&t).expect("tsm");
            tsm.phase = Phase::BravoRRelClear;
            write(m, t, slot, 0);
        }
        ReaderPath::Slow => crate::mrsw::start_release_read(st, m, t),
    }
}

/// Diverts an acquiring reader onto the underlying MRSW read lock.
fn slow_path(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    st.counters.incr("sw_bravo_slow_reads");
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::MrswRInc;
    rmw(m, t, lm.rdr, RmwOp::FetchAdd(1));
}

/// The underlying MRSW read lock is held (slow path): decide whether to
/// re-bias, then grant.
pub(crate) fn slow_read_locked(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    st.rpaths.insert((t, lock), ReaderPath::Slow);
    let meta = st.bravo_meta(m, lock);
    if m.now().cycles() >= meta.inhibit_until {
        st.counters.incr("sw_bravo_rebias");
        let tsm = st.threads.get_mut(&t).expect("tsm");
        tsm.phase = Phase::BravoRSetBias;
        write(m, t, meta.bias, 1);
    } else {
        st.grant(m, t);
    }
}

/// The underlying MRSW write lock is held (queue head, counter drained):
/// revoke the bias if set, then grant.
pub(crate) fn writer_locked(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let meta = st.bravo_meta(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::BravoWReadBias;
    read(m, t, meta.bias);
}

pub(crate) fn advance(st: &mut SwState, m: &mut Mach, t: ThreadId, step: Step) {
    let lock = match st.threads.get(&t) {
        Some(tsm) => tsm.lock,
        None => return,
    };
    let phase = st.threads[&t].phase;
    match (phase, step) {
        // ---- reader fast path ----
        (Phase::BravoRReadBias, Step::Value(b)) => {
            if b == 1 {
                let i = slot_of(t, lock);
                let slot = st.rtable_slot(m, i);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.scratch = i as u64;
                tsm.phase = Phase::BravoRPublish;
                rmw(
                    m,
                    t,
                    slot,
                    RmwOp::CompareSwap {
                        expect: 0,
                        new: lock.0,
                    },
                );
            } else {
                slow_path(st, m, t);
            }
        }
        (Phase::BravoRPublish, Step::Value(old)) => {
            if old == 0 {
                let meta = st.bravo_meta(m, lock);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.phase = Phase::BravoRRecheckBias;
                read(m, t, meta.bias);
            } else {
                // Slot collision (another reader, possibly of another
                // lock): fall back without publishing.
                st.counters.incr("sw_bravo_slot_collisions");
                slow_path(st, m, t);
            }
        }
        (Phase::BravoRRecheckBias, Step::Value(b)) => {
            if b == 1 {
                let i = st.threads[&t].scratch as usize;
                st.rpaths.insert((t, lock), ReaderPath::Fast(i));
                st.counters.incr("sw_bravo_fast_reads");
                st.grant(m, t);
            } else {
                // A writer revoked the bias between publish and re-check:
                // empty the slot *before* blocking on the underlying lock
                // so the writer's revocation scan cannot wait on us.
                let i = st.threads[&t].scratch as usize;
                let slot = st.rtable_slot(m, i);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.phase = Phase::BravoRUndo;
                write(m, t, slot, 0);
            }
        }
        (Phase::BravoRUndo, Step::Value(_)) => slow_path(st, m, t),
        (Phase::BravoRSetBias, Step::Value(_)) => st.grant(m, t),
        // ---- reader fast release ----
        (Phase::BravoRRelClear, Step::Value(_)) => st.released(m, t),
        // ---- writer revocation ----
        (Phase::BravoWReadBias, Step::Value(b)) => {
            if b == 0 {
                st.grant(m, t);
            } else {
                st.counters.incr("sw_bravo_revocations");
                m.lockstat_bump(lock, "sw_bravo_revocations");
                let meta = st.bravo_meta(m, lock);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.phase = Phase::BravoWClearBias;
                write(m, t, meta.bias, 0);
            }
        }
        (Phase::BravoWClearBias, Step::Value(_)) => {
            let slot = st.rtable_slot(m, 0);
            let now = m.now().cycles();
            let tsm = st.threads.get_mut(&t).expect("tsm");
            tsm.scratch = 0;
            tsm.scratch2 = now;
            tsm.phase = Phase::BravoWScanRead;
            read(m, t, slot);
        }
        (Phase::BravoWScanRead, Step::Value(v)) => {
            let i = st.threads[&t].scratch as usize;
            if v == lock.0 {
                // A visible reader of this lock: wait for it to leave.
                let slot = st.rtable_slot(m, i);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.phase = Phase::BravoWScanWait;
                st.guarded_watch(m, t, slot);
            } else if i + 1 == BRAVO_SLOTS {
                // Scan complete: charge its cost to the re-bias window.
                let now = m.now().cycles();
                let t0 = st.threads[&t].scratch2;
                let meta = st.bravo.get_mut(&lock).expect("bravo meta");
                meta.inhibit_until = now + now.saturating_sub(t0) * BRAVO_INHIBIT_MULT;
                st.grant(m, t);
            } else {
                let slot = st.rtable_slot(m, i + 1);
                let tsm = st.threads.get_mut(&t).expect("tsm");
                tsm.scratch = (i + 1) as u64;
                read(m, t, slot);
            }
        }
        (Phase::BravoWScanWait, Step::Wake) => {
            let i = st.threads[&t].scratch as usize;
            let slot = st.rtable_slot(m, i);
            let tsm = st.threads.get_mut(&t).expect("tsm");
            tsm.phase = Phase::BravoWScanRead;
            read(m, t, slot);
        }
        (_, Step::Wake) | (_, Step::Timer) => {}
        (p, s) => panic!("bravo machine: unexpected {s:?} in {p:?}"),
    }
}

/// Re-drives the revocation-scan wait after reschedule (watches do not
/// survive migrations). Reader wait phases are the underlying MRSW
/// machine's and are re-driven there.
pub(crate) fn redrive(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let Some(tsm) = st.threads.get(&t) else {
        return;
    };
    if tsm.phase == Phase::BravoWScanWait {
        let i = tsm.scratch as usize;
        let slot = st.rtable_slot(m, i);
        let tsm = st.threads.get_mut(&t).expect("tsm");
        tsm.phase = Phase::BravoWScanRead;
        read(m, t, slot);
    }
}
