//! A Fissile-style reader-writer lock (Dice & Kogan, arXiv:2003.05025),
//! executed memory-op by memory-op.
//!
//! Fissile locks compose two parts: an inner mutual-exclusion core that
//! serializes writers — here the MCS queue machine from [`crate::mcs`],
//! so writer handoff spins stay on per-thread queue-node lines — and an
//! outer lock word carrying a WRITE bit (bit 0) and an aggregated reader
//! count (the bits above it). Readers never enter the queue: one
//! `fetch_add(+2)` acquires if no writer holds the WRITE bit, and one
//! `fetch_add(-2)` releases. If the bit is set the reader rolls its
//! increment back and spins on the word (watch + fallback poll). A
//! writer wins the inner MCS queue first, then sets the WRITE bit with
//! `fetch_add(+1)` and waits for the aggregated reader count to drain to
//! zero before entering. Release clears the bit, then performs the MCS
//! release to hand the inner core to the next queued writer.
//!
//! The coherence footprint is the point of comparison: all readers of a
//! lock share one word line (aggregation hotspot, like MRSW's counter but
//! with no separate writer-active line), while writers pay the extra MCS
//! queue traffic only among themselves.

use locksim_machine::{Mach, RmwOp, ThreadId};

use crate::state::{read, rmw, OpKind, Phase, Step, SwState};

/// Bit 0 of the lock word: a writer holds (or is draining) the lock.
const WRITE_BIT: u64 = 1;
/// One reader in the aggregated count (bits 63..1).
const R_UNIT: u64 = 2;

pub(crate) fn start_acquire_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::FisRInc;
    rmw(m, t, word, RmwOp::FetchAdd(R_UNIT));
}

pub(crate) fn start_release_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    debug_assert_eq!(tsm.op, OpKind::Release);
    tsm.phase = Phase::FisRRelDec;
    rmw(m, t, word, RmwOp::FetchAdd(R_UNIT.wrapping_neg()));
}

pub(crate) fn start_release_write(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    debug_assert_eq!(tsm.op, OpKind::Release);
    tsm.phase = Phase::FisWRelClear;
    rmw(m, t, word, RmwOp::FetchAdd(WRITE_BIT.wrapping_neg()));
}

/// This writer won the inner MCS queue: claim the WRITE bit on the word.
pub(crate) fn writer_at_head(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::FisWSetBit;
    rmw(m, t, word, RmwOp::FetchAdd(WRITE_BIT));
}

pub(crate) fn advance(st: &mut SwState, m: &mut Mach, t: ThreadId, step: Step) {
    let lock = match st.threads.get(&t) {
        Some(tsm) => tsm.lock,
        None => return,
    };
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    match (tsm.phase, step) {
        // ---- reader acquire ----
        (Phase::FisRInc, Step::Value(old)) => {
            if old & WRITE_BIT == 0 {
                st.counters.incr("sw_fissile_read_fast");
                st.grant(m, t);
            } else {
                // Writer present: roll the aggregation back and wait.
                tsm.phase = Phase::FisRDec;
                st.counters.incr("sw_fissile_rollbacks");
                rmw(m, t, word, RmwOp::FetchAdd(R_UNIT.wrapping_neg()));
            }
        }
        (Phase::FisRDec, Step::Value(_)) => {
            // Re-read before watching: the writer may already be gone.
            tsm.phase = Phase::FisRWaitCheck;
            read(m, t, word);
        }
        (Phase::FisRWaitCheck, Step::Value(v)) => {
            if v & WRITE_BIT == 0 {
                tsm.phase = Phase::FisRInc;
                rmw(m, t, word, RmwOp::FetchAdd(R_UNIT));
            } else {
                tsm.phase = Phase::FisRWait;
                st.guarded_watch(m, t, word);
            }
        }
        (Phase::FisRWait, Step::Wake) => {
            tsm.phase = Phase::FisRWaitCheck;
            read(m, t, word);
        }
        // ---- reader release ----
        (Phase::FisRRelDec, Step::Value(_)) => st.released(m, t),
        // ---- writer acquire (post inner-queue head) ----
        (Phase::FisWSetBit, Step::Value(old)) => {
            debug_assert_eq!(old & WRITE_BIT, 0, "inner queue serializes writers");
            if old >> 1 == 0 {
                st.grant(m, t);
            } else {
                tsm.phase = Phase::FisWReadWord;
                st.counters.incr("sw_fissile_writer_waits");
                read(m, t, word);
            }
        }
        (Phase::FisWReadWord, Step::Value(v)) => {
            if v == WRITE_BIT {
                st.grant(m, t);
            } else {
                tsm.phase = Phase::FisWWait;
                st.guarded_watch(m, t, word);
            }
        }
        (Phase::FisWWait, Step::Wake) => {
            tsm.phase = Phase::FisWReadWord;
            read(m, t, word);
        }
        // ---- writer release ----
        (Phase::FisWRelClear, Step::Value(_)) => {
            // WRITE bit dropped (readers may now aggregate in); hand the
            // inner core to the next queued writer.
            crate::mcs::start_release(st, m, t);
        }
        (_, Step::Wake) | (_, Step::Timer) => {}
        (p, s) => panic!("fissile machine: unexpected {s:?} in {p:?}"),
    }
}

/// Re-drives the word-spin phases after reschedule (watches do not
/// survive migrations).
pub(crate) fn redrive(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = match st.threads.get(&t) {
        Some(tsm) => tsm.lock,
        None => return,
    };
    let word = st.fissile_word(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    match tsm.phase {
        Phase::FisRWait => {
            tsm.phase = Phase::FisRWaitCheck;
            read(m, t, word);
        }
        Phase::FisWWait => {
            tsm.phase = Phase::FisWReadWord;
            read(m, t, word);
        }
        _ => {}
    }
}
