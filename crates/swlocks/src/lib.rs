//! Software lock algorithms executed against the simulated coherence
//! protocol.
//!
//! Each algorithm is a per-thread state machine whose steps are *real
//! memory operations* (loads, stores, atomic RMWs) issued through the MESI
//! model, so its cost — and its pathologies — emerge from coherence
//! traffic rather than being asserted:
//!
//! * [`SwAlg::Tas`] — test-and-set: every attempt is an atomic swap, so a
//!   contended lock ping-pongs in M state between caches.
//! * [`SwAlg::Tatas`] — test-and-test-and-set: spins reading a shared copy
//!   (no traffic) and swaps only when the lock looks free; releases trigger
//!   a thundering herd of refetches.
//! * [`SwAlg::Mcs`] — the Mellor-Crummey–Scott queue lock: per-thread queue
//!   nodes, local spinning, one invalidation + refetch per handoff.
//! * [`SwAlg::Mrsw`] — a fair reader-writer queue lock in the spirit of
//!   Mellor-Crummey & Scott (PPoPP '91): writers queue MCS-style, readers
//!   maintain a shared counter that becomes the coherence hotspot the paper
//!   measures (two atomic RMWs per reader, more under writer contention).
//! * [`SwAlg::Posix`] — an adaptive mutex (spin-then-park TATAS), standing
//!   in for Solaris `pthread_mutex` in the application benchmarks.
//! * [`SwAlg::Bravo`] — a BRAVO-style biased reader-writer lock (Dice &
//!   Kogan, ATC '19): readers publish into a global visible-readers table
//!   (one CAS on a private slot line) while the lock is biased; writers
//!   take the underlying MRSW lock and revoke the bias by scanning the
//!   table, with an adaptive re-bias inhibit window.
//! * [`SwAlg::Fissile`] — a Fissile-style reader-writer lock (Dice &
//!   Kogan, 2020): an inner MCS core serializes writers; readers
//!   aggregate on an outer lock word (`fetch_add` ±2 around a WRITE bit)
//!   and roll back when a writer is present.
//!
//! Trylock (`try_for`) is supported by the unstructured locks (TAS, TATAS,
//! Posix); queue-based locks reject it, matching the paper's observation
//! that no trylock mechanism exists for queue-based RW locks.
//!
//! # Example
//!
//! ```
//! use locksim_machine::{testing::ScriptProgram, Action, MachineConfig, Mode, World};
//! use locksim_swlocks::{SwAlg, SwLockBackend};
//!
//! let backend = SwLockBackend::new(SwAlg::Mcs);
//! let mut w = World::new(MachineConfig::model_a(4), Box::new(backend), 1);
//! let lock = w.mach().alloc().alloc_line();
//! for _ in 0..4 {
//!     w.spawn(Box::new(ScriptProgram::new(vec![
//!         Action::Acquire { lock, mode: Mode::Write, try_for: None },
//!         Action::Compute(100),
//!         Action::Release { lock, mode: Mode::Write },
//!     ])));
//! }
//! w.run_to_completion();
//! ```

mod backend;
mod bravo;
mod fissile;
mod mcs;
mod mrsw;
mod state;
mod tas;

pub use backend::{SwAlg, SwLockBackend};
