//! The Mellor-Crummey–Scott queue lock, executed memory-op by memory-op.
//!
//! Queue node layout (one line per `(thread, lock)`): word 0 = `next`
//! pointer, word 1 = `locked` flag. The lock's tail pointer lives in the
//! lock's side memory. MRSW reuses this machine for its writer queue; on
//! MCS-acquisition an MRSW writer continues into the reader-drain phases
//! instead of being granted.

use locksim_machine::{Addr, Mach, RmwOp, ThreadId};

use crate::state::{read, rmw, write, OpKind, Phase, Step, SwState};

pub(crate) fn start_acquire(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let q = st.qnode(m, t, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.qnode = q;
    tsm.scratch = lm.tail.0;
    tsm.phase = Phase::McsInit;
    // qnode.next = null
    write(m, t, q, 0);
}

pub(crate) fn start_release(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let q = st.qnode(m, t, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    debug_assert_eq!(tsm.op, OpKind::Release);
    tsm.qnode = q;
    tsm.scratch = lm.tail.0;
    tsm.phase = Phase::McsRelReadNext;
    read(m, t, q);
}

/// Advances the MCS machine. What happens when the queue grants depends
/// on the algorithm (see [`mcs_acquired`]): plain MCS grants the lock;
/// MRSW/BRAVO writers proceed to drain readers; Fissile writers set the
/// write bit on the lock word.
pub(crate) fn advance(st: &mut SwState, m: &mut Mach, t: ThreadId, step: Step) {
    let Some(tsm) = st.threads.get_mut(&t) else {
        return;
    };
    let q = tsm.qnode;
    let tail = Addr(tsm.scratch);
    match (tsm.phase, step) {
        // ---- acquire ----
        (Phase::McsInit, Step::Value(_)) => {
            tsm.phase = Phase::McsSwap;
            rmw(m, t, tail, RmwOp::Swap(q.0));
        }
        (Phase::McsSwap, Step::Value(pred)) => {
            if pred == 0 {
                mcs_acquired(st, m, t);
            } else {
                // locked = 1, then link pred.next = q, then spin.
                tsm.phase = Phase::McsStoreLocked;
                // Stash the predecessor in the high scratch bits? No —
                // repurpose: the tail address is recoverable from lock_mem,
                // so scratch can hold the predecessor now.
                tsm.scratch = pred;
                write(m, t, q.add(1), 1);
            }
        }
        (Phase::McsStoreLocked, Step::Value(_)) => {
            let pred = Addr(tsm.scratch);
            tsm.phase = Phase::McsLinkPred;
            write(m, t, pred, q.0);
        }
        (Phase::McsLinkPred, Step::Value(_)) => {
            tsm.phase = Phase::McsSpinRead;
            read(m, t, q.add(1));
        }
        (Phase::McsSpinRead, Step::Value(v)) => {
            if v == 0 {
                mcs_acquired(st, m, t);
            } else {
                tsm.phase = Phase::McsSpinWait;
                st.counters.incr("sw_mcs_spins");
                st.guarded_watch(m, t, q.add(1));
            }
        }
        (Phase::McsSpinWait, Step::Wake) => {
            tsm.phase = Phase::McsSpinRead;
            read(m, t, q.add(1));
        }
        // ---- release ----
        (Phase::McsRelReadNext, Step::Value(next)) => {
            if next != 0 {
                tsm.phase = Phase::McsRelUnlock;
                write(m, t, Addr(next).add(1), 0);
            } else {
                tsm.phase = Phase::McsRelCas;
                rmw(
                    m,
                    t,
                    tail,
                    RmwOp::CompareSwap {
                        expect: q.0,
                        new: 0,
                    },
                );
            }
        }
        (Phase::McsRelCas, Step::Value(old)) => {
            if old == q.0 {
                // No successor: lock is free.
                st.released(m, t);
            } else {
                // A successor is mid-enqueue: wait for it to link.
                tsm.phase = Phase::McsRelSpinRead;
                read(m, t, q);
            }
        }
        (Phase::McsRelSpinRead, Step::Value(next)) => {
            if next != 0 {
                tsm.phase = Phase::McsRelUnlock;
                write(m, t, Addr(next).add(1), 0);
            } else {
                tsm.phase = Phase::McsRelSpinWait;
                st.guarded_watch(m, t, q);
            }
        }
        (Phase::McsRelSpinWait, Step::Wake) => {
            tsm.phase = Phase::McsRelSpinRead;
            read(m, t, q);
        }
        (Phase::McsRelUnlock, Step::Value(_)) => st.released(m, t),
        (_, Step::Wake) | (_, Step::Timer) => {}
        (p, s) => panic!("mcs machine: unexpected {s:?} in {p:?}"),
    }
}

/// The queue made this thread the lock holder. MRSW and BRAVO writers
/// continue into the reader-drain phases (BRAVO additionally revokes the
/// reader bias once drained); Fissile writers continue onto the lock word.
fn mcs_acquired(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    match st.alg {
        crate::SwAlg::Mrsw | crate::SwAlg::Bravo => crate::mrsw::writer_at_head(st, m, t),
        crate::SwAlg::Fissile => crate::fissile::writer_at_head(st, m, t),
        _ => st.grant(m, t),
    }
}

/// Re-drives a spin phase after the thread was rescheduled (its watch may
/// have been lost across a preemption or migration).
pub(crate) fn redrive(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let Some(tsm) = st.threads.get_mut(&t) else {
        return;
    };
    let q = tsm.qnode;
    match tsm.phase {
        Phase::McsSpinWait => {
            tsm.phase = Phase::McsSpinRead;
            read(m, t, q.add(1));
        }
        Phase::McsRelSpinWait => {
            tsm.phase = Phase::McsRelSpinRead;
            read(m, t, q);
        }
        _ => {}
    }
}
