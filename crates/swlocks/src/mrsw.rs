//! A fair-ish reader-writer queue lock with a shared reader counter — the
//! MRSW baseline.
//!
//! Readers: `fetch_add(rdr, +1)`, check `wactive`; if a writer is active,
//! roll back (`fetch_add(rdr, -1)`) and spin on `wactive`. The counter line
//! is the coherence hotspot the paper measures (two atomic RMWs per reader
//! minimum, four under writer contention).
//!
//! Writers: MCS-enqueue on the writer queue (reusing [`crate::mcs`]); at
//! the head, set `wactive`, then spin until the reader counter drains.
//! Release hands off to the next queued writer directly (keeping `wactive`
//! set) or clears `wactive`, waking readers.

use locksim_machine::{Mach, RmwOp, ThreadId};

use crate::state::{read, rmw, write, OpKind, Phase, Step, SwState};

const MINUS_ONE: u64 = u64::MAX; // wrapping -1 for FetchAdd

pub(crate) fn start_acquire_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::MrswRInc;
    rmw(m, t, lm.rdr, RmwOp::FetchAdd(1));
}

pub(crate) fn start_release_read(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    debug_assert_eq!(tsm.op, OpKind::Release);
    tsm.phase = Phase::MrswRRelDec;
    rmw(m, t, lm.rdr, RmwOp::FetchAdd(MINUS_ONE));
}

pub(crate) fn start_release_write(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let q = st.qnode(m, t, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.qnode = q;
    tsm.scratch = lm.tail.0;
    tsm.phase = Phase::MrswWRelReadNext;
    read(m, t, q);
}

/// An MRSW writer reached the head of the writer queue: set the active
/// flag and drain readers.
pub(crate) fn writer_at_head(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = st.threads[&t].lock;
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    tsm.phase = Phase::MrswWSetActive;
    write(m, t, lm.wactive, 1);
}

pub(crate) fn advance(st: &mut SwState, m: &mut Mach, t: ThreadId, step: Step) {
    let lock = match st.threads.get(&t) {
        Some(tsm) => tsm.lock,
        None => return,
    };
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    match (tsm.phase, step) {
        // ---- reader acquire ----
        (Phase::MrswRInc, Step::Value(_)) => {
            tsm.phase = Phase::MrswRCheckW;
            read(m, t, lm.wactive);
        }
        (Phase::MrswRCheckW, Step::Value(w)) => {
            if w == 0 {
                read_locked(st, m, t);
            } else {
                // Roll back and wait for the writer to finish.
                tsm.phase = Phase::MrswRDec;
                st.counters.incr("sw_mrsw_rollbacks");
                rmw(m, t, lm.rdr, RmwOp::FetchAdd(MINUS_ONE));
            }
        }
        (Phase::MrswRDec, Step::Value(_)) => {
            // Re-read before watching: the writer may already be gone.
            tsm.phase = Phase::MrswRWaitCheck;
            read(m, t, lm.wactive);
        }
        (Phase::MrswRWaitCheck, Step::Value(w)) => {
            if w == 0 {
                tsm.phase = Phase::MrswRInc;
                rmw(m, t, lm.rdr, RmwOp::FetchAdd(1));
            } else {
                tsm.phase = Phase::MrswRWait;
                st.guarded_watch(m, t, lm.wactive);
            }
        }
        (Phase::MrswRWait, Step::Wake) => {
            tsm.phase = Phase::MrswRWaitCheck;
            read(m, t, lm.wactive);
        }
        // ---- reader release ----
        (Phase::MrswRRelDec, Step::Value(_)) => st.released(m, t),
        // ---- writer acquire (post queue-head) ----
        (Phase::MrswWSetActive, Step::Value(_)) => {
            tsm.phase = Phase::MrswWReadRdr;
            read(m, t, lm.rdr);
        }
        (Phase::MrswWReadRdr, Step::Value(r)) => {
            if r == 0 {
                write_locked(st, m, t);
            } else {
                tsm.phase = Phase::MrswWWaitRdr;
                st.counters.incr("sw_mrsw_writer_waits");
                st.guarded_watch(m, t, lm.rdr);
            }
        }
        (Phase::MrswWWaitRdr, Step::Wake) => {
            tsm.phase = Phase::MrswWReadRdr;
            read(m, t, lm.rdr);
        }
        // ---- writer release ----
        (Phase::MrswWRelReadNext, Step::Value(next)) => {
            if next != 0 {
                // Direct handoff: wactive stays set for the next writer.
                tsm.phase = Phase::MrswWRelUnlock;
                write(m, t, locksim_machine::Addr(next).add(1), 0);
            } else {
                tsm.phase = Phase::MrswWRelCas;
                let q = tsm.qnode;
                rmw(
                    m,
                    t,
                    lm.tail,
                    RmwOp::CompareSwap {
                        expect: q.0,
                        new: 0,
                    },
                );
            }
        }
        (Phase::MrswWRelCas, Step::Value(old)) => {
            if old == tsm.qnode.0 {
                // Queue empty: clear the writer flag, waking readers.
                tsm.phase = Phase::MrswWRelClear;
                write(m, t, lm.wactive, 0);
            } else {
                tsm.phase = Phase::MrswWRelSpinRead;
                let q = tsm.qnode;
                read(m, t, q);
            }
        }
        (Phase::MrswWRelSpinRead, Step::Value(next)) => {
            if next != 0 {
                tsm.phase = Phase::MrswWRelUnlock;
                write(m, t, locksim_machine::Addr(next).add(1), 0);
            } else {
                tsm.phase = Phase::MrswWRelSpinWait;
                let q = tsm.qnode;
                st.guarded_watch(m, t, q);
            }
        }
        (Phase::MrswWRelSpinWait, Step::Wake) => {
            tsm.phase = Phase::MrswWRelSpinRead;
            let q = tsm.qnode;
            read(m, t, q);
        }
        (Phase::MrswWRelClear, Step::Value(_)) | (Phase::MrswWRelUnlock, Step::Value(_)) => {
            st.released(m, t)
        }
        (_, Step::Wake) | (_, Step::Timer) => {}
        (p, s) => panic!("mrsw machine: unexpected {s:?} in {p:?}"),
    }
}

/// The underlying read lock is held. A BRAVO slow-path reader continues
/// into the re-bias decision; MRSW grants directly.
fn read_locked(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    match st.alg {
        crate::SwAlg::Bravo => crate::bravo::slow_read_locked(st, m, t),
        _ => st.grant(m, t),
    }
}

/// The underlying write lock is held (queue head, readers drained). A
/// BRAVO writer continues into bias revocation; MRSW grants directly.
fn write_locked(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    match st.alg {
        crate::SwAlg::Bravo => crate::bravo::writer_locked(st, m, t),
        _ => st.grant(m, t),
    }
}

/// Re-drives a spin phase after reschedule (watches do not survive
/// migrations).
pub(crate) fn redrive(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let lock = match st.threads.get(&t) {
        Some(tsm) => tsm.lock,
        None => return,
    };
    let lm = st.lock_mem(m, lock);
    let tsm = st.threads.get_mut(&t).expect("tsm");
    match tsm.phase {
        Phase::MrswRWait => {
            tsm.phase = Phase::MrswRWaitCheck;
            read(m, t, lm.wactive);
        }
        Phase::MrswWWaitRdr => {
            tsm.phase = Phase::MrswWReadRdr;
            read(m, t, lm.rdr);
        }
        Phase::MrswWRelSpinWait => {
            tsm.phase = Phase::MrswWRelSpinRead;
            let q = tsm.qnode;
            read(m, t, q);
        }
        _ => {}
    }
}
