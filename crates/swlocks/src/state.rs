//! Shared state for the software-lock state machines.

use std::collections::HashMap;

use locksim_engine::stats::Counters;
use locksim_machine::{Addr, Checker, Mach, MemKind, Mode, RmwOp, ThreadId};

use crate::backend::SwAlg;

/// Issues a timed load on behalf of `t`.
pub(crate) fn read(m: &mut Mach, t: ThreadId, a: Addr) {
    m.backend_mem(t, a, MemKind::Load);
}

/// Issues a timed store on behalf of `t`.
pub(crate) fn write(m: &mut Mach, t: ThreadId, a: Addr, v: u64) {
    m.backend_mem(t, a, MemKind::Store(v));
}

/// Issues a timed atomic RMW on behalf of `t`.
pub(crate) fn rmw(m: &mut Mach, t: ThreadId, a: Addr, op: RmwOp) {
    m.backend_mem(t, a, MemKind::Rmw(op));
}

/// One-shot invalidation watch on the line of `a`.
pub(crate) fn watch(m: &mut Mach, t: ThreadId, a: Addr) {
    m.watch_line(t, a.line());
}

/// Event driving a lock state machine forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// A memory operation completed with this (old) value.
    Value(u64),
    /// A watched line was invalidated.
    Wake,
    /// A parked thread's timer fired.
    Timer,
}

/// Why a timer was armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerPurpose {
    /// Parked adaptive-mutex spinner re-checks the lock.
    Park,
    /// Trylock budget expiry.
    Abort,
    /// Spin-wait fallback: if the thread is still in the recorded wait
    /// phase when this fires, re-read instead of trusting the wake. Real
    /// spin loops poll; the invalidation watch is only a fast path.
    Fallback(Phase),
}

/// What a thread is currently doing to its lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Acquire,
    Release,
}

/// Phases of all the algorithms' state machines (flat enum; each algorithm
/// uses its own subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    // TAS
    TasRmw,
    /// A trylock's swap won after its budget expired: store 0 back, then
    /// report failure.
    TasUndo,
    // TATAS / Posix
    TatasRead,
    TatasWait,
    TatasRmw,
    PosixParked,
    // simple release (store 0)
    SimpleRelStore,
    // MCS acquire
    McsInit,
    McsSwap,
    McsStoreLocked,
    McsLinkPred,
    McsSpinRead,
    McsSpinWait,
    // MCS release
    McsRelReadNext,
    McsRelCas,
    McsRelSpinRead,
    McsRelSpinWait,
    McsRelUnlock,
    // MRSW read acquire
    MrswRInc,
    MrswRCheckW,
    MrswRDec,
    MrswRWaitCheck,
    MrswRWait,
    // MRSW read release
    MrswRRelDec,
    // MRSW write acquire
    MrswWSetActive,
    MrswWReadRdr,
    MrswWWaitRdr,
    // MRSW write release
    MrswWRelReadNext,
    MrswWRelCas,
    MrswWRelClear,
    MrswWRelSpinRead,
    MrswWRelSpinWait,
    MrswWRelUnlock,
    // BRAVO reader fast path (publish into the visible-readers table)
    BravoRReadBias,
    BravoRPublish,
    BravoRRecheckBias,
    BravoRUndo,
    BravoRRelClear,
    // BRAVO slow reader re-biasing the lock after the inhibit window
    BravoRSetBias,
    // BRAVO writer revocation (runs after the underlying write acquire)
    BravoWReadBias,
    BravoWClearBias,
    BravoWScanRead,
    BravoWScanWait,
    // Fissile reader aggregation on the lock word
    FisRInc,
    FisRDec,
    FisRWaitCheck,
    FisRWait,
    FisRRelDec,
    // Fissile writer (runs after winning the inner MCS queue)
    FisWSetBit,
    FisWReadWord,
    FisWWait,
    FisWRelClear,
}

/// Per-thread in-flight lock operation.
#[derive(Debug)]
pub(crate) struct Tsm {
    pub lock: Addr,
    pub mode: Mode,
    pub op: OpKind,
    pub phase: Phase,
    /// This thread's queue node for `lock` (queue locks).
    pub qnode: Addr,
    /// Scratch register (predecessor / next pointer / table slot).
    pub scratch: u64,
    /// Second scratch register (revocation-scan start cycle).
    pub scratch2: u64,
    /// Trylock expired; unwind instead of granting.
    pub aborted: bool,
    /// Consecutive spin wake-ups (drives Posix parking).
    pub spins: u64,
    /// Consecutive fallback timers that fired with no intervening
    /// invalidation wake — a measure of how long the spin has been futile.
    /// Past [`YIELD_AFTER_FUTILE`] an oversubscribed spinner donates its
    /// timeslice instead of burning it.
    pub futile: u32,
}

/// Futile fallback periods (5 000 cycles each) a spinner tolerates before
/// yielding its core when other threads are waiting to run. Low enough
/// that a handoff stalled behind a preempted queue head recovers well
/// inside the chaos detector's quiescence window; high enough that the
/// oversubscription anomaly of pure spinning (Fig. 10) still shows.
pub(crate) const YIELD_AFTER_FUTILE: u32 = 6;

/// Side memory for one lock (allocated lazily, each word on its own line).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LockMem {
    /// MCS tail pointer / MRSW writer-queue tail.
    pub tail: Addr,
    /// MRSW reader counter (the hotspot line).
    pub rdr: Addr,
    /// MRSW writer-active flag.
    pub wactive: Addr,
}

/// Slots in the BRAVO global visible-readers table. Each slot is its own
/// cache line; a fast-path reader publishes into `hash(thread, lock)` and
/// a revoking writer scans all of them. Sized so the simulator's ≤64-core
/// workloads collide occasionally (exercising the slow path) without
/// making revocation scans dominate.
pub(crate) const BRAVO_SLOTS: usize = 16;

/// Multiplier applied to a revocation scan's measured duration to derive
/// the bias-inhibit window (BRAVO's adaptive `N` — the paper uses 9).
pub(crate) const BRAVO_INHIBIT_MULT: u64 = 9;

/// Per-lock BRAVO metadata: the bias-flag line plus the host-side
/// re-bias inhibit deadline (a cycle count, not simulated memory — in a
/// real implementation this word rides in the lock struct and is only
/// touched under the write lock, so modelling it as free does not hide
/// coherence traffic).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BravoMeta {
    pub bias: Addr,
    pub inhibit_until: u64,
}

/// How a granted BRAVO reader entered the lock — decides which release
/// path its unlock must take (the slot store vs the underlying counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReaderPath {
    /// Fast path: holds visible-readers table slot `i`.
    Fast(usize),
    /// Slow path: holds a unit of the underlying MRSW reader counter.
    Slow,
}

/// Shared backend state handed to the per-algorithm modules.
pub(crate) struct SwState {
    pub alg: SwAlg,
    pub threads: HashMap<ThreadId, Tsm>,
    pub mem: HashMap<Addr, LockMem>,
    pub qnodes: HashMap<(ThreadId, Addr), Addr>,
    pub timers: HashMap<u64, (ThreadId, TimerPurpose)>,
    pub timer_seq: u64,
    pub counters: Counters,
    pub checker: Checker,
    /// BRAVO per-lock metadata (lazily allocated; empty for other algs so
    /// the allocation sequence of existing algorithms is untouched).
    pub bravo: HashMap<Addr, BravoMeta>,
    /// BRAVO global visible-readers table, shared by all locks.
    pub rtable: Vec<Addr>,
    /// Which path each granted BRAVO reader took (keyed by holder).
    pub rpaths: HashMap<(ThreadId, Addr), ReaderPath>,
    /// Fissile per-lock word line (WRITE bit 0, reader count above it).
    pub fissile: HashMap<Addr, Addr>,
}

impl SwState {
    pub fn new(alg: SwAlg) -> Self {
        SwState {
            alg,
            threads: HashMap::new(),
            mem: HashMap::new(),
            qnodes: HashMap::new(),
            timers: HashMap::new(),
            timer_seq: 0,
            counters: Counters::new(),
            checker: Checker::new(),
            bravo: HashMap::new(),
            rtable: Vec::new(),
            rpaths: HashMap::new(),
            fissile: HashMap::new(),
        }
    }

    /// Lazily allocates the side memory for a lock.
    pub fn lock_mem(&mut self, m: &mut Mach, lock: Addr) -> LockMem {
        if let Some(&lm) = self.mem.get(&lock) {
            return lm;
        }
        let lm = LockMem {
            tail: m.alloc().alloc_line(),
            rdr: m.alloc().alloc_line(),
            wactive: m.alloc().alloc_line(),
        };
        self.mem.insert(lock, lm);
        lm
    }

    /// Lazily allocates the BRAVO metadata (bias line) for a lock.
    pub fn bravo_meta(&mut self, m: &mut Mach, lock: Addr) -> BravoMeta {
        if let Some(&meta) = self.bravo.get(&lock) {
            return meta;
        }
        let meta = BravoMeta {
            bias: m.alloc().alloc_line(),
            inhibit_until: 0,
        };
        self.bravo.insert(lock, meta);
        meta
    }

    /// Lazily allocates the global visible-readers table (one line per
    /// slot) and returns slot `i`'s address.
    pub fn rtable_slot(&mut self, m: &mut Mach, i: usize) -> Addr {
        if self.rtable.is_empty() {
            self.rtable = (0..BRAVO_SLOTS).map(|_| m.alloc().alloc_line()).collect();
        }
        self.rtable[i]
    }

    /// Lazily allocates the Fissile lock word for a lock.
    pub fn fissile_word(&mut self, m: &mut Mach, lock: Addr) -> Addr {
        if let Some(&w) = self.fissile.get(&lock) {
            return w;
        }
        let w = m.alloc().alloc_line();
        self.fissile.insert(lock, w);
        w
    }

    /// Lazily allocates this thread's queue node for `lock` (one line:
    /// word 0 = next, word 1 = locked flag).
    pub fn qnode(&mut self, m: &mut Mach, t: ThreadId, lock: Addr) -> Addr {
        if let Some(&q) = self.qnodes.get(&(t, lock)) {
            return q;
        }
        let q = m.alloc().alloc_line();
        self.qnodes.insert((t, lock), q);
        q
    }

    /// Arms a parked-thread timer.
    pub fn park(&mut self, m: &mut Mach, t: ThreadId, delay: u64) {
        self.arm(m, t, delay, TimerPurpose::Park);
    }

    /// Arms a trylock-expiry timer.
    pub fn arm_abort(&mut self, m: &mut Mach, t: ThreadId, delay: u64) {
        self.arm(m, t, delay, TimerPurpose::Abort);
    }

    /// Watches `a`'s line and arms a fallback re-check for the thread's
    /// current wait phase.
    pub fn guarded_watch(&mut self, m: &mut Mach, t: ThreadId, a: Addr) {
        watch(m, t, a);
        let phase = self.threads[&t].phase;
        self.arm(m, t, 5_000, TimerPurpose::Fallback(phase));
    }

    fn arm(&mut self, m: &mut Mach, t: ThreadId, delay: u64, purpose: TimerPurpose) {
        let token = self.timer_seq;
        self.timer_seq += 1;
        self.timers.insert(token, (t, purpose));
        m.set_timer(delay, token);
    }

    /// Completes an acquire: checker + grant, state cleared.
    pub fn grant(&mut self, m: &mut Mach, t: ThreadId) {
        let tsm = self.threads.remove(&t).expect("grant without op");
        debug_assert_eq!(tsm.op, OpKind::Acquire);
        self.checker
            .on_grant_traced(tsm.lock, t, tsm.mode, m.tracer(), m.lockstat());
        self.counters.incr("sw_grants");
        m.grant_lock(t);
    }

    /// Completes a failed trylock.
    pub fn fail(&mut self, m: &mut Mach, t: ThreadId) {
        self.threads.remove(&t);
        self.counters.incr("sw_tryfails");
        m.fail_lock(t);
    }

    /// Completes a release. (The checker records the release at issue time
    /// in the backend — the critical section ends when the thread *invokes*
    /// release; the store's completion message can legitimately arrive
    /// after the next owner's grant.)
    pub fn released(&mut self, m: &mut Mach, t: ThreadId) {
        let tsm = self
            .threads
            .remove(&t)
            .expect("release completion without op");
        debug_assert_eq!(tsm.op, OpKind::Release);
        self.counters.incr("sw_releases");
        m.complete_release(t);
    }
}
