//! TAS, TATAS and adaptive-mutex ("posix") state machines.
//!
//! The lock word is the user's lock address itself: 0 = free, 1 = held.
//! TAS hammers atomic swaps (each one a GetM round trip); TATAS spins on a
//! shared copy and swaps only when it reads 0; the adaptive mutex is TATAS
//! with a park after a few fruitless wake-ups.

use locksim_machine::{Mach, RmwOp, ThreadId};

use crate::state::{read, rmw, write, OpKind, Phase, Step, SwState, Tsm};

/// Wake-ups a Posix-mutex spinner tolerates before parking.
const POSIX_SPIN_LIMIT: u64 = 3;
/// Park duration (futex-wake latency stand-in), cycles.
const POSIX_PARK: u64 = 3_000;

pub(crate) fn start_acquire(st: &mut SwState, m: &mut Mach, t: ThreadId, tatas: bool) {
    let tsm = st.threads.get_mut(&t).expect("tsm");
    if tatas {
        tsm.phase = Phase::TatasRead;
        let lock = tsm.lock;
        read(m, t, lock);
    } else {
        tsm.phase = Phase::TasRmw;
        let lock = tsm.lock;
        rmw(m, t, lock, RmwOp::Swap(1));
    }
}

pub(crate) fn start_release(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let tsm = st.threads.get_mut(&t).expect("tsm");
    debug_assert_eq!(tsm.op, OpKind::Release);
    tsm.phase = Phase::SimpleRelStore;
    let lock = tsm.lock;
    write(m, t, lock, 0);
}

/// Advances the TAS/TATAS/Posix machine. `posix` enables parking.
pub(crate) fn advance(st: &mut SwState, m: &mut Mach, t: ThreadId, step: Step, posix: bool) {
    let Some(tsm) = st.threads.get_mut(&t) else {
        return;
    };
    let lock = tsm.lock;
    match (tsm.phase, step) {
        (Phase::TasRmw, Step::Value(old)) => {
            if tsm.aborted {
                // The swap may have succeeded after the trylock expired:
                // undo a successful grab, then report failure. The thread
                // stays blocked until the undo completes so no later
                // operation can race this one's completions.
                if old == 0 {
                    tsm.phase = Phase::TasUndo;
                    write(m, t, lock, 0);
                } else {
                    st.fail(m, t);
                }
            } else if old == 0 {
                st.grant(m, t);
            } else {
                st.counters.incr("sw_tas_retries");
                rmw(m, t, lock, RmwOp::Swap(1));
            }
        }
        (Phase::TatasRead, Step::Value(v)) => {
            if tsm.aborted {
                st.fail(m, t);
            } else if v == 0 {
                tsm.phase = Phase::TatasRmw;
                rmw(m, t, lock, RmwOp::Swap(1));
            } else {
                tsm.phase = Phase::TatasWait;
                tsm.spins += 1;
                if posix && tsm.spins > POSIX_SPIN_LIMIT {
                    tsm.phase = Phase::PosixParked;
                    st.counters.incr("sw_posix_parks");
                    st.park(m, t, POSIX_PARK);
                } else {
                    st.guarded_watch(m, t, lock);
                }
            }
        }
        (Phase::TatasRmw, Step::Value(old)) => {
            if tsm.aborted {
                if old == 0 {
                    tsm.phase = Phase::TasUndo;
                    write(m, t, lock, 0);
                } else {
                    st.fail(m, t);
                }
            } else if old == 0 {
                st.grant(m, t);
            } else {
                // Lost the race: back to spinning.
                tsm.phase = Phase::TatasRead;
                st.counters.incr("sw_tatas_races");
                read(m, t, lock);
            }
        }
        (Phase::TatasWait, Step::Wake) => {
            if tsm.aborted {
                st.fail(m, t);
            } else {
                tsm.phase = Phase::TatasRead;
                read(m, t, lock);
            }
        }
        (Phase::PosixParked, Step::Timer) => {
            if tsm.aborted {
                st.fail(m, t);
            } else {
                tsm.phase = Phase::TatasRead;
                tsm.spins = 0;
                read(m, t, lock);
            }
        }
        (Phase::TasUndo, Step::Value(_)) => st.fail(m, t),
        (Phase::SimpleRelStore, Step::Value(_)) => st.released(m, t),
        // Spurious wake-ups (e.g. a watch firing after the op finished its
        // read) are ignored.
        (_, Step::Wake) | (_, Step::Timer) => {}
        (p, s) => panic!("tas machine: unexpected {s:?} in {p:?}"),
    }
}

/// Marks a pending acquire as aborted; the machine unwinds at its next
/// step. Spinners parked on a watch or timer are failed immediately.
pub(crate) fn abort(st: &mut SwState, m: &mut Mach, t: ThreadId) {
    let Some(tsm) = st.threads.get_mut(&t) else {
        return;
    };
    match tsm.phase {
        Phase::TatasWait | Phase::PosixParked => {
            st.fail(m, t);
        }
        _ => {
            tsm.aborted = true;
        }
    }
}

/// Creates the per-thread record for an acquire/release (shared by all
/// simple-word algorithms).
pub(crate) fn new_tsm(lock: locksim_machine::Addr, mode: locksim_machine::Mode, op: OpKind) -> Tsm {
    Tsm {
        lock,
        mode,
        op,
        phase: Phase::TasRmw,
        qnode: locksim_machine::Addr(0),
        scratch: 0,
        scratch2: 0,
        aborted: false,
        spins: 0,
        futile: 0,
    }
}
