//! Property tests for the reader-writer software backends (MRSW, BRAVO,
//! Fissile): randomized read/write schedules over random machine shapes
//! must complete with exact grant accounting. The backend's exclusion
//! checker panics on any reader/writer or writer/writer overlap, so every
//! case is also a safety check; `run_to_completion` returning at all is
//! the liveness half (a wedged schedule would spin the watchdog forever).

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use locksim_machine::testing::FnProgram;
use locksim_machine::{Action, Addr, Ctx, MachineConfig, Mode, Outcome, World};
use locksim_swlocks::{SwAlg, SwLockBackend};

/// A per-thread op script: (is_write, cs_cycles, think_cycles).
#[derive(Debug, Clone)]
struct OpScript {
    ops: Vec<(bool, u16, u16)>,
}

fn spawn_script(w: &mut World, lock: Addr, script: OpScript, done: Rc<RefCell<u64>>) {
    let mut i = 0;
    let mut stage = 0u8;
    w.spawn(Box::new(FnProgram(
        #[allow(clippy::never_loop)]
        move |_: &mut Ctx<'_>, _: Outcome| loop {
            if i == script.ops.len() {
                return Action::Done;
            }
            let (wr, cs, think) = script.ops[i];
            let mode = if wr { Mode::Write } else { Mode::Read };
            match stage {
                0 => {
                    stage = 1;
                    return Action::Acquire {
                        lock,
                        mode,
                        try_for: None,
                    };
                }
                1 => {
                    stage = 2;
                    return Action::Compute(u64::from(cs) + 1);
                }
                2 => {
                    stage = 3;
                    return Action::Release { lock, mode };
                }
                _ => {
                    *done.borrow_mut() += 1;
                    stage = 0;
                    i += 1;
                    return Action::Compute(u64::from(think) + 1);
                }
            }
        },
    )));
}

fn rw_schedule_case(alg: SwAlg, chips: usize, scripts: Vec<Vec<(bool, u16, u16)>>) {
    let mut w = World::new(
        MachineConfig::model_a(chips),
        Box::new(SwLockBackend::new(alg)),
        4321,
    );
    let lock = w.mach().alloc().alloc_line();
    let done = Rc::new(RefCell::new(0u64));
    let mut expected = 0;
    for ops in scripts {
        expected += ops.len() as u64;
        spawn_script(&mut w, lock, OpScript { ops }, done.clone());
    }
    w.run_to_completion();
    assert_eq!(*done.borrow(), expected, "{alg:?}: ops lost");
    assert_eq!(
        w.report_counters().get("locks_granted"),
        expected,
        "{alg:?}: grant accounting off"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BRAVO: random read/write schedules complete with every acquire
    /// granted exactly once (exclusion enforced by the checker throughout).
    #[test]
    fn bravo_random_schedules_complete(
        chips in 2usize..12,
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(), 0u16..200, 0u16..200), 1..12),
            1..10),
    ) {
        rw_schedule_case(SwAlg::Bravo, chips, scripts);
    }

    /// Fissile: same property.
    #[test]
    fn fissile_random_schedules_complete(
        chips in 2usize..12,
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(), 0u16..200, 0u16..200), 1..12),
            1..10),
    ) {
        rw_schedule_case(SwAlg::Fissile, chips, scripts);
    }

    /// MRSW (the slow-path substrate BRAVO revokes onto) under the same
    /// schedules — a regression net for the shared mrsw/mcs plumbing.
    #[test]
    fn mrsw_random_schedules_complete(
        chips in 2usize..12,
        scripts in proptest::collection::vec(
            proptest::collection::vec(
                (any::<bool>(), 0u16..200, 0u16..200), 1..12),
            1..10),
    ) {
        rw_schedule_case(SwAlg::Mrsw, chips, scripts);
    }
}
