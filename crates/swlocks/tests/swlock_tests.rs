//! End-to-end tests of the software lock algorithms on the simulated
//! machine. The backend's exclusion checker panics on violations, so
//! every run is also an invariant check.

use std::cell::RefCell;
use std::rc::Rc;

use locksim_machine::testing::{FnProgram, ScriptProgram};
use locksim_machine::{Action, Addr, Ctx, MachineConfig, Mode, Outcome, Program, World};
use locksim_swlocks::{SwAlg, SwLockBackend};

/// Counter-increment critical-section loop (same shape as the LCU tests).
struct CsLoop {
    lock: Addr,
    counter: Addr,
    iters: u32,
    write_pct: u32,
    i: u32,
    stage: u8,
    val: u64,
    is_writer: bool,
}

impl CsLoop {
    fn new(lock: Addr, counter: Addr, iters: u32, write_pct: u32) -> Self {
        CsLoop {
            lock,
            counter,
            iters,
            write_pct,
            i: 0,
            stage: 0,
            val: 0,
            is_writer: false,
        }
    }
}

impl Program for CsLoop {
    fn resume(&mut self, ctx: &mut Ctx<'_>, outcome: Outcome) -> Action {
        loop {
            match self.stage {
                0 => {
                    if self.i == self.iters {
                        return Action::Done;
                    }
                    self.is_writer = ctx.rng.below(100) < self.write_pct as u64;
                    self.stage = 1;
                    let mode = if self.is_writer {
                        Mode::Write
                    } else {
                        Mode::Read
                    };
                    return Action::Acquire {
                        lock: self.lock,
                        mode,
                        try_for: None,
                    };
                }
                1 => {
                    self.stage = 2;
                    return Action::Read(self.counter);
                }
                2 => {
                    let Outcome::Value(v) = outcome else {
                        panic!("expected value")
                    };
                    self.val = v;
                    self.stage = 3;
                    return Action::Compute(50);
                }
                3 => {
                    self.stage = 4;
                    if self.is_writer {
                        return Action::Write(self.counter, self.val + 1);
                    }
                    continue;
                }
                4 => {
                    self.stage = 5;
                    let mode = if self.is_writer {
                        Mode::Write
                    } else {
                        Mode::Read
                    };
                    return Action::Release {
                        lock: self.lock,
                        mode,
                    };
                }
                5 => {
                    self.i += 1;
                    self.stage = 0;
                    return Action::Compute(100);
                }
                _ => unreachable!(),
            }
        }
    }
}

fn world(alg: SwAlg, chips: usize, seed: u64) -> World {
    World::new(
        MachineConfig::model_a(chips),
        Box::new(SwLockBackend::new(alg)),
        seed,
    )
}

fn mutex_counter_test(alg: SwAlg) {
    let mut w = world(alg, 8, 1);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    const N: u32 = 20;
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, N, 100)));
    }
    w.run_to_completion();
    assert_eq!(
        w.mach().mem_peek(counter),
        8 * N as u64,
        "{alg:?} lost updates"
    );
}

#[test]
fn tas_mutual_exclusion() {
    mutex_counter_test(SwAlg::Tas);
}

#[test]
fn tatas_mutual_exclusion() {
    mutex_counter_test(SwAlg::Tatas);
}

#[test]
fn mcs_mutual_exclusion() {
    mutex_counter_test(SwAlg::Mcs);
}

#[test]
fn mrsw_write_mutual_exclusion() {
    mutex_counter_test(SwAlg::Mrsw);
}

#[test]
fn posix_mutual_exclusion() {
    mutex_counter_test(SwAlg::Posix);
}

#[test]
fn mrsw_mixed_readers_writers() {
    let mut w = world(SwAlg::Mrsw, 16, 2);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for t in 0..16 {
        let pct = [0u32, 25, 50, 100][t % 4];
        w.spawn(Box::new(CsLoop::new(lock, counter, 12, pct)));
    }
    w.run_to_completion();
    // Completion without checker panic proves exclusion; every acquire
    // granted exactly once:
    let granted = w.report_counters().get("locks_granted");
    assert_eq!(granted, 16 * 12);
}

#[test]
fn mrsw_readers_overlap() {
    let mut w = world(SwAlg::Mrsw, 8, 3);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(30_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    let t = w.mach().now().cycles();
    assert!(t < 2 * 30_000, "MRSW readers serialized: {t}");
}

#[test]
fn mrsw_writer_eventually_beats_readers() {
    let mut w = world(SwAlg::Mrsw, 8, 4);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 30, 0)));
    }
    w.spawn(Box::new(CsLoop::new(lock, counter, 5, 100)));
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 5);
}

#[test]
fn mcs_local_spin_beats_tas_messaging_under_contention() {
    // MCS's coherence traffic per handoff is bounded; TAS hammers the
    // directory. Under heavy contention MCS should finish no slower (and
    // usually faster) and with fewer network messages per CS.
    let run = |alg: SwAlg| {
        let mut w = world(alg, 16, 5);
        let lock = w.mach().alloc().alloc_line();
        let counter = w.mach().alloc().alloc_line();
        for _ in 0..16 {
            w.spawn(Box::new(CsLoop::new(lock, counter, 10, 100)));
        }
        w.run_to_completion();
        let msgs =
            w.report_counters().get("net_control_msgs") + w.report_counters().get("net_data_msgs");
        (w.mach().now().cycles(), msgs)
    };
    let (_t_tas, m_tas) = run(SwAlg::Tas);
    let (_t_mcs, m_mcs) = run(SwAlg::Mcs);
    assert!(
        m_mcs < m_tas,
        "MCS should use fewer messages: mcs={m_mcs} tas={m_tas}"
    );
}

#[test]
fn tatas_trylock_fails_and_recovers() {
    let mut w = world(SwAlg::Tatas, 4, 6);
    let lock = w.mach().alloc().alloc_line();
    let result = Rc::new(RefCell::new(None));
    let r2 = result.clone();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(60_000),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    let mut stage = 0;
    w.spawn(Box::new(FnProgram(
        move |_: &mut Ctx<'_>, outcome: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(2_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: Some(5_000),
                },
                3 => {
                    *r2.borrow_mut() = Some(outcome);
                    Action::Acquire {
                        lock,
                        mode: Mode::Write,
                        try_for: None,
                    }
                }
                4 => Action::Release {
                    lock,
                    mode: Mode::Write,
                },
                _ => Action::Done,
            }
        },
    )));
    w.run_to_completion();
    assert_eq!(*result.borrow(), Some(Outcome::Failed));
    assert_eq!(w.report_counters().get("locks_granted"), 2);
}

#[test]
fn tas_trylock_success_path() {
    let mut w = world(SwAlg::Tas, 2, 7);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: Some(10_000),
        },
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    assert_eq!(w.report_counters().get("locks_granted"), 1);
}

#[test]
fn mcs_fifo_order() {
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut w = world(SwAlg::Mcs, 8, 8);
    let lock = w.mach().alloc().alloc_line();
    for i in 0..5u32 {
        let order = order.clone();
        let mut stage = 0;
        w.spawn(Box::new(FnProgram(move |ctx: &mut Ctx<'_>, _: Outcome| {
            stage += 1;
            match stage {
                1 => Action::Compute(1 + i as u64 * 5_000),
                2 => Action::Acquire {
                    lock,
                    mode: Mode::Write,
                    try_for: None,
                },
                3 => {
                    order.borrow_mut().push(ctx.tid.0);
                    Action::Compute(40_000)
                }
                4 => Action::Release {
                    lock,
                    mode: Mode::Write,
                },
                _ => Action::Done,
            }
        })));
    }
    w.run_to_completion();
    assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4], "MCS FIFO violated");
}

#[test]
fn oversubscription_queue_lock_suffers_but_completes() {
    // 8 threads on 2 cores with a contended MCS lock: handoffs to
    // preempted threads stall until their next quantum, but correctness
    // must hold.
    let mut cfg = MachineConfig::model_a(2);
    cfg.quantum = 15_000;
    let mut w = World::new(cfg, Box::new(SwLockBackend::new(SwAlg::Mcs)), 9);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 6, 100)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 8 * 6);
}

#[test]
fn posix_parks_under_contention() {
    let mut w = world(SwAlg::Posix, 8, 10);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..8 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 10, 100)));
    }
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 80);
    assert!(
        w.report_counters().get("sw_posix_parks") > 0,
        "adaptive mutex should park under contention"
    );
}

#[test]
fn uncontended_reacquire_is_cache_hit_fast() {
    // Implicit biasing: a TATAS lock repeatedly taken by one thread stays
    // in its L1; each acquire is a couple of L1 hits.
    let mut w = world(SwAlg::Tatas, 4, 11);
    let lock = w.mach().alloc().alloc_line();
    let mut script = Vec::new();
    for _ in 0..50 {
        script.push(Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        });
        script.push(Action::Release {
            lock,
            mode: Mode::Write,
        });
    }
    w.spawn(Box::new(ScriptProgram::new(script)));
    w.run_to_completion();
    let total = w.mach().now().cycles();
    // First acquire pays a memory miss (~200cy); the other 49 rounds are
    // L1-resident (< ~40cy each).
    assert!(total < 3_000, "biased reacquire too slow: {total}");
}

#[test]
fn determinism() {
    let run = || {
        let mut w = world(SwAlg::Mrsw, 8, 12);
        let lock = w.mach().alloc().alloc_line();
        let counter = w.mach().alloc().alloc_line();
        for _ in 0..8 {
            w.spawn(Box::new(CsLoop::new(lock, counter, 8, 50)));
        }
        w.run_to_completion();
        w.mach().now().cycles()
    };
    assert_eq!(run(), run());
}

#[test]
#[should_panic(expected = "does not support read locking")]
fn mcs_rejects_read_mode() {
    let mut w = world(SwAlg::Mcs, 2, 13);
    let lock = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![Action::Acquire {
        lock,
        mode: Mode::Read,
        try_for: None,
    }])));
    w.run_to_completion();
}

// ---------------------------------------------------------------------------
// BRAVO (biased reader-writer lock)
// ---------------------------------------------------------------------------

#[test]
fn bravo_write_mutual_exclusion() {
    mutex_counter_test(SwAlg::Bravo);
}

#[test]
fn fissile_write_mutual_exclusion() {
    mutex_counter_test(SwAlg::Fissile);
}

#[test]
fn bravo_mixed_readers_writers() {
    let mut w = world(SwAlg::Bravo, 16, 2);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for t in 0..16 {
        let pct = [0u32, 25, 50, 100][t % 4];
        w.spawn(Box::new(CsLoop::new(lock, counter, 12, pct)));
    }
    w.run_to_completion();
    let granted = w.report_counters().get("locks_granted");
    assert_eq!(granted, 16 * 12);
}

#[test]
fn fissile_mixed_readers_writers() {
    let mut w = world(SwAlg::Fissile, 16, 2);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for t in 0..16 {
        let pct = [0u32, 25, 50, 100][t % 4];
        w.spawn(Box::new(CsLoop::new(lock, counter, 12, pct)));
    }
    w.run_to_completion();
    let granted = w.report_counters().get("locks_granted");
    assert_eq!(granted, 16 * 12);
}

#[test]
fn bravo_readers_overlap() {
    let mut w = world(SwAlg::Bravo, 8, 3);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(30_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    let t = w.mach().now().cycles();
    assert!(t < 2 * 30_000, "BRAVO readers serialized: {t}");
}

#[test]
fn fissile_readers_overlap() {
    let mut w = world(SwAlg::Fissile, 8, 3);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(30_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.run_to_completion();
    let t = w.mach().now().cycles();
    assert!(t < 2 * 30_000, "Fissile readers serialized: {t}");
}

#[test]
fn bravo_reader_path_accounting_is_exhaustive() {
    // Every granted read went through exactly one of the two reader paths:
    // the biased fast path (visible-readers table) or the underlying MRSW
    // slow path. A read-heavy mixed run must conserve the accounting.
    let mut w = world(SwAlg::Bravo, 16, 21);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..16 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 15, 10)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    let fast = c.get("sw_bravo_fast_reads");
    let slow = c.get("sw_bravo_slow_reads");
    let writes = w.mach().mem_peek(counter);
    assert_eq!(
        fast + slow + writes,
        16 * 15,
        "reader paths + writes must cover every grant (fast={fast} slow={slow} writes={writes})"
    );
    assert!(fast > 0, "read-heavy run never took the biased fast path");
}

#[test]
fn bravo_writer_revokes_bias() {
    // Readers first establish bias via the fast path; a writer arriving
    // later must clear the bias flag and scan the visible-readers table.
    let mut w = world(SwAlg::Bravo, 8, 22);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 10, 0)));
    }
    // Delayed writer: lets readers publish into the table first.
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(2_000),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Write(counter, 777),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("sw_bravo_fast_reads") > 0,
        "readers never used the fast path"
    );
    assert!(
        c.get("sw_bravo_revocations") >= 1,
        "writer never revoked the bias"
    );
}

#[test]
fn bravo_rebias_after_inhibit_window() {
    // After a revocation, readers fall back to the slow path until the
    // adaptive inhibit window (9x the revocation scan time) expires; a
    // slow reader granted after that point re-installs the bias.
    let mut w = world(SwAlg::Bravo, 8, 23);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    // One early writer to revoke the (bootstrapped) bias, then a long
    // stream of readers with think time far exceeding the inhibit window.
    w.spawn(Box::new(CsLoop::new(lock, counter, 1, 100)));
    for _ in 0..4 {
        let mut script = Vec::new();
        for _ in 0..8 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            });
            script.push(Action::Compute(100));
            script.push(Action::Release {
                lock,
                mode: Mode::Read,
            });
            script.push(Action::Compute(20_000));
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("sw_bravo_rebias") >= 1,
        "no reader ever re-biased after the inhibit window"
    );
    // Re-biasing must actually restore the fast path for later readers.
    assert!(
        c.get("sw_bravo_fast_reads") > 0,
        "fast path never used after re-bias"
    );
}

// ---------------------------------------------------------------------------
// Fissile (inner MCS core + outer reader aggregation word)
// ---------------------------------------------------------------------------

#[test]
fn fissile_uncontended_reads_take_fast_path() {
    let mut w = world(SwAlg::Fissile, 8, 24);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        let mut script = Vec::new();
        for _ in 0..10 {
            script.push(Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            });
            script.push(Action::Compute(50));
            script.push(Action::Release {
                lock,
                mode: Mode::Read,
            });
        }
        w.spawn(Box::new(ScriptProgram::new(script)));
    }
    w.run_to_completion();
    let c = w.report_counters();
    assert_eq!(
        c.get("sw_fissile_read_fast"),
        6 * 10,
        "every read in a writer-free run is a single FetchAdd"
    );
    assert_eq!(c.get("sw_fissile_rollbacks"), 0);
}

#[test]
fn fissile_reader_rolls_back_under_writer() {
    // A writer holding the lock forces arriving readers to undo their
    // optimistic increment and wait for the write bit to clear.
    let mut w = world(SwAlg::Fissile, 4, 25);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Compute(30_000),
        Action::Write(counter, 1),
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(5_000),
        Action::Acquire {
            lock,
            mode: Mode::Read,
            try_for: None,
        },
        Action::Read(counter),
        Action::Release {
            lock,
            mode: Mode::Read,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("sw_fissile_rollbacks") >= 1,
        "reader should have rolled back its optimistic increment"
    );
    assert_eq!(c.get("locks_granted"), 2);
}

#[test]
fn fissile_writer_waits_for_reader_drain() {
    // Readers in their critical section force the queued writer to spin on
    // the aggregation word until the count drains to just the write bit.
    let mut w = world(SwAlg::Fissile, 8, 26);
    let lock = w.mach().alloc().alloc_line();
    for _ in 0..4 {
        w.spawn(Box::new(ScriptProgram::new(vec![
            Action::Acquire {
                lock,
                mode: Mode::Read,
                try_for: None,
            },
            Action::Compute(20_000),
            Action::Release {
                lock,
                mode: Mode::Read,
            },
        ])));
    }
    w.spawn(Box::new(ScriptProgram::new(vec![
        Action::Compute(3_000),
        Action::Acquire {
            lock,
            mode: Mode::Write,
            try_for: None,
        },
        Action::Release {
            lock,
            mode: Mode::Write,
        },
    ])));
    w.run_to_completion();
    let c = w.report_counters();
    assert!(
        c.get("sw_fissile_writer_waits") >= 1,
        "writer should have waited for active readers to drain"
    );
}

#[test]
fn bravo_writer_eventually_beats_readers() {
    let mut w = world(SwAlg::Bravo, 8, 27);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 30, 0)));
    }
    w.spawn(Box::new(CsLoop::new(lock, counter, 5, 100)));
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 5);
}

#[test]
fn fissile_writer_eventually_beats_readers() {
    let mut w = world(SwAlg::Fissile, 8, 28);
    let lock = w.mach().alloc().alloc_line();
    let counter = w.mach().alloc().alloc_line();
    for _ in 0..6 {
        w.spawn(Box::new(CsLoop::new(lock, counter, 30, 0)));
    }
    w.spawn(Box::new(CsLoop::new(lock, counter, 5, 100)));
    w.run_to_completion();
    assert_eq!(w.mach().mem_peek(counter), 5);
}

#[test]
fn bravo_fissile_determinism() {
    for alg in [SwAlg::Bravo, SwAlg::Fissile] {
        let run = || {
            let mut w = world(alg, 8, 29);
            let lock = w.mach().alloc().alloc_line();
            let counter = w.mach().alloc().alloc_line();
            for _ in 0..8 {
                w.spawn(Box::new(CsLoop::new(lock, counter, 8, 50)));
            }
            w.run_to_completion();
            w.mach().now().cycles()
        };
        assert_eq!(run(), run(), "{alg:?} nondeterministic");
    }
}
