//! Graph construction and all-pairs next-hop routing.

use crate::network::{Link, Network, NodeId};
use std::collections::VecDeque;

/// Incrementally builds a network graph, then computes shortest-path routing
/// tables with [`TopoBuilder::build`].
///
/// Nodes are either *endpoints* (cores, cache banks, memory controllers —
/// places a message can originate or terminate) or *switches* (interior
/// routing elements). Links are bidirectional and carry a propagation
/// latency plus a per-flit serialization cost.
///
/// # Example
///
/// ```
/// use locksim_topo::{MsgClass, TopoBuilder};
/// use locksim_engine::Time;
///
/// let mut b = TopoBuilder::new();
/// let a = b.endpoint("a");
/// let s = b.switch("s");
/// let c = b.endpoint("c");
/// b.link(a, s, 5, 1);
/// b.link(s, c, 5, 1);
/// let mut net = b.build();
/// let arr = net.send(Time::ZERO, a, c, MsgClass::Control);
/// assert_eq!(arr.cycles(), 5 + 5 + 1); // two hops + 1 flit serialization
/// ```
#[derive(Debug, Default)]
pub struct TopoBuilder {
    names: Vec<String>,
    is_endpoint: Vec<bool>,
    links: Vec<Link>,
    // adjacency: node -> Vec<(neighbor, link index)>
    adj: Vec<Vec<(usize, usize)>>,
}

impl TopoBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, name: &str, endpoint: bool) -> NodeId {
        let id = self.names.len();
        self.names.push(name.to_string());
        self.is_endpoint.push(endpoint);
        self.adj.push(Vec::new());
        NodeId(id as u32)
    }

    /// Adds a message endpoint (core, cache bank, memory controller).
    pub fn endpoint(&mut self, name: &str) -> NodeId {
        self.add_node(name, true)
    }

    /// Adds an interior switch.
    pub fn switch(&mut self, name: &str) -> NodeId {
        self.add_node(name, false)
    }

    /// Adds a bidirectional link with the given propagation `latency`
    /// (cycles) and `cycles_per_flit` serialization cost. Each direction has
    /// independent occupancy.
    ///
    /// # Panics
    ///
    /// Panics if either node id is out of range or `a == b`.
    pub fn link(&mut self, a: NodeId, b: NodeId, latency: u64, cycles_per_flit: u64) {
        let (a, b) = (a.0 as usize, b.0 as usize);
        assert!(a < self.names.len() && b < self.names.len(), "unknown node");
        assert_ne!(a, b, "self-links are not allowed");
        // Two directed links.
        for (src, dst) in [(a, b), (b, a)] {
            let idx = self.links.len();
            self.links
                .push(Link::new(src, dst, latency, cycles_per_flit));
            self.adj[src].push((dst, idx));
        }
    }

    /// Finalizes the graph: computes all-pairs next-hop tables by per-node
    /// BFS (the graphs here have at most ~100 nodes).
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (some endpoint pair unreachable).
    pub fn build(self) -> Network {
        let n = self.names.len();
        // next_link[src][dst] = index of the first directed link on the
        // shortest path src -> dst, or usize::MAX on the diagonal.
        let mut next_link = vec![vec![usize::MAX; n]; n];
        for dst in 0..n {
            // BFS backwards from dst over reversed edges == BFS over the
            // symmetric graph; record, for each node, the link to take.
            let mut dist = vec![usize::MAX; n];
            let mut q = VecDeque::new();
            dist[dst] = 0;
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &(v, _link_idx) in &self.adj[u] {
                    // link u->v exists; by symmetry v->u exists too and is
                    // the hop v takes towards dst through u.
                    let back = self.adj[v]
                        .iter()
                        .find(|&&(w, _)| w == u)
                        .map(|&(_, idx)| idx)
                        .expect("links are symmetric");
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        next_link[v][dst] = back;
                        q.push_back(v);
                    }
                }
            }
            for (src, &d) in dist.iter().enumerate() {
                assert!(
                    d != usize::MAX || src == dst,
                    "disconnected topology: {} cannot reach {}",
                    self.names[src],
                    self.names[dst]
                );
            }
        }
        Network::from_parts(self.names, self.is_endpoint, self.links, next_link)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::MsgClass;
    use locksim_engine::Time;

    #[test]
    fn two_nodes_one_link() {
        let mut b = TopoBuilder::new();
        let x = b.endpoint("x");
        let y = b.endpoint("y");
        b.link(x, y, 10, 2);
        let mut net = b.build();
        let arr = net.send(Time::ZERO, x, y, MsgClass::Control);
        assert_eq!(arr.cycles(), 10 + 2);
    }

    #[test]
    fn routes_through_switch_chain() {
        let mut b = TopoBuilder::new();
        let x = b.endpoint("x");
        let s1 = b.switch("s1");
        let s2 = b.switch("s2");
        let y = b.endpoint("y");
        b.link(x, s1, 3, 1);
        b.link(s1, s2, 3, 1);
        b.link(s2, y, 3, 1);
        let mut net = b.build();
        let arr = net.send(Time::ZERO, x, y, MsgClass::Control);
        assert_eq!(arr.cycles(), 9 + 1);
    }

    #[test]
    fn picks_shortest_path() {
        // x - s - y (2 hops) and x - a - b - y (3 hops): shortest wins.
        let mut b = TopoBuilder::new();
        let x = b.endpoint("x");
        let y = b.endpoint("y");
        let s = b.switch("s");
        let a = b.switch("a");
        let c = b.switch("c");
        b.link(x, s, 100, 1);
        b.link(s, y, 100, 1);
        b.link(x, a, 1, 1);
        b.link(a, c, 1, 1);
        b.link(c, y, 1, 1);
        let mut net = b.build();
        // BFS counts hops, not latency: 2-hop path through s is chosen even
        // though it is slower — matching fixed hardware routing tables.
        let arr = net.send(Time::ZERO, x, y, MsgClass::Control);
        assert_eq!(arr.cycles(), 201);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_panics() {
        let mut b = TopoBuilder::new();
        b.endpoint("x");
        b.endpoint("y");
        b.build();
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopoBuilder::new();
        let x = b.endpoint("x");
        b.link(x, x, 1, 1);
    }
}
