//! Network topologies for the locksim simulated multiprocessor.
//!
//! The simulator models two machines from the paper's evaluation (Fig. 8):
//!
//! * **Model A** — 32 single-core chips connected by a hierarchical switch
//!   network (a SunFire E25K-like system), built by [`Network::model_a`].
//! * **Model B** — a 4-chip multi-CMP (Sun T5440-like), 8 cores per chip,
//!   intra-chip crossbar plus inter-chip coherence hubs, built by
//!   [`Network::model_b`].
//!
//! The network is a *pure timing* component: [`Network::send`] walks the
//! route from source to destination endpoint, reserving occupancy on each
//! link (wormhole-style serialization), and returns the arrival time. The
//! caller (the machine crate) schedules the corresponding delivery event.
//! Modelling per-link occupancy is what lets inter-chip congestion emerge in
//! Model B — the effect behind the paper's Figure 9b, where the SSB's
//! remote-retry traffic saturates the hub links.
//!
//! # Example
//!
//! ```
//! use locksim_engine::Time;
//! use locksim_topo::{MsgClass, Network};
//!
//! let mut net = Network::model_a(4);
//! let a = net.core_endpoint(0);
//! let b = net.core_endpoint(3);
//! let t1 = net.send(Time::ZERO, a, b, MsgClass::Control);
//! assert!(t1 > Time::ZERO);
//! // A second message at the same instant queues behind the first.
//! let t2 = net.send(Time::ZERO, a, b, MsgClass::Control);
//! assert!(t2 > t1);
//! ```

mod builder;
mod network;

pub use builder::TopoBuilder;
pub use network::{LinkStats, MsgClass, Network, NodeId};
